#!/usr/bin/env python
"""State-space exploration benchmark: the array-backed core vs. the legacy explorer.

Explores a scaled voting model with the vectorized explorer all the way to a
ready CSR kernel, recording throughput (states/sec), peak RSS and the speedup
over the legacy per-marking explorer on the largest bundled example, and
writes the numbers to ``BENCH_statespace.json``.

Modes
-----
``--smoke``
    CI guard: a medium configuration with *generous* floors (fractions of
    what the hardware actually does) so the step fails only on a real
    regression, never on a slow runner.
default (full)
    The acceptance-scale run: >= 10^6 tangible states explored to a ready
    kernel, checked against the 120 s / 4 GB / 10x floors.

Usage::

    PYTHONPATH=src python scripts/bench_statespace.py [--smoke] [--out FILE]
    PYTHONPATH=src python scripts/bench_statespace.py --cc 175 --mm 45 --nn 5
"""
from __future__ import annotations

import argparse
import json
import resource
import sys
import time

from repro.models import SCALED_CONFIGURATIONS
from repro.models.voting import VotingParameters, build_voting_net
from repro.petri import build_kernel, explore, explore_vectorized

#: The acceptance-scale configuration (paper Table 1, row 5 shape): our net
#: reaches ~1.04M tangible states with CC=175, MM=45, NN=5.
FULL_SCALE = VotingParameters(175, 45, 5)
SMOKE_SCALE = SCALED_CONFIGURATIONS["medium"]
#: Largest bundled example — the legacy explorer is timed on this one.
LEGACY_SCALE = SCALED_CONFIGURATIONS["large"]


def peak_rss_bytes() -> int:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(usage) * (1 if sys.platform == "darwin" else 1024)


def time_exploration(net, explorer, *, max_states=None, with_kernel=True, repeats=1):
    """Explore (and optionally build the kernel), keeping the best of
    ``repeats`` timings — applied symmetrically to both explorers so a noisy
    co-tenant does not decide the comparison."""
    graph = kernel = None
    explore_seconds = kernel_seconds = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        graph = explorer(net, max_states=max_states)
        explore_seconds = min(explore_seconds, time.perf_counter() - start)
        if with_kernel:
            start = time.perf_counter()
            kernel = build_kernel(graph, allow_truncated=graph.truncated)
            kernel_seconds = min(kernel_seconds, time.perf_counter() - start)
    return graph, kernel, explore_seconds, kernel_seconds if with_kernel else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI guard run")
    parser.add_argument("--cc", type=int, help="voters (CC) for a custom scale")
    parser.add_argument("--mm", type=int, help="polling units (MM)")
    parser.add_argument("--nn", type=int, help="central units (NN)")
    parser.add_argument("--out", default="BENCH_statespace.json")
    parser.add_argument(
        "--skip-legacy", action="store_true",
        help="skip the legacy-explorer comparison (and its floor)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats, best run kept (default: 2 full, 1 smoke)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 2)

    if args.cc or args.mm or args.nn:
        params = VotingParameters(args.cc or 175, args.mm or 45, args.nn or 5)
    else:
        params = SMOKE_SCALE if args.smoke else FULL_SCALE

    # Floors: full mode enforces the acceptance criteria; smoke mode uses a
    # generous fraction of observed hardware numbers so CI only trips on a
    # real regression.
    if args.smoke:
        floors = {"max_seconds": 120.0, "max_rss_bytes": 4 << 30,
                  "min_states_per_sec": 5_000.0, "min_speedup": 2.0}
    else:
        floors = {"max_seconds": 120.0, "max_rss_bytes": 4 << 30,
                  "min_states_per_sec": None, "min_speedup": 10.0}

    print(f"# vectorized exploration: voting[{params.label}]", flush=True)
    net = build_voting_net(params)
    graph, kernel, explore_seconds, kernel_seconds = time_exploration(
        net, explore_vectorized, repeats=repeats
    )
    states_per_sec = graph.n_states / explore_seconds
    print(
        f"  {graph.n_states} states, {graph.n_edges} edges in {explore_seconds:.2f}s "
        f"({states_per_sec:,.0f} states/sec), kernel ready in {kernel_seconds:.2f}s, "
        f"peak RSS {peak_rss_bytes() / (1 << 30):.2f} GiB",
        flush=True,
    )

    report = {
        "configuration": {
            "CC": params.voters, "MM": params.polling_units, "NN": params.central_units,
        },
        "mode": "smoke" if args.smoke else "full",
        "timing_repeats_best_of": repeats,
        "states_explored": graph.n_states,
        "edges": graph.n_edges,
        "explore_seconds": round(explore_seconds, 3),
        "kernel_seconds": round(kernel_seconds, 3),
        "total_seconds": round(explore_seconds + kernel_seconds, 3),
        "states_per_sec": round(states_per_sec, 1),
        "kernel_transitions": kernel.n_transitions,
        "kernel_distinct_distributions": kernel.n_distributions,
        "peak_rss_bytes": peak_rss_bytes(),
        "floors": floors,
    }

    if not args.skip_legacy:
        # Smoke compares both explorers end-to-end on the largest SCALED
        # example.  Full mode measures the legacy explorer on the *same*
        # acceptance-scale net, capped: per-state work is identical across the
        # exploration, so throughput over a 120k-state prefix is a fair
        # (slightly generous) stand-in for the multi-minute full legacy run.
        if args.smoke:
            legacy_params, legacy_cap = LEGACY_SCALE, None
        else:
            legacy_params, legacy_cap = params, min(120_000, graph.n_states)
        print(
            f"# legacy comparison on voting[{legacy_params.label}]"
            + (f" (capped at {legacy_cap} states)" if legacy_cap else ""),
            flush=True,
        )
        legacy_graph, _, legacy_seconds, _ = time_exploration(
            build_voting_net(legacy_params), explore,
            max_states=legacy_cap, with_kernel=False, repeats=repeats,
        )
        legacy_rate = legacy_graph.n_states / legacy_seconds
        if args.smoke:
            vec_graph, _, vec_seconds, _ = time_exploration(
                build_voting_net(legacy_params), explore_vectorized,
                with_kernel=False, repeats=repeats,
            )
            assert vec_graph.n_states == legacy_graph.n_states
            vec_rate = vec_graph.n_states / vec_seconds
        else:
            vec_rate, vec_seconds = states_per_sec, explore_seconds
        speedup = vec_rate / legacy_rate
        print(
            f"  legacy {legacy_graph.n_states} states in {legacy_seconds:.2f}s "
            f"({legacy_rate:,.0f}/sec) vs vectorized {vec_rate:,.0f}/sec "
            f"-> {speedup:.1f}x",
            flush=True,
        )
        report["legacy_comparison"] = {
            "configuration": {
                "CC": legacy_params.voters, "MM": legacy_params.polling_units,
                "NN": legacy_params.central_units,
            },
            "legacy_states": legacy_graph.n_states,
            "legacy_cap": legacy_cap,
            "legacy_seconds": round(legacy_seconds, 3),
            "legacy_states_per_sec": round(legacy_rate, 1),
            "vectorized_states_per_sec": round(vec_rate, 1),
            "speedup": round(speedup, 2),
        }

    failures = []
    total = report["total_seconds"]
    if floors["max_seconds"] is not None and total > floors["max_seconds"]:
        failures.append(f"exploration+kernel took {total:.1f}s > {floors['max_seconds']}s")
    if floors["max_rss_bytes"] is not None and report["peak_rss_bytes"] > floors["max_rss_bytes"]:
        failures.append(
            f"peak RSS {report['peak_rss_bytes'] / (1 << 30):.2f} GiB > "
            f"{floors['max_rss_bytes'] / (1 << 30):.0f} GiB"
        )
    if floors["min_states_per_sec"] and states_per_sec < floors["min_states_per_sec"]:
        failures.append(
            f"throughput {states_per_sec:,.0f}/sec < {floors['min_states_per_sec']:,.0f}/sec"
        )
    if (
        not args.skip_legacy
        and floors["min_speedup"]
        and report["legacy_comparison"]["speedup"] < floors["min_speedup"]
    ):
        failures.append(
            f"speedup {report['legacy_comparison']['speedup']}x < {floors['min_speedup']}x"
        )
    report["failures"] = failures

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"# wrote {args.out}", flush=True)

    if failures:
        for failure in failures:
            print(f"FLOOR VIOLATED: {failure}", file=sys.stderr)
        return 1
    print("# all floors satisfied", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
