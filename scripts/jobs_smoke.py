#!/usr/bin/env python3
"""CI smoke test for the async job subsystem: durability + tenancy end-to-end.

One scenario, driven entirely through public surfaces (CLI serve subprocess,
``ServiceClient`` over HTTP):

1. boot ``semimarkov serve --workers 2`` with a checkpoint directory (which
   selects the sqlite job store), two tenants each submit an async passage
   query with ``async=true``;
2. both poll to ``done`` and their results agree with a synchronous query;
3. tenant isolation: each tenant lists exactly its own job and cannot read
   the other's (404); job metrics appear on ``/metrics``;
4. ``SIGKILL`` the server, restart it against the same checkpoint directory,
   and assert the finished jobs — records *and* results — survived, straight
   from the replayed sqlite log.

Run:  PYTHONPATH=src python scripts/jobs_smoke.py
"""
from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, SRC_DIR)

from repro.models import SCALED_CONFIGURATIONS, voting_spec_text  # noqa: E402
from repro.service import ServiceClient, ServiceClientError  # noqa: E402

PORT = int(os.environ.get("JOBS_SMOKE_PORT", "8439"))
URL = f"http://127.0.0.1:{PORT}"
QUERY = dict(source="p1 == 4", target="p2 == 4", t_points=[5.0, 10.0, 20.0])


def start_server(checkpoint: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(PORT),
         "--workers", "2", "--checkpoint", checkpoint, "--log-level", "info"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    client = ServiceClient(URL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            if client.health().get("status") == "ok":
                return server
        except (ServiceClientError, OSError):
            pass
        if server.poll() is not None:
            break
        time.sleep(0.2)
    out = server.stdout.read() if server.stdout else b""
    raise SystemExit("server did not become healthy:\n" + out.decode(errors="replace"))


def stop_server(server: subprocess.Popen, sig: int = signal.SIGTERM) -> None:
    if server.poll() is None:
        server.send_signal(sig)
    try:
        out, _ = server.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        server.kill()
        out, _ = server.communicate()
    if out:
        sys.stderr.write("---- server log ----\n" + out.decode(errors="replace"))


def expect_404(client: ServiceClient, job_id: str, who: str) -> None:
    try:
        client.job(job_id)
    except ServiceClientError as exc:
        assert exc.status == 404, f"{who}: expected 404, got {exc.status}"
    else:
        raise AssertionError(f"{who} can read a foreign tenant's job")


def main() -> int:
    import tempfile

    spec = voting_spec_text(SCALED_CONFIGURATIONS["tiny"])
    with tempfile.TemporaryDirectory() as checkpoint:
        server = start_server(checkpoint)
        try:
            print("== async submit, two tenants ==", flush=True)
            team_a = ServiceClient(URL, tenant="team-a")
            team_b = ServiceClient(URL, tenant="team-b")
            job_a = team_a.submit("passage", spec=spec, cdf=True, **QUERY)
            job_b = team_b.submit("passage", spec=spec, cdf=True, **QUERY)
            assert job_a["state"] in ("queued", "running"), job_a
            assert "result" not in job_a, "202 view must not carry a result"

            print("== poll to done ==", flush=True)
            final_a = team_a.wait(job_a["job"], timeout=300)
            final_b = team_b.wait(job_b["job"], timeout=300)
            assert final_a["state"] == "done", final_a
            assert final_b["state"] == "done", final_b
            sync = team_a.passage(spec=spec, cdf=True, **QUERY)
            drift = max(
                abs(x - y) for x, y in
                zip(final_a["result"]["density"], sync["density"])
            )
            assert drift <= 1e-10, f"async/sync density drift {drift}"
            assert final_a["result"]["density"] == final_b["result"]["density"]

            print("== tenant isolation ==", flush=True)
            mine_a = [j["job"] for j in team_a.jobs()["jobs"]]
            mine_b = [j["job"] for j in team_b.jobs()["jobs"]]
            assert mine_a == [job_a["job"]], mine_a
            assert mine_b == [job_b["job"]], mine_b
            expect_404(team_a, job_b["job"], "team-a")
            expect_404(team_b, job_a["job"], "team-b")

            metrics = team_a.metrics_text()
            assert "# TYPE repro_jobs_total counter" in metrics
            assert "# TYPE repro_job_seconds histogram" in metrics
            assert 'repro_jobs_total{state="done",tenant="team-a"}' in metrics
            print("two tenants ran to done, listings disjoint, metrics ok",
                  flush=True)

            print("== SIGKILL + restart on the same checkpoint ==", flush=True)
            stop_server(server, signal.SIGKILL)
        finally:
            if server.poll() is None:
                stop_server(server, signal.SIGKILL)

        server = start_server(checkpoint)
        try:
            survived = team_a.job(job_a["job"])
            assert survived["state"] == "done", survived
            assert survived["result"]["density"] == final_a["result"]["density"], \
                "result changed across restart"
            assert [j["job"] for j in team_b.jobs()["jobs"]] == [job_b["job"]]
            expect_404(team_a, job_b["job"], "team-a (after restart)")
            print("jobs, results and tenancy survived the restart", flush=True)
        finally:
            stop_server(server)

    print("jobs smoke test PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
