#!/usr/bin/env python3
"""CI smoke test for the observability planes: tracing, metrics, progress.

Four checks, each exercising the same surface a user would:

1. **CLI tracing** — ``semimarkov passage ... --workers 2 --trace out.json
   --progress`` as a real subprocess; asserts the written Chrome/Perfetto
   trace is valid JSON containing the explore, plane-export, per-worker
   s-block (>= 2 distinct worker pids) and inversion spans, and that the
   progress line reached stderr.
2. **Live /metrics scrape** — boots ``semimarkov serve --workers 2`` as a
   subprocess, runs an HTTP passage query, scrapes ``GET /metrics`` and
   asserts the core metric names/types, ``GET /v1/progress/{digest}`` shows
   the finished run and ``/v1/stats`` carries version + build info.
3. **Counter reconciliation** — an in-process 2-worker solve on a fresh
   registry; ``repro_points_evaluated_total`` must equal the number of
   s-points the run reported computing, exactly.
4. **Overhead** — best-of-N block solves with tracing+metrics on vs off;
   prints the measured overhead and fails above a generous CI bound (the
   instrumentation is per-block, so the real number sits well under 2%).

Run:  PYTHONPATH=src python scripts/obs_smoke.py
"""
from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, SRC_DIR)

from repro.models import SCALED_CONFIGURATIONS, voting_spec_text  # noqa: E402
from repro.service import ServiceClient, ServiceClientError  # noqa: E402

PORT = int(os.environ.get("OBS_SMOKE_PORT", "8437"))
#: generous CI bound; the measured number is printed and normally « 2%
MAX_OVERHEAD_FRACTION = 0.10

REQUIRED_SPANS = ("explore", "kernel-build", "plane-export", "s-block",
                  "s-block-solve", "inversion")
REQUIRED_METRICS = (
    "# TYPE repro_points_evaluated_total counter",
    "# TYPE repro_solve_iterations_total counter",
    "# TYPE repro_block_seconds histogram",
    "# TYPE repro_iterations_per_s_point histogram",
    "# TYPE repro_queries_total counter",
    "# TYPE repro_requests_total counter",
    "# TYPE repro_models_built_total counter",
    "# TYPE repro_worker_points_total counter",
    "# TYPE repro_worker_busy_fraction gauge",
)


def subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def check_cli_trace(spec_path: str, trace_path: str) -> None:
    print("== CLI --trace / --progress ==", flush=True)
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "passage", spec_path,
         "--source", "p1 == 4", "--target", "p2 == 4",
         "--t-points", "5", "10", "20", "--cdf",
         "--workers", "2", "--trace", trace_path, "--progress"],
        env=subprocess_env(), capture_output=True, text=True, timeout=300,
    )
    sys.stderr.write(result.stderr)
    assert result.returncode == 0, f"CLI exited {result.returncode}"
    assert "# progress:" in result.stderr, "no progress line on stderr"
    assert "# trace:" in result.stderr, "no trace summary on stderr"

    with open(trace_path) as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    assert events, "empty span tree"
    names = {e["name"] for e in events}
    for required in REQUIRED_SPANS:
        assert required in names, f"span {required!r} missing from {sorted(names)}"
    master_pid = {e["pid"] for e in events if e["name"] == "explore"}
    worker_pids = {e["pid"] for e in events if e["name"] == "s-block"}
    assert len(worker_pids) >= 2, f"expected >= 2 worker pids, got {worker_pids}"
    assert not (worker_pids & master_pid), "worker spans carry the master pid"
    # spans form a tree: every parent id resolves
    by_id = {e["id"] for e in events}
    dangling = [e for e in events
                if e["args"].get("parent") and e["args"]["parent"] not in by_id]
    assert not dangling, f"dangling parent links: {dangling[:3]}"
    print(f"trace ok: {len(events)} spans, {len(worker_pids)} worker pids",
          flush=True)


def wait_for_health(client: ServiceClient, deadline_seconds: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            if client.health().get("status") == "ok":
                return
        except (ServiceClientError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit("server did not become healthy in time")


def check_live_metrics(spec: str) -> None:
    print("== live /metrics scrape ==", flush=True)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(PORT),
         "--workers", "2", "--log-level", "info"],
        env=subprocess_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    client = ServiceClient(f"http://127.0.0.1:{PORT}")
    try:
        wait_for_health(client)
        model = client.register_model(spec, name="voting-tiny")["model"]
        reply = client.passage(
            model=model, source="p1 == 4", target="p2 == 4",
            t_points=[5.0, 10.0, 20.0], cdf=True,
        )
        computed = reply["statistics"]["s_points_computed"]
        assert computed > 0, reply["statistics"]

        # request accounting lands just after the reply; give it a beat
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            text = client.metrics_text()
            if 'repro_requests_total{path="/v1/passage",status="200",tenant="default"}' in text:
                break
            time.sleep(0.1)
        for required in REQUIRED_METRICS:
            assert required in text, f"{required!r} missing from /metrics"
        for line in text.splitlines():
            if line.startswith("repro_points_evaluated_total "):
                assert float(line.split()[-1]) >= computed, line
                break
        else:
            raise AssertionError("repro_points_evaluated_total not exposed")

        progress = client.progress(model)
        assert progress["recent"], progress
        assert progress["recent"][-1]["finished"] is True

        stats = client.stats()
        assert stats["version"], stats
        assert stats["build"]["effective_cores"] >= 1, stats
        print(f"metrics ok: {len(text.splitlines())} exposition lines, "
              f"{computed} points computed; progress + build info ok",
              flush=True)
    finally:
        server.terminate()
        try:
            out, _ = server.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            out, _ = server.communicate()
        if out:
            sys.stderr.write("---- server log ----\n" + out.decode(errors="replace"))


def _tiny_job():
    import numpy as np

    from repro.core.jobs import PassageTimeJob
    from repro.dnamaca import load_model
    from repro.petri import build_kernel, explore_vectorized

    net = load_model(voting_spec_text(SCALED_CONFIGURATIONS["tiny"]))
    graph = explore_vectorized(net)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    marking = graph.marking_array()
    targets = np.flatnonzero(marking[:, net.place_index["p2"]] == 4)
    alpha = np.zeros(kernel.n_states)
    alpha[0] = 1.0
    return PassageTimeJob(kernel=kernel, alpha=alpha, targets=targets)


def check_counter_reconciliation() -> None:
    print("== counter reconciliation ==", flush=True)
    from repro.distributed import MultiprocessingBackend
    from repro.obs import get_metrics, worker_stats_snapshot

    job = _tiny_job()
    s_points = [complex(0.05 * (k + 1), 0.4 * k) for k in range(48)]
    registry = get_metrics()
    registry.reset()
    backend = MultiprocessingBackend(processes=2)
    try:
        values = backend.evaluate(job, s_points)
    finally:
        backend.close()
    counted = registry.get("repro_points_evaluated_total").value()
    assert counted == len(values) == len(s_points), (counted, len(s_points))
    total = sum(e["points"] for e in worker_stats_snapshot().values())
    assert total == len(s_points), (total, len(s_points))
    print(f"counters reconcile: {int(counted)} points evaluated == "
          f"{len(s_points)} s-points dispatched", flush=True)


def check_overhead() -> None:
    print("== instrumentation overhead ==", flush=True)
    from repro.obs import get_metrics, get_tracer

    job = _tiny_job()
    s_points = [complex(0.05 * (k + 1), 0.4 * k) for k in range(256)]
    tracer = get_tracer()

    def best_of(n: int) -> float:
        best = float("inf")
        for _ in range(n):
            started = time.perf_counter()
            job.evaluate_batch(s_points)
            best = min(best, time.perf_counter() - started)
        return best

    job.evaluate_batch(s_points)  # warm caches on both sides of the measure
    tracer.disable()
    baseline = best_of(5)
    tracer.enable()
    try:
        instrumented = best_of(5)
    finally:
        tracer.disable()
        tracer.clear()
        get_metrics().reset()
    overhead = instrumented / baseline - 1.0
    print(f"overhead: baseline {baseline*1e3:.2f} ms, instrumented "
          f"{instrumented*1e3:.2f} ms -> {overhead*100:+.2f}%", flush=True)
    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"instrumentation overhead {overhead*100:.1f}% exceeds "
        f"{MAX_OVERHEAD_FRACTION*100:.0f}% CI bound"
    )


def main() -> int:
    spec = voting_spec_text(SCALED_CONFIGURATIONS["tiny"])
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = os.path.join(tmp, "voting_tiny.dnamaca")
        with open(spec_path, "w") as f:
            f.write(spec)
        check_cli_trace(spec_path, os.path.join(tmp, "trace.json"))
    check_live_metrics(spec)
    check_counter_reconciliation()
    check_overhead()
    print("observability smoke test PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
