#!/usr/bin/env python
"""End-to-end passage-time density benchmark: the blocked/factored solver layer.

Two measurements, written to ``BENCH_passage.json``:

1. **Mid-size engine comparison** — the distribution-factored engine vs the
   ``u_data_batch`` (per-edge-data) engine, end-to-end on the same measure,
   grid and truncation rule.  The comparison model is a mid-size *service
   pool* kernel in the factored engine's target regime: every state can hand
   off to many successors (high fan-out) drawn from a handful of distinct
   sojourn distributions, so the per-edge data the batch engine streams per
   s-point per iteration dwarfs the factored engine's pair expansion.  (On
   low fan-out kernels such as the voting net the policy keeps the batch
   engine — that regime is covered by the voting run below.)  Records the
   per-(point × iteration) times, their ratio and the maximum deviation.

2. **Large voting end-to-end** — the paper's headline workload: the full
   passage-time density (all voters processed) on a >= 1M-state voting
   kernel over a >= 128-point Euler s-grid, streamed through the blocked
   solver under a fixed memory budget.  Records states, s-points, solve
   seconds, per-block timings, peak RSS and the density curve.

3. **Worker scaling** (``--scaling``) — the shared-plane block-dispatch
   stack: the same mid-size measure evaluated on pools of 1/2/4/8 worker
   processes attached to one kernel plane, recording the seconds, speedup
   and parallel efficiency of each point plus a <= 1e-10 parity check
   against the single-process run.  Speedup floors are enforced only when
   the machine actually has the cores (``effective_cores`` is recorded so a
   1-core CI runner never produces a vacuous pass that looks like scaling).

Modes
-----
``--smoke``
    CI guard: reduced scales with *generous* floors (fractions of what the
    hardware does) so the step fails only on a real regression, never on a
    slow runner.  With ``--scaling`` the curve is just 1 and 2 workers with
    a >= 1.5x floor (again only enforced when >= 2 cores are available).
default (full)
    The acceptance-scale run: the >= 5x mid-size comparison floor plus the
    >= 1M-state voting run under the 6 GiB RSS ceiling; ``--scaling`` runs
    the full 1/2/4/8 curve on a 132-point grid with a >= 3x floor at 4
    workers (>= 4 cores).

Usage::

    PYTHONPATH=src python scripts/bench_passage.py [--smoke] [--out FILE]
    PYTHONPATH=src python scripts/bench_passage.py --skip-voting
    PYTHONPATH=src python scripts/bench_passage.py --smoke --scaling --skip-voting
"""
from __future__ import annotations

import argparse
import json
import resource
import sys
import time

import numpy as np

from repro.distributions import Deterministic, Erlang, Exponential, Uniform, Weibull
from repro.laplace.euler import EulerInverter
from repro.models import SCALED_CONFIGURATIONS
from repro.models.voting import VotingParameters, build_voting_net
from repro.petri import build_kernel, explore_vectorized
from repro.obs import get_metrics
from repro.obs.metrics import effective_cores
from repro.smp import SMPBuilder, SPointPolicy, passage_transform_batch
from repro.api.plan import QueryPlan

FULL_SCALE = VotingParameters(175, 45, 5)
SMOKE_SCALE = SCALED_CONFIGURATIONS["medium"]

#: pure-iterative policies so the engine comparison measures the iteration
#: engines themselves (no LU routing, identical truncation on both sides)
ITERATIVE = dict(predicted_iteration_limit=10**9, fallback_to_direct=False)


def peak_rss_bytes() -> int:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(usage) * (1 if sys.platform == "darwin" else 1024)


def comparison_kernel(n_states: int, degree: int, seed: int = 7):
    """A mid-size service-pool kernel: high fan-out, few distinct sojourns."""
    rng = np.random.default_rng(seed)
    dists = [
        Exponential(1.2), Erlang(2.0, 3), Uniform(0.2, 1.4),
        Deterministic(0.5), Weibull(1.3, 1.0), Exponential(4.0),
    ]
    builder = SMPBuilder()
    for i in range(n_states):
        builder.add_state(f"s{i}")
    for i in range(n_states):
        successors = np.unique(
            np.concatenate([[(i + 1) % n_states], rng.integers(0, n_states, degree)])
        )
        successors = successors[successors != i]
        weights = rng.random(successors.size) + 0.05
        weights /= weights.sum()
        for j, w in zip(successors, weights):
            builder.add_transition(i, int(j), float(w), dists[int(rng.integers(0, len(dists)))])
    return builder.build()


def euler_grid(t_points) -> np.ndarray:
    plan = QueryPlan.derive(EulerInverter(), np.asarray(t_points, dtype=float))
    return plan.s_points


def run_engine(kernel, alpha, targets, s_points, engine: str):
    policy = SPointPolicy(engine=engine, **ITERATIVE)
    report: dict = {}
    started = time.perf_counter()
    values, diags = passage_transform_batch(
        kernel, alpha, targets, s_points, policy=policy, report=report
    )
    seconds = time.perf_counter() - started
    point_iters = int(sum(d.matvec_count for d in diags))
    return {
        "values": values,
        "seconds": seconds,
        "point_iterations": point_iters,
        "seconds_per_point_iteration": seconds / max(point_iters, 1),
        "blocks": report["blocks"],
        "engine": report["engine"],
    }


def engine_comparison(n_states: int, degree: int, t_points) -> dict:
    kernel = comparison_kernel(n_states, degree)
    evaluator = kernel.evaluator()
    ratio = evaluator.factored().density_ratio()
    alpha = np.zeros(kernel.n_states)
    alpha[0] = 1.0
    targets = [kernel.n_states - 1]
    s_points = euler_grid(t_points)
    print(
        f"# engine comparison: service-pool kernel n={kernel.n_states} "
        f"nnz={kernel.n_transitions} dists={kernel.n_distributions} "
        f"fanout-ratio={ratio:.1f}, {s_points.size} s-points",
        flush=True,
    )
    batch = run_engine(kernel, alpha, targets, s_points, "batch")
    factored = run_engine(kernel, alpha, targets, s_points, "factored")
    deviation = float(np.abs(batch["values"] - factored["values"]).max())
    per_iteration_speedup = (
        batch["seconds_per_point_iteration"] / factored["seconds_per_point_iteration"]
    )
    end_to_end_speedup = batch["seconds"] / factored["seconds"]
    print(
        f"  u_data_batch engine : {batch['seconds']:.2f}s "
        f"({batch['seconds_per_point_iteration']*1e3:.3f} ms/pt-iter, "
        f"{batch['point_iterations']} pt-iters)",
        flush=True,
    )
    print(
        f"  factored engine     : {factored['seconds']:.2f}s "
        f"({factored['seconds_per_point_iteration']*1e3:.3f} ms/pt-iter, "
        f"{factored['point_iterations']} pt-iters)",
        flush=True,
    )
    print(
        f"  per-iteration speedup {per_iteration_speedup:.1f}x, end-to-end "
        f"{end_to_end_speedup:.1f}x, max deviation {deviation:.2e}",
        flush=True,
    )
    return {
        "model": {
            "kind": "service-pool",
            "states": kernel.n_states,
            "transitions": kernel.n_transitions,
            "distinct_distributions": kernel.n_distributions,
            "fanout_ratio": round(ratio, 2),
        },
        "s_points": int(s_points.size),
        "batch_seconds": round(batch["seconds"], 3),
        "factored_seconds": round(factored["seconds"], 3),
        "batch_ms_per_point_iteration": round(batch["seconds_per_point_iteration"] * 1e3, 4),
        "factored_ms_per_point_iteration": round(
            factored["seconds_per_point_iteration"] * 1e3, 4
        ),
        "per_iteration_speedup": round(per_iteration_speedup, 2),
        "end_to_end_speedup": round(end_to_end_speedup, 2),
        "max_deviation": deviation,
    }


def worker_scaling(n_states: int, degree: int, t_points, worker_counts) -> dict:
    """Evaluate one measure on pools of increasing size sharing a kernel plane."""
    from repro.core.jobs import PassageTimeJob
    from repro.distributed import MultiprocessingBackend, SerialBackend

    kernel = comparison_kernel(n_states, degree)
    alpha = np.zeros(kernel.n_states)
    alpha[0] = 1.0
    job = PassageTimeJob(kernel=kernel, alpha=alpha, targets=[kernel.n_states - 1])
    s_points = [complex(s) for s in euler_grid(t_points)]
    cores = effective_cores()
    print(
        f"# worker scaling: service-pool kernel n={kernel.n_states} "
        f"nnz={kernel.n_transitions}, {len(s_points)} s-points, "
        f"{cores} effective core(s)",
        flush=True,
    )

    started = time.perf_counter()
    reference = SerialBackend().evaluate(job, s_points)
    serial_seconds = time.perf_counter() - started
    print(f"  single-process baseline: {serial_seconds:.2f}s", flush=True)

    curve = []
    one_worker_seconds = None
    for workers in worker_counts:
        backend = MultiprocessingBackend(processes=workers)
        started = time.perf_counter()
        values = backend.evaluate(job, s_points)
        seconds = time.perf_counter() - started
        stats = backend.last_worker_stats or {}
        backend.close()
        deviation = float(max(abs(values[s] - reference[s]) for s in reference))
        if workers == 1 or one_worker_seconds is None:
            one_worker_seconds = seconds
        speedup = one_worker_seconds / seconds if seconds > 0 else float("inf")
        point = {
            "workers": workers,
            "seconds": round(seconds, 3),
            "speedup_vs_1_worker": round(speedup, 3),
            "efficiency": round(speedup / workers, 3),
            "blocks": int(sum(e["blocks"] for e in stats.values())),
            "busy_seconds": round(sum(e["busy_seconds"] for e in stats.values()), 3),
            "pool_processes_used": len(stats),
            "max_deviation": deviation,
        }
        curve.append(point)
        print(
            f"  {workers} worker(s): {seconds:.2f}s "
            f"(speedup {speedup:.2f}x, efficiency {speedup/workers:.2f}, "
            f"{point['blocks']} blocks, max deviation {deviation:.2e})",
            flush=True,
        )
    return {
        "model": {
            "kind": "service-pool",
            "states": kernel.n_states,
            "transitions": kernel.n_transitions,
            "distinct_distributions": kernel.n_distributions,
        },
        "s_points": len(s_points),
        "effective_cores": cores,
        "serial_seconds": round(serial_seconds, 3),
        "curve": curve,
    }


def voting_passage(params: VotingParameters, t_points, budget_bytes: int) -> dict:
    print(f"# voting passage density: {params.label}", flush=True)
    started = time.perf_counter()
    net = build_voting_net(params)
    graph = explore_vectorized(net)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    build_seconds = time.perf_counter() - started
    evaluator = kernel.evaluator()
    marking = graph.marking_array()
    targets = np.flatnonzero(marking[:, net.place_index["p2"]] == params.voters)
    alpha = np.zeros(kernel.n_states)
    alpha[0] = 1.0

    inverter = EulerInverter()
    t_points = np.asarray(t_points, dtype=float)
    plan = QueryPlan.derive(inverter, t_points)
    s_points = plan.s_points
    policy = SPointPolicy(max_block_bytes=budget_bytes)
    engine = policy.resolve_engine(evaluator)
    print(
        f"  {kernel.n_states} states / {kernel.n_transitions} edges built in "
        f"{build_seconds:.1f}s; solving {s_points.size} s-points via the "
        f"{engine} engine in blocks of {policy.block_points(evaluator, engine)}",
        flush=True,
    )

    report: dict = {}
    solve_start = time.perf_counter()
    values, diags = passage_transform_batch(
        evaluator, alpha, targets, s_points, policy=policy, report=report
    )
    solve_seconds = time.perf_counter() - solve_start
    point_iters = int(sum(d.matvec_count for d in diags))
    converged = all(d.converged for d in diags)

    from repro.laplace.inverter import canonical_s, expand_to_grid

    value_map = {canonical_s(complex(s)): complex(v) for s, v in zip(s_points, values)}
    density = inverter.invert_values(
        t_points, expand_to_grid(plan.required_s_points, value_map)
    )
    rss = peak_rss_bytes()
    print(
        f"  solve {solve_seconds:.1f}s ({point_iters} pt-iters, "
        f"{solve_seconds/max(point_iters,1)*1e3:.1f} ms/pt-iter, "
        f"{len(report['blocks'])} blocks), peak RSS {rss/(1<<30):.2f} GiB, "
        f"converged={converged}",
        flush=True,
    )
    return {
        "configuration": {
            "CC": params.voters, "MM": params.polling_units, "NN": params.central_units,
        },
        "states": int(kernel.n_states),
        "edges": int(kernel.n_transitions),
        "targets": int(targets.size),
        "build_seconds": round(build_seconds, 2),
        "engine": report["engine"],
        "s_points": int(s_points.size),
        "blocks": report["blocks"],
        "point_iterations": point_iters,
        "solve_seconds": round(solve_seconds, 2),
        "ms_per_point_iteration": round(solve_seconds / max(point_iters, 1) * 1e3, 3),
        "converged": converged,
        "t_points": [float(t) for t in t_points],
        "density": [float(f) for f in density],
        "peak_rss_bytes": rss,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI guard run")
    parser.add_argument("--out", default="BENCH_passage.json")
    parser.add_argument(
        "--skip-voting", action="store_true",
        help="only run the engine comparison (skips the large voting solve)",
    )
    parser.add_argument(
        "--scaling", action="store_true",
        help="also measure the 1/2/4/8-worker shared-plane scaling curve",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        floors = {
            "min_per_iteration_speedup": 2.0,
            "max_deviation": 1e-10,
            "max_voting_seconds": 300.0,
            "max_rss_bytes": 4 << 30,
            "min_voting_states": 1_000,
            "min_voting_s_points": 128,
        }
        floors.update({
            "min_2worker_speedup": 1.5,
            "max_scaling_deviation": 1e-10,
        })
        comparison = engine_comparison(1000, 90, t_points=(2.0, 5.0, 9.0))
        scaling = None
        if args.scaling:
            scaling = worker_scaling(
                800, 60, t_points=(2.0, 6.0), worker_counts=(1, 2)
            )
        voting = None
        if not args.skip_voting:
            voting = voting_passage(
                SMOKE_SCALE, t_points=(20.0, 40.0, 60.0, 80.0), budget_bytes=1 << 30
            )
    else:
        floors = {
            "min_per_iteration_speedup": 5.0,
            "max_deviation": 1e-10,
            "max_voting_seconds": 3600.0,
            "max_rss_bytes": 6 << 30,
            "min_voting_states": 1_000_000,
            "min_voting_s_points": 128,
        }
        floors.update({
            "min_2worker_speedup": 1.5,
            "min_4worker_speedup": 3.0,
            "max_scaling_deviation": 1e-10,
        })
        comparison = engine_comparison(3000, 140, t_points=(2.0, 4.0, 6.0, 8.0, 10.0))
        scaling = None
        if args.scaling:
            # Four t-points give the 132-point Euler grid of the acceptance
            # measure; 1/2/4/8 workers share one plane of the 3000-state
            # comparison kernel.
            scaling = worker_scaling(
                3000, 140, t_points=(2.0, 4.0, 7.0, 10.0),
                worker_counts=(1, 2, 4, 8),
            )
        voting = None
        if not args.skip_voting:
            # The all-voted passage time of CC=175 concentrates around t=363
            # (simulated mean); the grid brackets the bulk of the density.
            voting = voting_passage(
                FULL_SCALE, t_points=(300.0, 330.0, 360.0, 390.0), budget_bytes=2 << 30
            )

    report = {
        "mode": "smoke" if args.smoke else "full",
        "engine_comparison": comparison,
        "worker_scaling": scaling,
        "voting": voting,
        "floors": floors,
        "peak_rss_bytes": peak_rss_bytes(),
        # Everything the run counted (solve blocks, per-worker totals,
        # iteration histograms), straight from the obs registry.
        "metrics": get_metrics().snapshot(),
    }

    failures = []
    if comparison["per_iteration_speedup"] < floors["min_per_iteration_speedup"]:
        failures.append(
            f"per-iteration speedup {comparison['per_iteration_speedup']}x < "
            f"{floors['min_per_iteration_speedup']}x"
        )
    if comparison["max_deviation"] > floors["max_deviation"]:
        failures.append(
            f"factored deviates {comparison['max_deviation']:.2e} > "
            f"{floors['max_deviation']:.0e} from the u_data_batch path"
        )
    if voting is not None:
        if voting["states"] < floors["min_voting_states"]:
            failures.append(
                f"voting kernel has {voting['states']} states < {floors['min_voting_states']}"
            )
        if voting["s_points"] < floors["min_voting_s_points"]:
            failures.append(
                f"voting grid has {voting['s_points']} s-points < {floors['min_voting_s_points']}"
            )
        total = voting["build_seconds"] + voting["solve_seconds"]
        if total > floors["max_voting_seconds"]:
            failures.append(
                f"voting build+solve took {total:.0f}s > {floors['max_voting_seconds']:.0f}s"
            )
        if voting["peak_rss_bytes"] > floors["max_rss_bytes"]:
            failures.append(
                f"peak RSS {voting['peak_rss_bytes']/(1<<30):.2f} GiB > "
                f"{floors['max_rss_bytes']/(1<<30):.0f} GiB"
            )
        if not voting["converged"]:
            failures.append("voting solve left unconverged s-points")
    if scaling is not None:
        worst = max(p["max_deviation"] for p in scaling["curve"])
        if worst > floors["max_scaling_deviation"]:
            failures.append(
                f"block-dispatched results deviate {worst:.2e} > "
                f"{floors['max_scaling_deviation']:.0e} from single-process"
            )
        cores = scaling["effective_cores"]
        by_workers = {p["workers"]: p for p in scaling["curve"]}
        # Speedup floors apply only where the hardware can deliver them; the
        # recorded effective_cores keeps a 1-core pass honest.
        for workers, key in ((2, "min_2worker_speedup"), (4, "min_4worker_speedup")):
            floor = floors.get(key)
            point = by_workers.get(workers)
            if floor is None or point is None:
                continue
            if cores < workers:
                print(
                    f"# scaling floor at {workers} workers skipped: only "
                    f"{cores} effective core(s)",
                    flush=True,
                )
                continue
            if point["speedup_vs_1_worker"] < floor:
                failures.append(
                    f"{workers}-worker speedup {point['speedup_vs_1_worker']}x "
                    f"< {floor}x on {cores} cores"
                )
    report["failures"] = failures

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"# wrote {args.out}", flush=True)

    if failures:
        for failure in failures:
            print(f"FLOOR VIOLATED: {failure}", file=sys.stderr)
        return 1
    print("# all floors satisfied", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
