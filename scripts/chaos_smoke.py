#!/usr/bin/env python3
"""CI smoke test for the fault-injection plane and failure-domain defenses.

Three checks, each on a real 2-worker pool solve of a tiny voting kernel:

1. **Crash + corrupt schedule** — a seeded ``REPRO_FAULTS`` plan crashes one
   worker on its second s-block and corrupts one checkpoint merge.  The pool
   rebuild must recover to exact (<= 1e-10) parity with a serial solve, the
   corrupted artifact must be quarantined (``*.corrupt`` + counter) instead
   of feeding garbage back, and the expected metric deltas must land.
2. **Hang schedule** — one worker sleeps forever inside a block; the
   watchdog (floor 1.5 s here) must terminate the pool, resubmit only the
   unfinished blocks and recover to parity, recording the retry as "hung".
3. **Overhead** — with no plan installed every fault point is a no-op; the
   per-call cost of a disabled ``faults.fire`` is measured directly and a
   best-of-N pool solve with an inert plan installed is compared against one
   with no plan at all (generous CI bound; the measured number is printed
   and normally sits well inside the ±3 % noise band, like obs_smoke).

Every check also asserts a clean directory afterwards: no leaked ``/dev/shm``
segments, no ``*.tmp`` / ``*.plane.tmp`` / ``*.lock`` files.

Run:  PYTHONPATH=src python scripts/chaos_smoke.py
"""
from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, SRC_DIR)

import numpy as np  # noqa: E402

from repro import faults  # noqa: E402
from repro.distributed import (  # noqa: E402
    CheckpointStore,
    MultiprocessingBackend,
    SerialBackend,
)
from repro.laplace.inverter import canonical_s  # noqa: E402
from repro.obs import get_metrics  # noqa: E402
from repro.smp import SPointPolicy  # noqa: E402

SEED = 20030422
S_POINTS = [complex(0.05 * (k + 1), 0.4 * k) for k in range(48)]
#: generous CI bound on the no-plan overhead; the real number is noise (~0%)
MAX_OVERHEAD_FRACTION = 0.10
#: a disabled fire() is one dict lookup; anywhere near this bound is a bug
MAX_DISABLED_FIRE_SECONDS = 2e-6


def _tiny_job(policy=None):
    from repro.core.jobs import PassageTimeJob
    from repro.dnamaca import load_model
    from repro.models import SCALED_CONFIGURATIONS, voting_spec_text
    from repro.petri import build_kernel, explore_vectorized

    net = load_model(voting_spec_text(SCALED_CONFIGURATIONS["tiny"]))
    graph = explore_vectorized(net)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    marking = graph.marking_array()
    targets = np.flatnonzero(marking[:, net.place_index["p2"]] == 4)
    alpha = np.zeros(kernel.n_states)
    alpha[0] = 1.0
    return PassageTimeJob(kernel=kernel, alpha=alpha, targets=targets, policy=policy)


def _shm_entries() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


def _assert_parity(values: dict, reference: dict) -> None:
    assert len(values) == len(reference), (len(values), len(reference))
    worst = max(abs(values[s] - reference[s]) for s in reference)
    assert worst <= 1e-10, f"parity violated: max deviation {worst:.3e}"


def _assert_clean(directory: Path) -> None:
    litter = [
        p for pattern in ("*.tmp", "*.lock", "*.plane.tmp")
        for p in directory.glob(pattern)
    ]
    assert not litter, f"leftover artifacts: {litter}"


def _chaos_solve(spec: str, tmp: Path, policy=None):
    """One 2-worker solve under ``spec`` with a checkpoint store threaded."""
    job = _tiny_job(policy)
    store = CheckpointStore(tmp / "ckpt")
    shm_before = _shm_entries()
    os.environ["REPRO_FAULTS"] = spec
    backend = MultiprocessingBackend(processes=2, block_size=4)
    try:
        values = backend.evaluate(
            job, S_POINTS, checkpoint=store, digest=job.digest()
        )
    finally:
        backend.close()
        del os.environ["REPRO_FAULTS"]
        faults.clear()
    leaked = _shm_entries() - shm_before
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    return job, store, values, backend


def check_crash_and_corrupt_schedule(reference: dict) -> None:
    print("== seeded schedule: worker crash + corrupt checkpoint block ==",
          flush=True)
    registry = get_metrics()
    registry.reset()
    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    try:
        state = tmp / "faults"
        spec = (
            f"seed={SEED};state={state};"
            "worker.solve=crash:limit=1,block=1;"
            "checkpoint.merge=corrupt-bytes:limit=1"
        )
        job, store, values, backend = _chaos_solve(spec, tmp)
        _assert_parity(values, reference)
        claims = sorted(p.name for p in state.glob("rule*.fire*"))
        assert claims, "no fault ever fired"
        assert backend.last_retry_stats["suspected"].get(1) == 1, (
            backend.last_retry_stats
        )

        retries = registry.get("repro_block_retries_total")
        assert retries is not None and retries.value(reason="crashed") >= 1
        injected = registry.get("repro_faults_injected_total")
        assert injected is not None
        assert injected.value(point="checkpoint.merge", action="corrupt-bytes") == 1

        # the corrupted merge is caught at the next read, never served
        recovered = store.load(job.digest())
        assert list(store.directory.glob("*.corrupt")), "no quarantine happened"
        corrupt = registry.get("repro_corrupt_artifacts_total")
        assert corrupt is not None and corrupt.value(kind="checkpoint") == 1
        canonical_reference = {canonical_s(s): v for s, v in reference.items()}
        for s, v in recovered.items():
            assert abs(v - canonical_reference[s]) <= 1e-10
        store.release_artifacts()
        _assert_clean(store.directory)
        print(f"crash+corrupt ok: parity held, {claims} claimed, "
              f"retries={backend.last_retry_stats['retries']}, "
              f"quarantined 1 checkpoint", flush=True)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def check_hang_schedule(reference: dict) -> None:
    print("== seeded schedule: hung worker vs watchdog ==", flush=True)
    registry = get_metrics()
    registry.reset()
    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    try:
        state = tmp / "faults"
        spec = f"seed={SEED};state={state};worker.solve=hang:limit=1,block=3"
        policy = SPointPolicy(watchdog_floor_seconds=1.5, watchdog_multiplier=3.0)
        started = time.perf_counter()
        job, store, values, backend = _chaos_solve(spec, tmp, policy)
        elapsed = time.perf_counter() - started
        _assert_parity(values, reference)
        assert list(state.glob("rule*.fire*")), "the hang never fired"
        assert backend.last_retry_stats["suspected"].get(3) == 1, (
            backend.last_retry_stats
        )
        retries = registry.get("repro_block_retries_total")
        assert retries is not None and retries.value(reason="hung") >= 1
        store.release_artifacts()
        _assert_clean(store.directory)
        print(f"hang ok: watchdog recovered in {elapsed:.1f}s wall "
              f"(1.5s floor), parity held", flush=True)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def check_overhead(reference: dict) -> None:
    print("== disabled fault points are no-ops ==", flush=True)
    faults.clear()
    assert faults.ENV_VAR not in os.environ

    n = 200_000
    started = time.perf_counter()
    for _ in range(n):
        faults.fire("worker.solve", block=1)
    per_call = (time.perf_counter() - started) / n
    print(f"disabled fire(): {per_call * 1e9:.0f} ns/call", flush=True)
    assert per_call < MAX_DISABLED_FIRE_SECONDS, (
        f"disabled fire() costs {per_call * 1e6:.2f} us/call"
    )

    def best_of(runs: int) -> float:
        best = float("inf")
        for _ in range(runs):
            job = _tiny_job()
            backend = MultiprocessingBackend(processes=2, block_size=4)
            started = time.perf_counter()
            try:
                values = backend.evaluate(job, S_POINTS)
            finally:
                backend.close()
            best = min(best, time.perf_counter() - started)
            _assert_parity(values, reference)
        return best

    baseline = best_of(3)
    # an installed-but-inert plan exercises the full rule-match path at every
    # fault point without ever firing
    os.environ["REPRO_FAULTS"] = "inert.point=raise"
    try:
        inert = best_of(3)
    finally:
        del os.environ["REPRO_FAULTS"]
        faults.clear()
    overhead = inert / baseline - 1.0
    print(f"overhead: no plan {baseline * 1e3:.1f} ms, inert plan "
          f"{inert * 1e3:.1f} ms -> {overhead * 100:+.2f}%", flush=True)
    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"fault-point overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}% CI bound"
    )


def main() -> int:
    os.environ.pop("REPRO_FAULTS", None)
    faults.clear()
    reference = SerialBackend().evaluate(_tiny_job(), S_POINTS)
    check_crash_and_corrupt_schedule(reference)
    check_hang_schedule(reference)
    check_overhead(reference)
    get_metrics().reset()
    print("chaos smoke test PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
