#!/usr/bin/env python3
"""CI smoke test: boot ``semimarkov serve`` and run one HTTP passage query.

Starts the server as a real subprocess (the same entry point a user runs),
registers the quickstart machine model (working/broken with Erlang failure
and uniform repair — the semi-Markov example from ``examples/quickstart.py``
expressed in the DNAmaca language), queries it over HTTP, and asserts the
JSON response is sane.  Exits non-zero on any failure.

Run:  PYTHONPATH=src python scripts/server_smoke.py
"""
from __future__ import annotations

import os
import subprocess
import sys
import time

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, SRC_DIR)

from repro.service import ServiceClient, ServiceClientError  # noqa: E402

QUICKSTART_SPEC = r"""
\constant{N}{1}
\model{
  \place{working}{N}
  \place{broken}{0}
  \transition{fail}{
    \condition{working > 0}
    \action{ next->working = working - 1; next->broken = broken + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(2.0, 3, s); }
  }
  \transition{repair}{
    \condition{broken > 0}
    \action{ next->working = working + 1; next->broken = broken - 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return uniformLT(1.0, 2.0, s); }
  }
}
"""

PORT = int(os.environ.get("SMOKE_PORT", "8431"))


def wait_for_health(client: ServiceClient, deadline_seconds: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            if client.health().get("status") == "ok":
                return
        except (ServiceClientError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit("server did not become healthy in time")


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(PORT)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    client = ServiceClient(f"http://127.0.0.1:{PORT}")
    try:
        wait_for_health(client)

        info = client.register_model(QUICKSTART_SPEC, name="quickstart-machine")
        assert info["states"] == 2, info
        print(f"registered model {info['model']} ({info['states']} states)")

        reply = client.passage(
            model=info["model"],
            source="working == 1", target="broken == 1",
            t_points=[0.5, 1.0, 2.0, 4.0], cdf=True, quantile=0.95,
        )
        density, cdf = reply["density"], reply["cdf"]
        assert len(density) == 4 and len(cdf) == 4, reply
        assert all(f >= -1e-9 for f in density), density
        assert all(-1e-6 <= F <= 1.0 + 1e-6 for F in cdf), cdf
        assert cdf == sorted(cdf), cdf
        # Erlang(2,3) time-to-failure: mean 1.5, F(1.5) ~ 0.58.
        assert 0.3 < cdf[1] < 0.6, cdf
        assert 2.0 < reply["quantile"]["t"] < 6.0, reply["quantile"]
        print(f"passage query ok: cdf={['%.4f' % F for F in cdf]}, "
              f"p95={reply['quantile']['t']:.3f}")

        warm = client.passage(
            model=info["model"],
            source="working == 1", target="broken == 1",
            t_points=[0.5, 1.0, 2.0, 4.0], cdf=True,
        )
        assert warm["statistics"]["s_points_computed"] == 0, warm["statistics"]

        stats = client.stats()
        assert stats["queries"]["passage"] >= 2, stats
        assert stats["scheduler"]["points_evaluated"] > 0, stats
        print(f"stats ok: {stats['queries']['total']} queries, "
              f"{stats['scheduler']['points_evaluated']} s-points evaluated, "
              f"{stats['cache']['memory_hits']} memory hits")
        print("server smoke test PASSED")
        return 0
    finally:
        server.terminate()
        try:
            out, _ = server.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            out, _ = server.communicate()
        if out:
            sys.stderr.write("---- server log ----\n" + out.decode(errors="replace"))


if __name__ == "__main__":
    raise SystemExit(main())
