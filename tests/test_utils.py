"""Tests for the shared utility helpers."""
from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    as_generator,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_probability_vector,
    format_seconds,
    require,
    spawn_generators,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        assert check_probability(0) == 0.0
        assert check_probability(1) == 1.0
        for bad in (-0.1, 1.1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_probability(bad)

    def test_check_positive_and_non_negative(self):
        assert check_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0)
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5
        assert check_in_range(1.0, 0.0, 1.0) == 1.0
        with pytest.raises(ValueError):
            check_in_range(1.0, 0.0, 1.0, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0)

    def test_probability_vector(self):
        vec = check_probability_vector([0.25, 0.75])
        assert np.allclose(vec, [0.25, 0.75])
        normalised = check_probability_vector([2.0, 6.0], normalise=True)
        assert np.allclose(normalised, [0.25, 0.75])
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.2])
        with pytest.raises(ValueError):
            check_probability_vector([])
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]])
        with pytest.raises(ValueError):
            check_probability_vector([-0.5, 1.5])
        with pytest.raises(ValueError):
            check_probability_vector([0.0, 0.0], normalise=True)


class TestStopwatch:
    def test_accumulates_across_blocks(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first > 0.0
        assert not sw.running

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()
        with pytest.raises(RuntimeError):
            sw.stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (5e-7, "0.5us"),
            (2e-3, "2.0ms"),
            (1.25, "1.25s"),
            (75.0, "1m15.0s"),
            (3723.5, "1h02m03.5s"),
        ],
    )
    def test_formatting(self, value, expected):
        assert format_seconds(value) == expected

    def test_negative(self):
        assert format_seconds(-2.0) == "-2.00s"


class TestRng:
    def test_as_generator_accepts_all_forms(self):
        g1 = as_generator(42)
        g2 = as_generator(42)
        assert g1.random() == g2.random()
        existing = np.random.default_rng(7)
        assert as_generator(existing) is existing
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawned_streams_are_independent_and_reproducible(self):
        a = spawn_generators(123, 3)
        b = spawn_generators(123, 3)
        assert len(a) == 3
        for ga, gb in zip(a, b):
            assert ga.random() == gb.random()
        values = [g.random() for g in spawn_generators(123, 3)]
        assert len(set(values)) == 3

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(5), 2)
        assert len(children) == 2
        with pytest.raises(ValueError):
            spawn_generators(1, -1)
