"""Chaos schedules: seeded fault plans over a real two-worker solve.

Each schedule injects one failure domain — a worker crash, a silent hang, a
plane attach failure, a corrupted checkpoint write, a full disk — into a
genuine :class:`MultiprocessingBackend` evaluation and asserts the two
invariants every defence must preserve:

* **parity**: the returned values match a serial solve to <= 1e-10, fault or
  no fault — recovery never substitutes approximate or stale results;
* **no leaks**: no shared-memory segments, ``*.plane.tmp``, ``*.tmp`` or
  ``*.lock`` files survive the run once the backend is closed and artifacts
  released.

The schedules are deterministic: triggers are label filters and cross-process
``limit`` tokens (the ``seed`` pins any probabilistic byte picks), so a
failing schedule replays exactly under its ``REPRO_FAULTS`` string.
"""
from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.jobs import PassageTimeJob
from repro.distributed import CheckpointStore, MultiprocessingBackend, SerialBackend
from repro.laplace.inverter import canonical_s
from repro.smp import SPointPolicy, source_weights
from tests.smp.conftest import random_kernel

S_GRID = [complex(0.3 * (k + 1), 0.9 * k) for k in range(16)]


@pytest.fixture(scope="module")
def kernel():
    rng = np.random.default_rng(20030422)
    return random_kernel(rng, 60, density=0.4)


@pytest.fixture(scope="module")
def serial_reference(kernel):
    job = PassageTimeJob(
        kernel=kernel, alpha=source_weights(kernel, [0]), targets=[3, 4]
    )
    return SerialBackend().evaluate(job, S_GRID)


def _job(kernel, policy=None):
    return PassageTimeJob(
        kernel=kernel, alpha=source_weights(kernel, [0]), targets=[3, 4],
        policy=policy,
    )


def _shm_entries():
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


def _run_schedule(job, spec, monkeypatch, *, checkpoint=None, digest=None):
    """One chaos run: set the schedule, solve on two workers, check leaks."""
    shm_before = _shm_entries()
    monkeypatch.setenv("REPRO_FAULTS", spec)
    backend = MultiprocessingBackend(processes=2, block_size=4)
    try:
        values = backend.evaluate(
            job, S_GRID, checkpoint=checkpoint, digest=digest
        )
    finally:
        backend.close()
    assert _shm_entries() <= shm_before  # no leaked kernel planes
    return values, backend


def _assert_parity(values, serial_reference):
    assert len(values) == len(S_GRID)
    for s, expected in serial_reference.items():
        assert values[s] == pytest.approx(expected, abs=1e-10)


def _assert_store_clean(directory):
    assert not list(directory.glob("*.tmp"))
    assert not list(directory.glob("*.lock"))
    assert not list(directory.glob("*.plane.tmp"))


def test_schedule_worker_crash(kernel, serial_reference, tmp_path, monkeypatch):
    state = tmp_path / "faults"
    values, backend = _run_schedule(
        _job(kernel),
        f"seed=1;state={state};worker.solve=crash:limit=1,block=1",
        monkeypatch,
    )
    assert list(state.glob("rule*.fire*"))
    assert backend.last_retry_stats["retries"]
    _assert_parity(values, serial_reference)


def test_schedule_worker_hang(kernel, serial_reference, tmp_path, monkeypatch):
    state = tmp_path / "faults"
    policy = SPointPolicy(watchdog_floor_seconds=1.5, watchdog_multiplier=3.0)
    values, backend = _run_schedule(
        _job(kernel, policy),
        f"seed=2;state={state};worker.solve=hang:limit=1,block=2",
        monkeypatch,
    )
    assert list(state.glob("rule*.fire*"))
    assert backend.last_retry_stats["suspected"].get(2) == 1
    _assert_parity(values, serial_reference)


def test_schedule_plane_attach_failure(
    kernel, serial_reference, tmp_path, monkeypatch
):
    """One worker fails to attach the kernel plane at pool start: the broken
    pool is rebuilt and the rebuilt workers attach cleanly."""
    state = tmp_path / "faults"
    values, _ = _run_schedule(
        _job(kernel),
        f"seed=3;state={state};plane.attach=raise:limit=1",
        monkeypatch,
    )
    assert list(state.glob("rule*.fire*"))
    _assert_parity(values, serial_reference)


def test_schedule_corrupt_checkpoint_block(
    kernel, serial_reference, tmp_path, monkeypatch
):
    """One checkpoint merge writes garbage: the checksum quarantines it on
    the next read, and no corrupted value ever reaches a result."""
    job = _job(kernel)
    store = CheckpointStore(tmp_path / "ckpt")
    state = tmp_path / "faults"
    values, _ = _run_schedule(
        job,
        f"seed=4;state={state};checkpoint.merge=corrupt-bytes:limit=1",
        monkeypatch,
        checkpoint=store,
        digest=job.digest(),
    )
    _assert_parity(values, serial_reference)
    monkeypatch.delenv("REPRO_FAULTS")
    # whatever survived on disk is either quarantined or bit-exact
    recovered = store.load(job.digest())
    assert list(store.directory.glob("*.corrupt"))
    reference = {canonical_s(s): v for s, v in serial_reference.items()}
    for s, v in recovered.items():
        assert v == pytest.approx(reference[s], abs=1e-10)
    store.release_artifacts()
    _assert_store_clean(store.directory)


def test_schedule_checkpoint_enospc(
    kernel, serial_reference, tmp_path, monkeypatch, caplog
):
    """Every checkpoint merge hits a full disk: durability is lost with a
    warning, the in-memory computation is not."""
    job = _job(kernel)
    store = CheckpointStore(tmp_path / "ckpt")
    with caplog.at_level("WARNING", logger="repro.distributed"):
        values, _ = _run_schedule(
            job,
            "seed=5;checkpoint.merge=enospc",
            monkeypatch,
            checkpoint=store,
            digest=job.digest(),
        )
    _assert_parity(values, serial_reference)
    assert any("continuing without durability" in r.message for r in caplog.records)
    monkeypatch.delenv("REPRO_FAULTS")
    assert store.load(job.digest()) == {}  # nothing made it to disk
    store.release_artifacts()
    _assert_store_clean(store.directory)
