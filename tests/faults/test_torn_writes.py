"""Torn and failed writes against the durable artifact stores.

A checkpoint merge can die at any byte: before the temp file exists (full
disk), between writing the temp file and the atomic rename (SIGKILL), or by
writing garbage that only a checksum can catch.  Each case must leave the
store in a state the next reader recovers from — never a half-written file
served as truth, and never a lock that outlives its holder.
"""
from __future__ import annotations

import errno
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.distributed import CheckpointStore
from repro.faults import FaultPlan
from repro.obs.metrics import get_metrics
from repro.smp.plane import PlaneStore
from tests.smp.conftest import random_kernel

SRC = Path(__file__).resolve().parents[2] / "src"

VALUES = {complex(0.5, 1.0): complex(2.0, -3.0), complex(1.5, 0.0): complex(4.0, 0.25)}


class TestCheckpointMerge:
    def test_enospc_merge_leaves_store_clean(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with faults.active(FaultPlan().rule("checkpoint.merge", "enospc")):
            with pytest.raises(OSError) as excinfo:
                store.merge("digest", VALUES)
            assert excinfo.value.errno == errno.ENOSPC
        assert not list(tmp_path.glob("*.tmp"))
        assert store.load("digest") == {}
        # the disk "recovers": the same merge now lands
        store.merge("digest", VALUES)
        assert store.load("digest") == VALUES

    def test_crash_between_write_and_rename_is_invisible(self, tmp_path):
        """Kill the writer after the temp file is full but before os.replace:
        readers see the old state, and release_artifacts reclaims the litter."""
        store = CheckpointStore(tmp_path)
        store.merge("digest", {complex(9.0, 0.0): complex(1.0, 0.0)})
        before = store.load("digest")
        script = (
            "from repro.distributed import CheckpointStore\n"
            f"store = CheckpointStore({str(tmp_path)!r})\n"
            "store.merge('digest', {complex(0.5, 1.0): complex(2.0, -3.0)})\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": str(SRC), "REPRO_FAULTS": "checkpoint.replace=crash"},
            timeout=60,
        )
        assert result.returncode == 1  # the planted crash fired
        assert list(tmp_path.glob("*.tmp"))  # the torn temp file is stranded
        assert store.load("digest") == before  # readers never saw it
        store.release_artifacts()
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob("*.lock"))

    def test_lock_held_by_killed_process_does_not_deadlock(self, tmp_path):
        """flock dies with its holder: a merge blocked behind a killed writer
        proceeds as soon as the kernel reaps the lock, with no staleness
        timeout to sit out."""
        store = CheckpointStore(tmp_path)
        lock_path = store._path("digest").with_suffix(".lock")
        script = (
            "import fcntl, os, sys, time\n"
            f"fd = os.open({str(lock_path)!r}, os.O_CREAT | os.O_RDWR, 0o644)\n"
            "fcntl.flock(fd, fcntl.LOCK_EX)\n"
            "print('locked', flush=True)\n"
            "time.sleep(60)\n"
        )
        holder = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.PIPE, text=True
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            done = threading.Event()

            def _merge():
                store.merge("digest", VALUES)
                done.set()

            thread = threading.Thread(target=_merge, daemon=True)
            thread.start()
            assert not done.wait(0.3)  # genuinely blocked behind the holder
            holder.kill()
            holder.wait(timeout=10)
            assert done.wait(10.0)  # released by holder death, not a timeout
            thread.join(timeout=10)
        finally:
            if holder.poll() is None:
                holder.kill()
            holder.wait(timeout=10)
        assert store.load("digest") == VALUES

    def test_corrupted_merge_is_quarantined_on_load(self, tmp_path):
        registry = get_metrics()
        saved = registry.snapshot()
        registry.reset()
        try:
            store = CheckpointStore(tmp_path)
            with faults.active(
                FaultPlan(seed=11).rule("checkpoint.merge", "corrupt-bytes")
            ):
                store.merge("digest", VALUES)
            assert store.load("digest") == {}  # never serve garbage
            assert list(tmp_path.glob("*.corrupt"))
            counter = registry.get("repro_corrupt_artifacts_total")
            assert counter is not None
            assert counter.value(kind="checkpoint") == 1
            # the digest starts afresh and works again
            store.merge("digest", VALUES)
            assert store.load("digest") == VALUES
        finally:
            registry.reset()
            registry.absorb(saved)


class TestPlaneStore:
    def test_corrupt_export_is_quarantined_and_rebuilt(self, tmp_path):
        rng = np.random.default_rng(20030407)
        kernel = random_kernel(rng, 24, density=0.4)
        evaluator = kernel.evaluator()
        store = PlaneStore(tmp_path)
        with faults.active(
            FaultPlan(seed=3).rule("plane.export", "corrupt-bytes", limit=1)
        ):
            handle = store.export(evaluator)
        digest = Path(handle.ref).name.split(".")[0]
        with pytest.raises(FileNotFoundError, match="quarantined"):
            store.attach(digest)
        assert list(tmp_path.glob("*.corrupt"))
        # idempotent re-export notices the digest has no valid plane left
        store.export(evaluator)
        attached = store.attach(digest)
        try:
            np.testing.assert_array_equal(
                attached.evaluator._csr_probs, evaluator._csr_probs
            )
        finally:
            attached.close()
