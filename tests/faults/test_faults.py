"""Unit semantics of the fault-injection plane (`repro.faults`).

The plan/rule machinery is what every chaos schedule in this suite trusts:
the spec grammar must round-trip, triggers (probability / after / limit)
must be deterministic under a seed, and a fire point with no plan installed
must stay a no-op.
"""
from __future__ import annotations

import errno
import pickle
import time

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultRule
from repro.obs.metrics import get_metrics


class TestSpecGrammar:
    def test_parse_spec_round_trip(self):
        spec = (
            "seed=7;state=/tmp/chaos;"
            "worker.solve=crash:limit=1,block=1;"
            "checkpoint.merge=delay:p=0.25,after=2,seconds=0.5"
        )
        plan = FaultPlan.parse(spec)
        assert plan.seed == 7
        assert str(plan.state_dir) == "/tmp/chaos"
        assert [r.point for r in plan.rules] == ["worker.solve", "checkpoint.merge"]
        crash, delay = plan.rules
        assert crash.action == "crash"
        assert crash.limit == 1
        assert crash.match == {"block": "1"}
        assert delay.probability == 0.25
        assert delay.after == 2
        assert delay.seconds == 0.5
        # spec() re-emits a string that parses back to the same rules
        again = FaultPlan.parse(plan.spec())
        assert again.seed == plan.seed
        assert again.rules == plan.rules

    def test_builder_and_p_alias(self):
        plan = FaultPlan(seed=3).rule("a.b", "raise", p=0.5, tenant="t1")
        (rule,) = plan.rules
        assert rule.probability == 0.5
        assert rule.match == {"tenant": "t1"}

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule("a.b", "explode")

    def test_trigger_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("a.b", "raise", probability=1.5)
        with pytest.raises(ValueError, match="limit"):
            FaultRule("a.b", "raise", limit=0)
        with pytest.raises(ValueError, match="after"):
            FaultRule("a.b", "raise", after=-1)


class TestTriggers:
    def test_label_filters_compare_as_strings(self):
        plan = FaultPlan().rule("point", "raise", block=1)
        with pytest.raises(FaultInjected):
            plan.fire("point", block=1)
        plan = FaultPlan().rule("point", "raise", block=1)
        plan.fire("point", block=2)  # filtered out: no fire
        plan.fire("other", block=1)  # different point: no fire

    def test_after_skips_first_hits(self):
        plan = FaultPlan().rule("point", "raise", after=2)
        plan.fire("point")
        plan.fire("point")
        with pytest.raises(FaultInjected):
            plan.fire("point")

    def test_limit_caps_firings_per_process(self):
        plan = FaultPlan().rule("point", "raise", limit=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("point")
        plan.fire("point")  # budget exhausted: no fire

    def test_limit_is_cross_process_with_state_dir(self, tmp_path):
        state = tmp_path / "state"
        first = FaultPlan(state_dir=state).rule("point", "raise", limit=1)
        with pytest.raises(FaultInjected):
            first.fire("point")
        assert list(state.glob("rule0.fire*"))
        # a second plan (another process parsing the same env spec) sees the
        # claimed token and lets the call through
        second = FaultPlan.parse(first.spec())
        second.fire("point")

    def test_probability_is_seed_deterministic(self):
        def fired(seed):
            plan = FaultPlan(seed=seed).rule("point", "raise", p=0.5)
            hits = []
            for _ in range(32):
                try:
                    plan.fire("point")
                except FaultInjected:
                    hits.append(True)
                else:
                    hits.append(False)
            return hits

        assert fired(42) == fired(42)
        assert any(fired(42)) and not all(fired(42))
        assert fired(42) != fired(43)


class TestActions:
    def test_enospc_raises_oserror(self):
        plan = FaultPlan().rule("point", "enospc")
        with pytest.raises(OSError) as excinfo:
            plan.fire("point")
        assert excinfo.value.errno == errno.ENOSPC

    def test_delay_sleeps_roughly_seconds(self):
        plan = FaultPlan().rule("point", "delay", seconds=0.05)
        start = time.perf_counter()
        plan.fire("point")
        assert time.perf_counter() - start >= 0.04

    def test_fault_injected_pickles_round_trip(self):
        error = FaultInjected("worker.solve")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.point == "worker.solve"
        assert clone.action == "raise"
        assert str(clone) == str(error)

    def test_mangle_flips_bytes_deterministically(self):
        data = bytes(range(256)) * 8
        plan = FaultPlan(seed=5).rule("point", "corrupt-bytes")
        mutated = plan.mangle("point", data)
        assert mutated != data
        assert len(mutated) == len(data)
        again = FaultPlan(seed=5).rule("point", "corrupt-bytes")
        assert again.mangle("point", data) == mutated

    def test_mangle_without_matching_rule_is_identity(self):
        plan = FaultPlan().rule("other", "corrupt-bytes")
        assert plan.mangle("point", b"abc") == b"abc"

    def test_corrupt_buffer_flips_in_place_past_start(self):
        plan = FaultPlan(seed=9).rule("point", "corrupt-bytes")
        buf = bytearray(b"\x00" * 4096)
        assert plan.corrupt_buffer("point", buf, start=1024)
        assert any(buf)
        assert not any(buf[:1024])  # the header region is never touched

    def test_corrupt_rules_do_not_fire_at_fire_points(self):
        plan = FaultPlan().rule("point", "corrupt-bytes")
        plan.fire("point")  # consumed only by mangle/corrupt_buffer


class TestSwitchboard:
    def test_fire_is_noop_without_plan(self):
        faults.fire("anything.at.all", block=3)

    def test_env_spec_reaches_module_fire(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "point=raise")
        with pytest.raises(FaultInjected):
            faults.fire("point")

    def test_env_cache_tracks_the_raw_string(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "point=raise:limit=1")
        with pytest.raises(FaultInjected):
            faults.fire("point")
        faults.fire("point")  # same spec, same cached plan: limit holds
        monkeypatch.setenv(faults.ENV_VAR, "point=raise:limit=1,fresh=x")
        with pytest.raises(FaultInjected):
            faults.fire("point", fresh="x")  # changed spec re-parses

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "point=raise")
        with faults.active(FaultPlan()):
            faults.fire("point")  # the (empty) installed plan masks the env

    def test_injection_increments_metric(self):
        registry = get_metrics()
        saved = registry.snapshot()
        registry.reset()
        try:
            with faults.active(FaultPlan().rule("point", "raise")):
                with pytest.raises(FaultInjected):
                    faults.fire("point")
            counter = registry.get("repro_faults_injected_total")
            assert counter is not None
            assert counter.value(point="point", action="raise") == 1
        finally:
            registry.reset()
            registry.absorb(saved)
