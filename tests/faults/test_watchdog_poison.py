"""Hung-worker watchdog and poison-block quarantine on the dispatch backend.

A worker that crashes is loud; one that wedges is silent — the pool would
wait forever.  The watchdog turns silence into a pool break, and the poison
tracker turns *repeated* breaks on one block into a fast, structured failure
instead of burning the whole retry budget on a deterministic crasher.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core.jobs import PassageTimeJob
from repro.distributed import MultiprocessingBackend, PoisonBlockError, SerialBackend
from repro.smp import SPointPolicy, source_weights
from tests.smp.conftest import random_kernel

S_GRID = [complex(0.3 * (k + 1), 0.9 * k) for k in range(16)]


@pytest.fixture(scope="module")
def kernel():
    rng = np.random.default_rng(20030422)
    return random_kernel(rng, 60, density=0.4)


def _job(kernel, policy=None):
    return PassageTimeJob(
        kernel=kernel, alpha=source_weights(kernel, [0]), targets=[3, 4],
        policy=policy,
    )


class TestWatchdog:
    def test_hung_worker_is_terminated_and_block_resubmitted(
        self, kernel, tmp_path, monkeypatch
    ):
        state = tmp_path / "faults"
        monkeypatch.setenv(
            "REPRO_FAULTS", f"state={state};worker.solve=hang:limit=1,block=2"
        )
        policy = SPointPolicy(watchdog_floor_seconds=1.5, watchdog_multiplier=3.0)
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            values = backend.evaluate(_job(kernel, policy), S_GRID)
        finally:
            backend.close()
        assert list(state.glob("rule*.fire*"))  # the hang really happened
        stats = backend.last_retry_stats
        assert stats["suspected"].get(2) == 1  # the hung block, nothing else
        assert 2 in stats["retries"]
        serial = SerialBackend().evaluate(_job(kernel), S_GRID)
        for s, v in serial.items():
            assert values[s] == pytest.approx(v, abs=1e-12)

    def test_multiplier_zero_disables_watchdog(self):
        policy = SPointPolicy(watchdog_multiplier=0.0)
        assert policy.watchdog_multiplier == 0.0  # accepted, not rejected


class TestPoisonQuarantine:
    def test_deterministic_crasher_fails_fast_with_structured_error(
        self, kernel, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker.solve=crash:block=1")
        policy = SPointPolicy(poison_after=2)
        job = _job(kernel, policy)
        engine = policy.resolve_engine(job.evaluator)
        size = min(
            4, policy.dispatch_block_points(job.evaluator, engine, len(S_GRID), 2)
        )
        backend = MultiprocessingBackend(processes=2, block_size=4, max_retries=10)
        try:
            with pytest.raises(PoisonBlockError) as excinfo:
                backend.evaluate(job, S_GRID)
        finally:
            backend.close()
        error = excinfo.value
        assert error.block_index == 1
        assert error.failures == 2
        assert error.reason == "crashed"
        assert error.s_points == [complex(s) for s in S_GRID[size : 2 * size]]
        assert "quarantined" in str(error)
        assert f"{error.s_points[0]:.6g}" in str(error)

    def test_innocent_blocks_are_not_poisoned(self, kernel, tmp_path, monkeypatch):
        """A transient crash (limit=1) retries cleanly: the rest of the grid
        finishes and nothing reaches the poison threshold, even with the
        threshold at its floor."""
        state = tmp_path / "faults"
        monkeypatch.setenv(
            "REPRO_FAULTS", f"state={state};worker.solve=crash:limit=1,block=1"
        )
        policy = SPointPolicy(poison_after=2)
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            values = backend.evaluate(_job(kernel, policy), S_GRID)
        finally:
            backend.close()
        assert len(values) == len(S_GRID)
        assert backend.last_retry_stats["suspected"] == {1: 1}


class TestPolicyKnobs:
    def test_validation(self):
        with pytest.raises(ValueError, match="watchdog_floor_seconds"):
            SPointPolicy(watchdog_floor_seconds=0.0)
        with pytest.raises(ValueError, match="poison_after"):
            SPointPolicy(poison_after=0)

    def test_failure_knobs_do_not_perturb_job_digests(self, kernel):
        """The watchdog/poison fields tune failure handling, not arithmetic:
        they are excluded from repr, so checkpoint digests keyed off
        ``{policy!r}`` are insensitive to them."""
        assert repr(
            SPointPolicy(
                watchdog_floor_seconds=1.0, watchdog_multiplier=2.0, poison_after=1
            )
        ) == repr(SPointPolicy())
        hardened = _job(
            kernel, SPointPolicy(watchdog_floor_seconds=1.0, poison_after=1)
        )
        assert hardened.digest() == _job(kernel, SPointPolicy()).digest()
