"""Shared fixtures for the fault-injection suite."""
from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_fault_plane(monkeypatch):
    """Every test starts and ends with no plan installed and no env spec."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()
