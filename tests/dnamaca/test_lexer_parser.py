"""Tests for the DNAmaca lexer and parser."""
from __future__ import annotations

import pytest

from repro.dnamaca import parse_model, strip_comments, tokenize_blocks
from repro.dnamaca.lexer import DNAmacaSyntaxError

PAPER_T5 = r"""
\transition{t5}{
  \condition{p7 > MM-1}
  \action{
    next->p3 = p3 + MM;
    next->p7 = p7 - MM;
  }
  \weight{1.0}
  \priority{2}
  \sojourntimeLT{
    return (0.8 * uniformLT(1.5,10,s)
          + 0.2 * erlangLT(0.001,5,s));
  }
}
"""


class TestLexer:
    def test_strip_comments(self):
        text = "keep this % drop this\nnext line"
        assert strip_comments(text) == "keep this \nnext line"

    def test_simple_block(self):
        blocks = tokenize_blocks(r"\constant{MM}{6}")
        assert len(blocks) == 1
        assert blocks[0].name == "constant"
        assert blocks[0].args == ["MM", "6"]

    def test_nested_blocks_preserved_in_body(self):
        blocks = tokenize_blocks(PAPER_T5)
        assert len(blocks) == 1
        assert blocks[0].name == "transition"
        assert blocks[0].args[0] == "t5"
        inner = tokenize_blocks(blocks[0].args[1])
        assert [b.name for b in inner] == [
            "condition",
            "action",
            "weight",
            "priority",
            "sojourntimeLT",
        ]

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(DNAmacaSyntaxError, match="unbalanced"):
            tokenize_blocks(r"\constant{MM}{6")

    def test_stray_text_rejected(self):
        with pytest.raises(DNAmacaSyntaxError):
            tokenize_blocks("hello world")

    def test_missing_arguments_rejected(self):
        with pytest.raises(DNAmacaSyntaxError):
            tokenize_blocks(r"\constant")

    def test_missing_name_rejected(self):
        with pytest.raises(DNAmacaSyntaxError):
            tokenize_blocks("\\{body}")


MINIMAL_MODEL = r"""
\constant{K}{3}
\model{
  \place{on}{K}
  \place{off}{0}
  \transition{fail}{
    \condition{on > 0}
    \action{ next->on = on - 1; next->off = off + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return expLT(0.5, s); }
  }
  \transition{repair}{
    \condition{off > 0}
    \action{ next->on = on + 1; next->off = off - 1; }
    \weight{2.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(1.0, 2, s); }
  }
}
"""


class TestParser:
    def test_minimal_model_structure(self):
        spec = parse_model(MINIMAL_MODEL, name="on-off")
        assert spec.name == "on-off"
        assert spec.constants == {"K": 3.0}
        assert spec.place_names() == ["on", "off"]
        assert [t.name for t in spec.transitions] == ["fail", "repair"]
        fail = spec.transitions[0]
        assert fail.condition == "on > 0"
        assert fail.action == [("on", "on - 1"), ("off", "off + 1")]
        assert fail.weight == "1.0"
        assert fail.priority == "1"
        assert "expLT" in fail.sojourn_lt

    def test_paper_t5_transition_parses(self):
        text = r"\place{p3}{0} \place{p7}{6} \constant{MM}{6}" + PAPER_T5
        spec = parse_model(text)
        t5 = spec.transitions[0]
        assert t5.name == "t5"
        assert t5.condition == "p7 > MM-1"
        assert t5.priority == "2"
        assert ("p3", "p3 + MM") in t5.action
        assert ("p7", "p7 - MM") in t5.action

    def test_duplicate_place_rejected(self):
        with pytest.raises(DNAmacaSyntaxError, match="duplicate place"):
            parse_model(r"\place{a}{1} \place{a}{2}" + PAPER_T5.replace("p3", "a").replace("p7", "a"))

    def test_missing_sojourn_rejected(self):
        bad = r"""
        \place{a}{1}
        \transition{t}{
          \condition{a > 0}
          \action{ next->a = a - 1; }
        }
        """
        with pytest.raises(DNAmacaSyntaxError, match="sojourntimeLT"):
            parse_model(bad)

    def test_bad_constant_value_rejected(self):
        with pytest.raises(DNAmacaSyntaxError, match="numeric literal"):
            parse_model(r"\constant{K}{three}" + MINIMAL_MODEL)

    def test_unknown_clause_rejected(self):
        bad = r"""
        \place{a}{1}
        \transition{t}{
          \condition{a > 0}
          \frobnicate{1}
          \sojourntimeLT{ return expLT(1.0, s); }
        }
        """
        with pytest.raises(DNAmacaSyntaxError, match="unknown clause"):
            parse_model(bad)

    def test_malformed_action_rejected(self):
        bad = r"""
        \place{a}{1}
        \transition{t}{
          \condition{a > 0}
          \action{ a := a - 1; }
          \sojourntimeLT{ return expLT(1.0, s); }
        }
        """
        with pytest.raises(DNAmacaSyntaxError, match="action"):
            parse_model(bad)

    def test_empty_model_rejected(self):
        with pytest.raises(DNAmacaSyntaxError):
            parse_model(r"\constant{K}{1}")
