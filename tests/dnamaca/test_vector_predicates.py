"""Compiled (vectorized) marking predicates vs. the per-state interpreter.

Satellite regression: for every example specification and a battery of
expressions — including empty sets, all-state sets and nested
and/or/comparison forms — the columnar one-pass evaluation must select
exactly the states the per-state :func:`marking_predicate` walk selects.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.dnamaca import load_model
from repro.dnamaca.expressions import ExpressionError, marking_predicate
from repro.dnamaca.vectorize import VectorizedExpression, vector_marking_predicate
from repro.models import SCALED_CONFIGURATIONS, build_voting_net, voting_spec_text
from repro.models.queues import web_server_net
from repro.petri import explore_vectorized

TINY = SCALED_CONFIGURATIONS["tiny"]

VOTING_CONSTANTS = {"CC": 4.0, "MM": 2.0, "NN": 2.0}
VOTING_EXPRESSIONS = [
    "p2 == CC",                                  # paper's all-voted target
    "p7 >= MM || p6 >= NN",                      # failure mode (nested or)
    "p1 > 0 && (p3 > 0 || p4 > 0)",              # nested and/or
    "p6 == 0 && p7 == 0",
    "1 > 2",                                     # empty set (constant false)
    "1 <= 2",                                    # all states (constant true)
    "!(p2 == CC)",                               # negation
    "0 < p2 < CC",                               # chained comparison
    "p2 >= CC - p1 - p4",                        # arithmetic across columns
    "min(p3, p5) >= 1",
    "max(p6, p7) == 0",
    "abs(p1 - p2) <= CC",
    "p1 + p2 + p4 == CC",                        # conserved invariant: all states
    "p2 % 2 == 0",
    "p1 // 2 >= 1",
    "(p5 if p5 > 0 else NN) >= 1",               # conditional expression
]

WEB_EXPRESSIONS = [
    "queue > 0 && free == 0",
    "failed >= 2 || busy >= 2",
    "queue == 0",
]


def assert_equivalent(graph, constants, expression):
    scalar = marking_predicate(expression, constants)
    by_loop = graph.states_where(scalar)
    vector = vector_marking_predicate(expression, constants)
    mask = vector(graph.marking_array(), graph.net.place_index)
    assert mask.dtype == bool and mask.shape == (graph.n_states,)
    assert np.flatnonzero(mask).tolist() == by_loop, expression


@pytest.fixture(scope="module")
def voting_spaces():
    net_programmatic = build_voting_net(TINY)
    net_spec = load_model(voting_spec_text(TINY), name="voting-spec")
    return explore_vectorized(net_programmatic), explore_vectorized(net_spec)


@pytest.mark.parametrize("expression", VOTING_EXPRESSIONS)
def test_voting_predicates_scalar_vs_vector(voting_spaces, expression):
    for space in voting_spaces:
        assert_equivalent(space, VOTING_CONSTANTS, expression)


@pytest.mark.parametrize("expression", WEB_EXPRESSIONS)
def test_web_server_predicates_scalar_vs_vector(expression):
    space = explore_vectorized(web_server_net())
    assert_equivalent(space, {}, expression)


def test_empty_and_full_sets(voting_spaces):
    space = voting_spaces[0]
    assert space.states_matching("1 > 2").size == 0
    assert space.states_matching("1 <= 2").size == space.n_states
    # a scalar (constant-only) result broadcasts over all states
    assert space.states_matching("CC > 0", VOTING_CONSTANTS).size == space.n_states


def test_place_columns_shadow_constants(voting_spaces):
    space = voting_spaces[0]
    shadowed = space.states_matching("p2 == 0", {"p2": 123.0})
    plain = space.states_matching("p2 == 0")
    assert shadowed.tolist() == plain.tolist()


def test_unknown_name_raises_expression_error(voting_spaces):
    space = voting_spaces[0]
    with pytest.raises(ExpressionError, match="unknown name"):
        space.states_matching("p99 > 0")


def test_predicate_arithmetic_faults_match_scalar(voting_spaces):
    """A predicate dividing by a zero token count raises (as the per-state
    path always did) instead of silently returning a wrong state set."""
    space = voting_spaces[0]
    with pytest.raises(ZeroDivisionError):
        space.states_where(marking_predicate("10 / p4 > 2"))
    with pytest.raises(ZeroDivisionError):
        vector_marking_predicate("10 / p4 > 2")(
            space.marking_array(), space.net.place_index
        )


def test_predicate_lazy_branch_division_matches_scalar(voting_spaces):
    """Division guarded by the if-branch stays legal: the fallback re-runs
    the scalar interpreter, which skips the untaken branch lazily."""
    space = voting_spaces[0]
    expression = "(10 / p4 if p4 > 0 else 0) > 2"
    assert_equivalent(space, {}, expression)


def test_vectorized_expression_scalar_inputs():
    expr = VectorizedExpression("a + b * 2")
    assert expr.evaluate({"a": 1, "b": 3}) == 7
    assert expr.names() == {"a", "b"}


def test_vectorized_expression_matches_scalar_on_random_columns():
    rng = np.random.default_rng(7)
    columns = {name: rng.integers(0, 6, size=64) for name in ("x", "y", "z")}
    expressions = [
        "x + y - z",
        "x * y % (z + 1)",
        "x > y && y >= z || x == z",
        "(x if x > y else y) + z",
        "int(x / (y + 1)) + min(y, z, x)",
        "-x + +y",
        "not (x == y)",
        "x ** 2 - y ** 2",
    ]
    for source in expressions:
        vec = VectorizedExpression(source)
        got = np.asarray(vec.evaluate(dict(columns)))
        from repro.dnamaca.expressions import SafeExpression

        scalar = SafeExpression(source)
        want = [
            scalar.evaluate({k: int(v[i]) for k, v in columns.items()})
            for i in range(64)
        ]
        assert np.array_equal(got, np.asarray(want)), source
