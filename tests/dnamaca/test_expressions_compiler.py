"""Tests for expression evaluation, LT interpretation and model compilation."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential, Mixture, Uniform
from repro.dnamaca import SafeExpression, load_model, parse_lt_expression, parse_overrides
from repro.dnamaca.expressions import ExpressionError
from repro.petri import explore


class TestParseOverrides:
    """The one shared ``--set`` / overrides-object validator (CLI + service)."""

    def test_none_and_empty(self):
        assert parse_overrides(None) == {}
        assert parse_overrides([]) == {}
        assert parse_overrides({}) == {}

    def test_cli_pairs(self):
        assert parse_overrides(["K=4", "rate = 2.5"]) == {"K": 4.0, "rate": 2.5}

    def test_single_string_is_one_pair(self):
        assert parse_overrides("K=4") == {"K": 4.0}

    def test_mapping_with_numeric_strings(self):
        assert parse_overrides({"K": "4", "MM": 2}) == {"K": 4.0, "MM": 2.0}

    def test_missing_equals_is_named(self):
        with pytest.raises(ExpressionError, match="K:4"):
            parse_overrides(["K:4"])

    def test_bad_value_is_named(self):
        with pytest.raises(ExpressionError, match="many"):
            parse_overrides(["K=many"])
        with pytest.raises(ExpressionError, match="NaN-ish"):
            parse_overrides({"K": "NaN-ish"})

    def test_bad_name_is_named(self):
        with pytest.raises(ExpressionError, match="2K"):
            parse_overrides(["2K=4"])
        with pytest.raises(ExpressionError, match="non-empty"):
            parse_overrides(["=4"])


class TestSafeExpression:
    def test_arithmetic_and_names(self):
        e = SafeExpression("p7 + 2 * MM - 1")
        assert e.evaluate({"p7": 3, "MM": 6}) == 14
        assert e.names() == {"p7", "MM"}

    def test_paper_condition(self):
        e = SafeExpression("p7 > MM-1")
        assert e.evaluate({"p7": 6, "MM": 6}) is True
        assert e.evaluate({"p7": 5, "MM": 6}) is False

    def test_c_style_boolean_operators(self):
        e = SafeExpression("p1 > 0 && p3 > 0 || !(p5 > 0)")
        assert e.evaluate({"p1": 1, "p3": 1, "p5": 1}) is True
        assert e.evaluate({"p1": 0, "p3": 1, "p5": 1}) is False
        assert e.evaluate({"p1": 0, "p3": 0, "p5": 0}) is True

    def test_builtin_functions(self):
        e = SafeExpression("max(p5, 1) + min(p6, 2)")
        assert e.evaluate({"p5": 0, "p6": 5}) == 3

    def test_conditional_expression(self):
        e = SafeExpression("2 if p1 > 0 else 5")
        assert e.evaluate({"p1": 1}) == 2
        assert e.evaluate({"p1": 0}) == 5

    def test_unknown_name_reported(self):
        with pytest.raises(ExpressionError, match="unknown name"):
            SafeExpression("qqq + 1").evaluate({})

    def test_dangerous_constructs_rejected(self):
        for source in [
            "__import__('os')",
            "open('/etc/passwd')",
            "[1,2,3]",
            "p1.attribute",
            "lambda: 1",
            "'string'",
        ]:
            with pytest.raises(ExpressionError):
                SafeExpression(source)

    def test_empty_expression_rejected(self):
        with pytest.raises(ExpressionError):
            SafeExpression("   ")


class TestLTExpressions:
    def test_single_call(self):
        dist = parse_lt_expression("return expLT(2.5, s);").build({})
        assert dist == Exponential(2.5)

    def test_paper_t5_mixture(self):
        dist = parse_lt_expression(
            "return (0.8 * uniformLT(1.5,10,s) + 0.2 * erlangLT(0.001,5,s));"
        ).build({})
        assert isinstance(dist, Mixture)
        assert dist == Mixture([Uniform(1.5, 10.0), Erlang(0.001, 5)], [0.8, 0.2])
        # The transform matches the paper's additive formula.
        s = 0.05 + 0.4j
        expected = 0.8 * Uniform(1.5, 10.0).lst(s) + 0.2 * Erlang(0.001, 5).lst(s)
        assert dist.lst(s) == pytest.approx(expected)

    def test_marking_dependent_parameters(self):
        expr = parse_lt_expression("return erlangLT(4.0, max(p5, 1), s);")
        assert expr.build({"p5": 3}) == Erlang(4.0, 3)
        assert expr.build({"p5": 0}) == Erlang(4.0, 1)

    def test_convolution_of_calls(self):
        dist = parse_lt_expression("return detLT(1.0, s) * expLT(2.0, s);").build({})
        s = 1.0 + 1.0j
        assert dist.lst(s) == pytest.approx(np.exp(-s) * 2.0 / (2.0 + s))

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ExpressionError, match="sum to 1"):
            parse_lt_expression("0.5 * expLT(1.0, s) + 0.2 * expLT(2.0, s)").build({})

    def test_bare_number_rejected(self):
        with pytest.raises(ExpressionError):
            parse_lt_expression("return 42;").build({})

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError, match="known functions"):
            parse_lt_expression("return normalLT(0, 1, s);").build({})


ON_OFF_MODEL = r"""
\constant{K}{2}
\model{
  \place{on}{K}
  \place{off}{0}
  \transition{fail}{
    \condition{on > 0}
    \action{ next->on = on - 1; next->off = off + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return expLT(0.5, s); }
  }
  \transition{repair}{
    \condition{off > 0}
    \action{ next->on = on + 1; next->off = off - 1; }
    \weight{2.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(1.0, 2, s); }
  }
}
"""


class TestCompiler:
    def test_compiled_net_state_space(self):
        net = load_model(ON_OFF_MODEL, name="on-off")
        assert net.initial_marking == (2, 0)
        graph = explore(net)
        assert graph.n_states == 3  # on in {0, 1, 2}
        assert not graph.deadlocks

    def test_weights_become_probabilities(self):
        net = load_model(ON_OFF_MODEL)
        choices = net.firing_choices((1, 1))
        probs = {t.name: p for t, p, _, _ in choices}
        assert probs["fail"] == pytest.approx(1.0 / 3.0)
        assert probs["repair"] == pytest.approx(2.0 / 3.0)

    def test_constant_overrides(self):
        net = load_model(ON_OFF_MODEL, overrides={"K": 5})
        assert net.initial_marking == (5, 0)
        with pytest.raises(KeyError):
            load_model(ON_OFF_MODEL, overrides={"ZZ": 1})

    def test_spec_and_python_voting_models_agree(self):
        """The DNAmaca voting spec generates the same state space as the
        directly constructed net (tiny configuration)."""
        from repro.models import SCALED_CONFIGURATIONS, build_voting_graph, voting_spec_text

        params = SCALED_CONFIGURATIONS["tiny"]
        spec_net = load_model(voting_spec_text(params), name="voting-spec")
        spec_graph = explore(spec_net)
        py_graph = build_voting_graph(params)
        assert spec_graph.n_states == py_graph.n_states
        assert spec_graph.n_edges == py_graph.n_edges
        assert sorted(spec_graph.markings) == sorted(py_graph.markings)

    def test_unknown_name_in_condition_reported_at_compile_time(self):
        bad = ON_OFF_MODEL.replace("on > 0", "bogus > 0")
        with pytest.raises(ExpressionError, match="unknown name"):
            load_model(bad)

    def test_unknown_place_in_action_reported(self):
        bad = ON_OFF_MODEL.replace("next->off = off + 1;", "next->zzz = off + 1;")
        with pytest.raises(ExpressionError):
            load_model(bad)
