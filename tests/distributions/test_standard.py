"""Unit tests for the standard distribution library."""
from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    Immediate,
    LogNormal,
    Pareto,
    Uniform,
    Weibull,
)

ALL_DISTS = [
    Exponential(2.0),
    Erlang(1.5, 3),
    Gamma(2.5, 1.2),
    Uniform(0.5, 2.5),
    Deterministic(1.75),
    Immediate(),
    Weibull(1.5, 2.0),
    LogNormal(0.1, 0.4),
    Pareto(3.0, 1.0),
    HyperExponential([0.3, 0.7], [1.0, 5.0]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
class TestCommonContract:
    def test_lst_at_zero_is_one(self, dist):
        assert abs(dist.lst(0.0) - 1.0) < 1e-8

    def test_lst_magnitude_bounded_by_one(self, dist):
        s = np.array([0.5 + 3j, 2.0 - 7j, 10.0 + 0.1j, 0.01 + 0j])
        vals = np.asarray(dist.lst(s))
        assert np.all(np.abs(vals) <= 1.0 + 1e-9)

    def test_lst_conjugate_symmetry(self, dist):
        s = 1.3 + 4.7j
        assert dist.lst(np.conj(s)) == pytest.approx(np.conj(dist.lst(s)), rel=1e-9, abs=1e-12)

    def test_lst_shape_matches_input(self, dist):
        s = np.array([[0.1 + 1j, 0.2], [2.0, 3.0 + 4j]])
        out = np.asarray(dist.lst(s))
        assert out.shape == s.shape
        assert isinstance(dist.lst(0.5 + 0.5j), complex)

    def test_sample_nonnegative_and_mean(self, dist, rng):
        samples = np.asarray(dist.sample(rng, size=4000), dtype=float)
        assert samples.shape == (4000,)
        assert np.all(samples >= 0.0)
        mean = dist.mean()
        if math.isfinite(mean) and mean > 0:
            # 5 sigma-ish tolerance using the sample std.
            tol = 5 * samples.std() / math.sqrt(len(samples)) + 1e-9
            assert abs(samples.mean() - mean) < max(tol, 0.05 * mean)

    def test_equality_and_hash(self, dist):
        assert dist == dist
        assert hash(dist) == hash(dist)
        assert dist != Exponential(123.456)


class TestExponential:
    def test_lst_closed_form(self):
        d = Exponential(3.0)
        s = 2.0 + 5.0j
        assert d.lst(s) == pytest.approx(3.0 / (3.0 + s))

    def test_moments(self):
        d = Exponential(4.0)
        assert d.mean() == pytest.approx(0.25)
        assert d.variance() == pytest.approx(0.0625)

    def test_pdf_cdf_consistency(self):
        from scipy.integrate import cumulative_trapezoid

        d = Exponential(1.5)
        t = np.linspace(0, 5, 200)
        numeric_cdf = cumulative_trapezoid(d.pdf(t), t, initial=0.0)
        assert np.max(np.abs(numeric_cdf - d.cdf(t))) < 2e-3

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)


class TestErlangAndGamma:
    def test_erlang_matches_paper_formula(self):
        lam, n = 0.001, 5
        d = Erlang(lam, n)
        s = 0.02 + 0.3j
        assert d.lst(s) == pytest.approx((lam / (lam + s)) ** n)

    def test_erlang_is_gamma_special_case(self):
        e = Erlang(2.0, 4)
        g = Gamma(4.0, 2.0)
        s = np.array([0.1, 1.0 + 2j, 5.0 - 1j])
        assert np.allclose(e.lst(s), g.lst(s))
        assert e.mean() == pytest.approx(g.mean())

    def test_erlang_requires_integer_shape(self):
        with pytest.raises(ValueError):
            Erlang(1.0, 2.5)
        with pytest.raises(ValueError):
            Erlang(1.0, 0)

    def test_gamma_noninteger_shape_mean(self):
        g = Gamma(2.7, 0.9)
        assert g.mean() == pytest.approx(3.0)
        assert g.variance() == pytest.approx(2.7 / 0.81)


class TestUniform:
    def test_lst_matches_paper_formula(self):
        a, b = 1.5, 10.0
        d = Uniform(a, b)
        s = 0.7 + 2.0j
        expected = (np.exp(-a * s) - np.exp(-b * s)) / (s * (b - a))
        assert d.lst(s) == pytest.approx(expected)

    def test_lst_small_s_stable(self):
        d = Uniform(1.0, 2.0)
        # Direct formula would suffer cancellation at tiny |s|.
        val = d.lst(1e-12 + 1e-13j)
        assert abs(val - 1.0) < 1e-9

    def test_mean_variance(self):
        d = Uniform(2.0, 6.0)
        assert d.mean() == pytest.approx(4.0)
        assert d.variance() == pytest.approx(16.0 / 12.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 3.0)
        with pytest.raises(ValueError):
            Uniform(5.0, 2.0)


class TestDeterministic:
    def test_lst_is_pure_exponential(self):
        d = Deterministic(2.5)
        s = 1.0 + 1.0j
        assert d.lst(s) == pytest.approx(np.exp(-2.5 * s))

    def test_samples_are_constant(self, rng):
        d = Deterministic(3.25)
        assert d.sample(rng) == 3.25
        assert np.all(d.sample(rng, size=10) == 3.25)

    def test_immediate_is_zero_delay(self, rng):
        d = Immediate()
        assert d.mean() == 0.0
        assert d.lst(5.0 + 3j) == pytest.approx(1.0)
        assert d.sample(rng) == 0.0


class TestNumericTransformDistributions:
    def test_weibull_mean_from_transform_derivative(self):
        d = Weibull(1.5, 2.0)
        h = 1e-4
        numeric_mean = (1.0 - d.lst(h).real) / h
        assert numeric_mean == pytest.approx(d.mean(), rel=1e-2)

    def test_lognormal_moments(self):
        d = LogNormal(0.2, 0.6)
        assert d.mean() == pytest.approx(math.exp(0.2 + 0.18))
        assert d.cdf(d.ppf(0.7)) == pytest.approx(0.7, rel=1e-9)

    def test_pareto_infinite_mean_flagged(self):
        assert math.isinf(Pareto(0.9, 1.0).mean())
        assert math.isinf(Pareto(1.5, 1.0).variance())

    def test_pareto_ppf_cdf_roundtrip(self):
        d = Pareto(2.5, 2.0)
        p = np.array([0.1, 0.5, 0.9, 0.999])
        assert np.allclose(d.cdf(d.ppf(p)), p)


class TestHyperExponential:
    def test_lst_is_weighted_sum(self):
        d = HyperExponential([0.25, 0.75], [1.0, 10.0])
        s = 2.0 + 3.0j
        expected = 0.25 * 1.0 / (1.0 + s) + 0.75 * 10.0 / (10.0 + s)
        assert d.lst(s) == pytest.approx(expected)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            HyperExponential([0.5, 0.2], [1.0, 2.0])
        with pytest.raises(ValueError):
            HyperExponential([0.5, 0.5], [1.0, -2.0])
        with pytest.raises(ValueError):
            HyperExponential([0.5, 0.5], [1.0])

    def test_mean(self):
        d = HyperExponential([0.5, 0.5], [1.0, 2.0])
        assert d.mean() == pytest.approx(0.75)
