"""Hypothesis property-based tests for the distribution library."""
from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distributions import (
    Convolution,
    Deterministic,
    Erlang,
    Exponential,
    Mixture,
    Uniform,
)

rates = st.floats(min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False)
shapes = st.integers(min_value=1, max_value=8)
delays = st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False)
s_real = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
s_imag = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def simple_dists():
    return st.one_of(
        rates.map(Exponential),
        st.tuples(rates, shapes).map(lambda t: Erlang(*t)),
        delays.map(Deterministic),
        st.tuples(delays, st.floats(min_value=0.1, max_value=10.0)).map(
            lambda t: Uniform(t[0], t[0] + t[1])
        ),
    )


@given(dist=simple_dists(), re=s_real, im=s_imag)
@settings(max_examples=120, deadline=None)
def test_lst_bounded_and_conjugate_symmetric(dist, re, im):
    """|L(s)| <= 1 on Re(s) >= 0, and L(conj s) = conj L(s)."""
    s = complex(re, im)
    val = dist.lst(s)
    assert abs(val) <= 1.0 + 1e-9
    assert np.isclose(dist.lst(np.conj(s)), np.conj(val), rtol=1e-9, atol=1e-12)


@given(dist=simple_dists())
@settings(max_examples=60, deadline=None)
def test_lst_at_zero_is_unity(dist):
    assert abs(dist.lst(0.0) - 1.0) < 1e-9


@given(dist=simple_dists(), re=st.floats(min_value=0.01, max_value=5.0))
@settings(max_examples=80, deadline=None)
def test_lst_monotone_decreasing_on_real_axis(dist, re):
    """On the positive real axis the transform is completely monotone."""
    assert dist.lst(re).real <= dist.lst(re / 2.0).real + 1e-12


@given(a=simple_dists(), b=simple_dists(), w=st.floats(min_value=0.0, max_value=1.0), re=s_real, im=s_imag)
@settings(max_examples=80, deadline=None)
def test_mixture_interpolates(a, b, w, re, im):
    s = complex(re, im)
    mix = Mixture([a, b], [w, 1.0 - w]) if 0 < w < 1 else None
    if mix is None:
        return
    expected = w * a.lst(s) + (1.0 - w) * b.lst(s)
    assert np.isclose(mix.lst(s), expected, rtol=1e-9, atol=1e-12)


@given(a=simple_dists(), b=simple_dists(), re=s_real, im=s_imag)
@settings(max_examples=80, deadline=None)
def test_convolution_transform_is_product(a, b, re, im):
    s = complex(re, im)
    conv = Convolution([a, b])
    assert np.isclose(conv.lst(s), a.lst(s) * b.lst(s), rtol=1e-9, atol=1e-12)


@given(dist=simple_dists(), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_samples_non_negative(dist, seed):
    rng = np.random.default_rng(seed)
    samples = np.asarray(dist.sample(rng, size=50), dtype=float)
    assert np.all(samples >= 0.0)
