"""Tests for mixture / convolution / scaling / shifting combinators."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    Convolution,
    Deterministic,
    Erlang,
    Exponential,
    Mixture,
    Scaled,
    Shifted,
    Uniform,
    probabilistic_choice,
)


class TestMixture:
    def test_lst_is_convex_combination(self):
        a, b = Exponential(1.0), Erlang(2.0, 3)
        mix = Mixture([a, b], [0.3, 0.7])
        s = np.array([0.5 + 1j, 2.0, 4.0 - 2j])
        assert np.allclose(mix.lst(s), 0.3 * a.lst(s) + 0.7 * b.lst(s))

    def test_paper_t5_distribution(self):
        """The firing distribution of transition t5 in Fig. 3 of the paper."""
        mix = probabilistic_choice((0.8, Uniform(1.5, 10.0)), (0.2, Erlang(0.001, 5)))
        s = 0.01 + 0.2j
        expected = 0.8 * Uniform(1.5, 10.0).lst(s) + 0.2 * Erlang(0.001, 5).lst(s)
        assert mix.lst(s) == pytest.approx(expected)
        assert mix.mean() == pytest.approx(0.8 * 5.75 + 0.2 * 5000.0)

    def test_weights_normalised(self):
        mix = Mixture([Exponential(1.0), Exponential(2.0)], [2.0, 6.0])
        assert np.allclose(mix.weights, [0.25, 0.75])

    def test_sampling_branches(self, rng):
        mix = Mixture([Deterministic(1.0), Deterministic(9.0)], [0.5, 0.5])
        samples = np.asarray(mix.sample(rng, size=2000))
        assert set(np.unique(samples)) == {1.0, 9.0}
        assert abs(samples.mean() - 5.0) < 0.5

    def test_mixture_variance_total_law(self):
        a, b = Exponential(1.0), Exponential(4.0)
        mix = Mixture([a, b], [0.6, 0.4])
        m = 0.6 * 1.0 + 0.4 * 0.25
        second = 0.6 * (1.0 + 1.0) + 0.4 * (1.0 / 16 + 1.0 / 16)
        assert mix.variance() == pytest.approx(second - m**2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(TypeError):
            Mixture([1.0], [1.0])
        with pytest.raises(ValueError):
            Mixture([Exponential(1.0)], [0.5, 0.5])


class TestConvolution:
    def test_lst_is_product(self):
        a, b = Exponential(1.0), Exponential(3.0)
        conv = Convolution([a, b])
        s = np.array([0.2 + 1j, 1.5])
        assert np.allclose(conv.lst(s), np.asarray(a.lst(s)) * np.asarray(b.lst(s)))

    def test_sum_of_exponentials_matches_erlang(self):
        conv = Convolution([Exponential(2.0)] * 4)
        erl = Erlang(2.0, 4)
        s = np.array([0.1, 1.0 + 2j, 3.0])
        assert np.allclose(conv.lst(s), erl.lst(s))
        assert conv.mean() == pytest.approx(erl.mean())
        assert conv.variance() == pytest.approx(erl.variance())

    def test_sampling_adds(self, rng):
        conv = Convolution([Deterministic(1.0), Deterministic(2.5)])
        assert conv.sample(rng) == pytest.approx(3.5)
        assert np.allclose(conv.sample(rng, size=5), 3.5)


class TestScaledShifted:
    def test_scaled_exponential_is_rate_change(self):
        d = Scaled(Exponential(1.0), 0.5)  # 0.5 * Exp(1) == Exp(2)
        ref = Exponential(2.0)
        s = np.array([0.3, 2.0 + 1j])
        assert np.allclose(d.lst(s), ref.lst(s))
        assert d.mean() == pytest.approx(0.5)

    def test_shifted_transform(self):
        d = Shifted(Exponential(1.0), 2.0)
        s = 0.7 + 0.4j
        assert d.lst(s) == pytest.approx(np.exp(-2.0 * s) / (1.0 + s))
        assert d.mean() == pytest.approx(3.0)

    def test_shift_must_be_non_negative(self):
        with pytest.raises(ValueError):
            Shifted(Exponential(1.0), -0.5)
        with pytest.raises(ValueError):
            Scaled(Exponential(1.0), 0.0)

    def test_nested_composition_key_equality(self):
        a = Shifted(Scaled(Exponential(1.0), 2.0), 1.0)
        b = Shifted(Scaled(Exponential(1.0), 2.0), 1.0)
        assert a == b
        assert hash(a) == hash(b)
