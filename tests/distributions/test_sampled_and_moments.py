"""Tests for the constant-space sampled-transform representation and moment recovery."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    Erlang,
    Exponential,
    Mixture,
    SampledTransform,
    Uniform,
    lst_moments,
    mean_from_lst,
    sample_transform,
    variance_from_lst,
)
from repro.laplace import EulerInverter


@pytest.fixture
def s_grid():
    return EulerInverter().required_s_points([1.0, 2.0])


class TestSampledTransform:
    def test_values_match_source_distribution(self, s_grid):
        d = Erlang(2.0, 3)
        st = sample_transform(d, s_grid)
        for s in s_grid[:5]:
            assert st.value_at(s) == pytest.approx(d.lst(s))

    def test_storage_is_constant_under_composition(self, s_grid):
        a = sample_transform(Exponential(1.0), s_grid)
        b = sample_transform(Uniform(0.5, 1.5), s_grid)
        composed = (a * b).mix(a, 0.25).convolve(b)
        assert composed.storage_size == a.storage_size
        assert composed.storage_size == len(set(np.round(s_grid, 12)))

    def test_product_is_convolution(self, s_grid):
        a, b = Exponential(1.0), Exponential(3.0)
        st = sample_transform(a, s_grid) * sample_transform(b, s_grid)
        for s in s_grid[:4]:
            assert st.value_at(s) == pytest.approx(a.lst(s) * b.lst(s))
        assert st.mean() == pytest.approx(a.mean() + b.mean())

    def test_mix_matches_mixture(self, s_grid):
        a, b = Exponential(1.0), Erlang(2.0, 2)
        st = sample_transform(a, s_grid).mix(sample_transform(b, s_grid), 0.3)
        mix = Mixture([a, b], [0.3, 0.7])
        for s in s_grid[:4]:
            assert st.value_at(s) == pytest.approx(mix.lst(s))

    def test_inversion_from_sampled_values_matches_direct(self):
        inv = EulerInverter()
        ts = [0.5, 1.0, 2.0]
        d = Erlang(1.5, 4)
        grid = inv.required_s_points(ts)
        st = sample_transform(d, grid)
        direct = inv.invert(d.lst, ts)
        via_sampled = inv.invert(st.lst, ts)
        assert np.allclose(direct, via_sampled)

    def test_missing_s_point_raises(self, s_grid):
        st = sample_transform(Exponential(1.0), s_grid)
        with pytest.raises(KeyError):
            st.value_at(123.456 + 789j)

    def test_cannot_sample(self, s_grid, rng):
        st = sample_transform(Exponential(1.0), s_grid)
        with pytest.raises(NotImplementedError):
            st.sample(rng)

    def test_requires_common_grid(self):
        a = SampledTransform({1.0 + 0j: 0.5})
        b = SampledTransform({2.0 + 0j: 0.25})
        with pytest.raises(ValueError):
            _ = a * b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SampledTransform({})


class TestMomentsFromTransform:
    @pytest.mark.parametrize(
        "dist",
        [Exponential(2.0), Erlang(1.5, 3), Uniform(1.0, 4.0)],
        ids=lambda d: repr(d),
    )
    def test_mean_recovered(self, dist):
        est = mean_from_lst(dist.lst, scale=dist.mean())
        assert est == pytest.approx(dist.mean(), rel=1e-4)

    @pytest.mark.parametrize(
        "dist",
        [Exponential(1.0), Erlang(2.0, 4)],
        ids=lambda d: repr(d),
    )
    def test_variance_recovered(self, dist):
        est = variance_from_lst(dist.lst, scale=dist.mean())
        assert est == pytest.approx(dist.variance(), rel=5e-3)

    def test_zeroth_moment_is_one(self):
        m = lst_moments(Exponential(3.0).lst, 0)
        assert m[0] == pytest.approx(1.0)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            lst_moments(Exponential(1.0).lst, -1)
