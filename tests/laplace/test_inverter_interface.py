"""Tests for the shared inverter factory and conjugate-pair helpers."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential
from repro.laplace import (
    EulerInverter,
    LaguerreInverter,
    conjugate_reduced,
    expand_conjugates,
    get_inverter,
    invert_cdf,
    invert_density,
)


class TestFactory:
    def test_get_inverter_by_name(self):
        assert isinstance(get_inverter("euler"), EulerInverter)
        assert isinstance(get_inverter("laguerre"), LaguerreInverter)
        assert isinstance(get_inverter("EULER"), EulerInverter)

    def test_options_forwarded(self):
        inv = get_inverter("euler", n_terms=30, euler_order=9)
        assert inv.n_terms == 30 and inv.euler_order == 9
        inv2 = get_inverter("laguerre", n_points=64)
        assert inv2.n_points == 64

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            get_inverter("talbot")

    def test_unknown_option_names_the_typo_and_the_valid_set(self):
        with pytest.raises(ValueError) as err:
            get_inverter("euler", eular_terms=30)
        message = str(err.value)
        assert "eular_terms" in message
        assert "n_terms" in message and "euler_order" in message and "a" in message

    def test_unknown_option_laguerre(self):
        with pytest.raises(ValueError) as err:
            get_inverter("laguerre", n_pionts=64, radius=0.9)
        assert "n_pionts" in str(err.value)
        assert "n_points" in str(err.value)

    def test_multiple_unknown_options_all_reported(self):
        with pytest.raises(ValueError) as err:
            get_inverter("euler", bogus=1, wrong=2)
        assert "bogus" in str(err.value) and "wrong" in str(err.value)

    def test_module_level_helpers(self, t_grid):
        d = Exponential(1.0)
        assert np.allclose(invert_density(d.lst, t_grid), d.pdf(t_grid), atol=1e-6)
        assert np.allclose(invert_cdf(d.lst, t_grid), d.cdf(t_grid), atol=1e-6)


class TestConjugateReduction:
    def test_reduction_folds_lower_half_plane(self):
        pts = np.array([1 + 2j, 1 - 2j, 3 + 0j, 2 - 5j])
        reduced = conjugate_reduced(pts)
        assert np.all(reduced.imag >= 0)
        assert len(reduced) == 3  # 1+2j (twice), 3, 2+5j

    def test_expansion_restores_conjugates(self):
        d = Erlang(2.0, 2)
        pts = np.array([0.5 + 1j, 0.5 - 1j, 2.0 + 0j])
        reduced = conjugate_reduced(pts)
        values = {complex(s): complex(d.lst(s)) for s in reduced}
        expanded = expand_conjugates(values)
        for s in pts:
            assert expanded[complex(s)] == pytest.approx(d.lst(s))

    def test_laguerre_grid_halves_under_reduction(self):
        pts = LaguerreInverter(n_points=64).required_s_points([1.0])
        reduced = conjugate_reduced(pts)
        # 64 contour points -> 33 after folding (j=0 and j=32 are real).
        assert len(reduced) == 33

    def test_inversion_with_reduced_evaluations_matches(self):
        """Evaluate only the reduced set, expand, invert: same answer."""
        d = Erlang(1.0, 3)
        inv = LaguerreInverter(n_points=128)
        ts = [0.5, 1.5, 4.0]
        full = inv.required_s_points(ts)
        reduced = conjugate_reduced(full)
        values = {complex(s): complex(d.lst(s)) for s in reduced}
        recovered = inv.invert_values(ts, expand_conjugates(values))
        assert np.allclose(recovered, d.pdf(ts), atol=1e-5)
