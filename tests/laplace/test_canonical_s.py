"""Tests for the canonical s-point rounding shared by caches and inverters."""
from __future__ import annotations

import numpy as np

from repro.laplace.inverter import canonical_s


class TestCanonicalS:
    def test_idempotent(self):
        s = 1.234567890123456 + 9.87654321e-3j
        assert canonical_s(canonical_s(s)) == canonical_s(s)

    def test_merges_last_bit_differences(self):
        a = (0.1 + 0.2) + 1.0j          # 0.30000000000000004
        b = 0.3 + 1.0j
        assert canonical_s(a) == canonical_s(b)

    def test_conjugate_pairs_collapse_consistently(self):
        # A Laguerre contour point and the conjugate of its mirror image.
        z1 = 0.955 * np.exp(2j * np.pi * 10 / 64)
        z2 = 0.955 * np.exp(2j * np.pi * 54 / 64)
        s1 = (1 + z1) / (2 * (1 - z1))
        s2 = np.conj((1 + z2) / (2 * (1 - z2)))
        assert canonical_s(complex(s1)) == canonical_s(complex(s2))

    def test_distinct_grid_points_not_merged(self):
        from repro.laplace import euler_s_points

        pts = euler_s_points(3.7)
        canonical = {canonical_s(s) for s in pts}
        assert len(canonical) == len(pts)

    def test_scales_with_magnitude(self):
        big = 1.23456789012e6 + 2.0j
        assert canonical_s(big + 1e-4) == canonical_s(big)
        small = 1.23456789012e-6 + 2.0e-6j
        assert canonical_s(small) != canonical_s(small * (1 + 1e-3))

    def test_zero_and_nonfinite_passthrough(self):
        assert canonical_s(0j) == 0j
        assert np.isnan(canonical_s(complex(np.nan, 1.0)).real)
