"""Tests for the Laguerre Laplace-inversion algorithm."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential, Gamma, HyperExponential
from repro.laplace import LaguerreInverter, laguerre_s_points


class TestSPointGrid:
    def test_default_grid_has_400_points(self):
        """The paper fixes the Laguerre evaluation count at 400, independent of m."""
        inv = LaguerreInverter()
        pts1 = inv.required_s_points([1.0])
        pts2 = inv.required_s_points(np.linspace(0.5, 20.0, 37))
        assert len(pts1) == 400
        assert np.allclose(pts1, pts2)  # independent of the t-points

    def test_grid_lies_in_right_half_plane(self):
        pts = laguerre_s_points()
        assert np.all(pts.real > 0)

    def test_damping_and_scaling_shift_grid(self):
        base = laguerre_s_points(n_points=64)
        damped = laguerre_s_points(n_points=64, damping=0.5)
        scaled = laguerre_s_points(n_points=64, time_scale=2.0)
        assert np.allclose(damped, base + 0.5)
        assert np.allclose(scaled, (base) / 2.0 + 0.0j, atol=1e-12) or np.allclose(
            scaled, base / 2.0
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LaguerreInverter(n_points=4)
        with pytest.raises(ValueError):
            LaguerreInverter(radius=1.5)
        with pytest.raises(ValueError):
            LaguerreInverter(damping=-0.1)
        with pytest.raises(ValueError):
            LaguerreInverter(time_scale=0.0)
        with pytest.raises(ValueError):
            LaguerreInverter(terms=0)


class TestSmoothInversion:
    @pytest.mark.parametrize(
        "dist",
        [Exponential(1.0), Exponential(0.4), Erlang(2.0, 3), Gamma(2.5, 1.5),
         HyperExponential([0.4, 0.6], [0.5, 3.0])],
        ids=lambda d: repr(d),
    )
    def test_density_recovered(self, dist, t_grid):
        inv = LaguerreInverter()
        recovered = inv.invert(dist.lst, t_grid)
        assert np.max(np.abs(recovered - dist.pdf(t_grid))) < 1e-5

    def test_cdf_recovered(self, t_grid):
        dist = Erlang(1.5, 2)
        inv = LaguerreInverter()
        recovered = inv.invert_cdf(dist.lst, t_grid)
        assert np.max(np.abs(recovered - dist.cdf(t_grid))) < 1e-5

    def test_time_scaling_helps_slow_densities(self):
        """A density on the scale of hundreds of time units needs time_scale."""
        dist = Erlang(0.05, 4)  # mean 80
        ts = np.array([40.0, 80.0, 120.0, 200.0])
        scaled = LaguerreInverter(time_scale=20.0)
        assert np.max(np.abs(scaled.invert(dist.lst, ts) - dist.pdf(ts))) < 1e-6

    def test_split_protocol_matches_direct(self):
        dist = Exponential(2.0)
        inv = LaguerreInverter(n_points=128)
        ts = [0.2, 1.0, 2.5]
        s_pts = inv.required_s_points(ts)
        values = {complex(s): complex(dist.lst(s)) for s in s_pts}
        assert np.allclose(inv.invert_values(ts, values), inv.invert(dist.lst, ts))


class TestAgreementWithEuler:
    def test_euler_and_laguerre_agree_on_smooth_density(self, t_grid):
        from repro.laplace import EulerInverter

        dist = Gamma(3.3, 2.0)
        euler = EulerInverter().invert(dist.lst, t_grid)
        laguerre = LaguerreInverter().invert(dist.lst, t_grid)
        assert np.max(np.abs(euler - laguerre)) < 1e-5
