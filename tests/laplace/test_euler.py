"""Tests for the Euler Laplace-inversion algorithm."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential, Mixture, Uniform, Weibull
from repro.laplace import EulerInverter, euler_s_points


class TestSPointGrid:
    def test_points_per_t_matches_paper_count(self):
        """Default parameters give 33 evaluations per t-point, i.e. the paper's
        165 s-point evaluations for 5 t-points (Table 2)."""
        inv = EulerInverter()
        assert inv.points_per_t() == 33
        assert len(inv.required_s_points([1.0] )) == 33
        assert len(inv.required_s_points([1.0, 2.0, 3.0, 4.0, 5.0])) == 165

    def test_grid_structure(self):
        pts = euler_s_points(2.0, a=19.1, n_terms=21, euler_order=11)
        assert pts[0] == pytest.approx(19.1 / 4.0)
        # Successive points differ by 2*pi*i / (2 t) = pi*i / t.
        diffs = np.diff(pts)
        assert np.allclose(diffs, 1j * np.pi / 2.0)
        assert np.all(pts.real > 0)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            euler_s_points(0.0)
        with pytest.raises(ValueError):
            euler_s_points(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EulerInverter(a=-1.0)
        with pytest.raises(ValueError):
            EulerInverter(n_terms=0)
        with pytest.raises(ValueError):
            EulerInverter(euler_order=-1)


class TestSmoothInversion:
    @pytest.mark.parametrize(
        "dist",
        [Exponential(2.0), Exponential(0.3), Erlang(1.5, 4), Erlang(3.0, 2)],
        ids=lambda d: repr(d),
    )
    def test_density_recovered(self, dist, t_grid):
        inv = EulerInverter()
        recovered = inv.invert(dist.lst, t_grid)
        assert np.max(np.abs(recovered - dist.pdf(t_grid))) < 1e-6

    @pytest.mark.parametrize(
        "dist",
        [Exponential(1.0), Erlang(2.0, 3)],
        ids=lambda d: repr(d),
    )
    def test_cdf_recovered_via_division_by_s(self, dist, t_grid):
        inv = EulerInverter()
        recovered = inv.invert_cdf(dist.lst, t_grid)
        assert np.max(np.abs(recovered - dist.cdf(t_grid))) < 1e-6

    def test_numeric_transform_roundtrip(self):
        dist = Weibull(1.5, 2.0)
        inv = EulerInverter()
        ts = np.array([0.5, 1.0, 2.0, 4.0])
        assert np.max(np.abs(inv.invert(dist.lst, ts) - dist.pdf(ts))) < 1e-6

    def test_density_integrates_to_one(self):
        dist = Erlang(2.0, 3)
        inv = EulerInverter()
        ts = np.linspace(0.05, 12.0, 400)
        f = inv.invert(dist.lst, ts)
        assert np.trapezoid(f, ts) == pytest.approx(1.0, abs=5e-3)


class TestDiscontinuousInversion:
    def test_uniform_density_away_from_jumps(self):
        """Euler inversion of a discontinuous density: accurate to ~1e-2
        away from the jumps (ringing near them is expected and documented)."""
        dist = Uniform(1.0, 3.0)
        inv = EulerInverter()
        ts = np.array([0.3, 2.0, 4.0])  # well away from the jumps at 1 and 3
        f = inv.invert(dist.lst, ts)
        assert abs(f[0]) < 1e-2
        assert f[1] == pytest.approx(0.5, abs=1e-2)
        assert abs(f[2]) < 5e-2

    def test_uniform_cdf_everywhere(self):
        """CDF inversion is much better behaved than the density at jumps."""
        dist = Uniform(1.0, 3.0)
        inv = EulerInverter()
        ts = np.array([0.5, 1.5, 2.0, 2.5, 3.5])
        F = inv.invert_cdf(dist.lst, ts)
        assert np.max(np.abs(F - dist.cdf(ts))) < 5e-3

    def test_deterministic_plus_exponential(self):
        """A shifted exponential has a jump at the shift; check both sides."""
        from repro.distributions import Shifted

        dist = Shifted(Exponential(1.0), 2.0)
        inv = EulerInverter()
        assert inv.invert(dist.lst, [1.0])[0] == pytest.approx(0.0, abs=1e-2)
        assert inv.invert(dist.lst, [3.5])[0] == pytest.approx(np.exp(-1.5), abs=2e-2)

    def test_paper_t5_mixture_mass_splits(self):
        """The t5 firing distribution (Fig. 3): 0.8 of the mass lies in [1.5, 10]."""
        dist = Mixture([Uniform(1.5, 10.0), Erlang(0.001, 5)], [0.8, 0.2])
        inv = EulerInverter()
        F = inv.invert_cdf(dist.lst, [10.5])[0]
        assert F == pytest.approx(0.8, abs=1e-2)


class TestInvertValuesProtocol:
    def test_split_protocol_matches_direct(self):
        dist = Erlang(1.0, 2)
        inv = EulerInverter()
        ts = [0.5, 1.5, 3.0]
        s_pts = inv.required_s_points(ts)
        values = {complex(s): complex(dist.lst(s)) for s in s_pts}
        assert np.allclose(inv.invert_values(ts, values), inv.invert(dist.lst, ts))

    def test_missing_value_raises(self):
        inv = EulerInverter()
        with pytest.raises(KeyError):
            inv.invert_values([1.0], {0.5 + 0j: 1.0 + 0j})

    def test_empty_t_points(self):
        inv = EulerInverter()
        assert inv.required_s_points([]).size == 0
        assert inv.invert_values([], {}).size == 0
