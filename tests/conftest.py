"""Shared pytest fixtures for the test suite."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential, Uniform
from repro.smp import SMPBuilder


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(20030422)


@pytest.fixture
def t_grid() -> np.ndarray:
    """A modest grid of time points used across inversion tests."""
    return np.array([0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0])


# ---------------------------------------------------------------------------
# Small reference SMP kernels shared by the smp, core, simulation and
# distributed test modules.
# ---------------------------------------------------------------------------


@pytest.fixture
def two_state_kernel():
    """0 -> 1 with Erlang(2, 3) sojourn, 1 -> 0 with Uniform(1, 2) sojourn."""
    b = SMPBuilder()
    b.add_state("a")
    b.add_state("b")
    b.add_transition("a", "b", 1.0, Erlang(2.0, 3))
    b.add_transition("b", "a", 1.0, Uniform(1.0, 2.0))
    return b.build()


@pytest.fixture
def ctmc_kernel():
    """A 2-state CTMC: up -> down at rate 2, down -> up at rate 3."""
    b = SMPBuilder()
    b.add_state("up")
    b.add_state("down")
    b.add_transition("up", "down", 1.0, Exponential(2.0))
    b.add_transition("down", "up", 1.0, Exponential(3.0))
    return b.build()


@pytest.fixture
def ring_kernel():
    """A 4-state ring with mixed sojourn distributions (deterministic included)."""
    b = SMPBuilder()
    for name in "pqrs":
        b.add_state(name)
    b.add_transition("p", "q", 1.0, Exponential(1.0))
    b.add_transition("q", "r", 1.0, Erlang(2.0, 2))
    b.add_transition("r", "s", 1.0, Deterministic(0.5))
    b.add_transition("s", "p", 1.0, Uniform(0.25, 0.75))
    return b.build()


@pytest.fixture
def branching_kernel():
    """A 5-state SMP with probabilistic branching and a return loop.

    State 0 branches to 1 (p=0.3) or 2 (p=0.7); both feed state 3, which
    either returns to 0 (p=0.6) or visits 4 first (p=0.4).
    """
    b = SMPBuilder()
    for i in range(5):
        b.add_state(f"s{i}")
    b.add_transition(0, 1, 0.3, Exponential(2.0))
    b.add_transition(0, 2, 0.7, Erlang(3.0, 2))
    b.add_transition(1, 3, 1.0, Uniform(0.0, 1.0))
    b.add_transition(2, 3, 1.0, Exponential(1.0))
    b.add_transition(3, 0, 0.6, Exponential(4.0))
    b.add_transition(3, 4, 0.4, Deterministic(0.2))
    b.add_transition(4, 0, 1.0, Exponential(5.0))
    return b.build()
