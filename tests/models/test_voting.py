"""Tests for the distributed voting system model."""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    SCALED_CONFIGURATIONS,
    VOTING_CONFIGURATIONS,
    VotingParameters,
    all_voted_predicate,
    build_voting_graph,
    build_voting_kernel,
    failure_mode_predicate,
    fully_operational_predicate,
    initial_marking_predicate,
    voters_done_predicate,
)
from repro.petri import passage_solver, transient_solver


@pytest.fixture(scope="module")
def tiny_graph():
    return build_voting_graph(SCALED_CONFIGURATIONS["tiny"])


@pytest.fixture(scope="module")
def small_graph():
    return build_voting_graph(SCALED_CONFIGURATIONS["small"])


class TestConfigurationTable:
    def test_table1_rows_present(self):
        assert set(VOTING_CONFIGURATIONS) == {0, 1, 2, 3, 4, 5}
        system5 = VOTING_CONFIGURATIONS[5]
        assert (system5.voters, system5.polling_units, system5.central_units) == (175, 45, 5)
        assert system5.paper_states == 1_140_050

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            VotingParameters(0, 5, 5)

    def test_label(self):
        assert VOTING_CONFIGURATIONS[0].label == "CC=18, MM=6, NN=3"


class TestStateSpace:
    def test_tiny_state_space_properties(self, tiny_graph):
        params = SCALED_CONFIGURATIONS["tiny"]
        assert tiny_graph.n_states > 10
        assert not tiny_graph.deadlocks
        assert not tiny_graph.truncated
        # Invariants: voters and units are conserved in every reachable marking.
        arr = tiny_graph.marking_array()
        names = tiny_graph.net.places
        col = {n: i for i, n in enumerate(names)}
        voters = arr[:, col["p1"]] + arr[:, col["p2"]] + arr[:, col["p4"]]
        polling = arr[:, col["p3"]] + arr[:, col["p4"]] + arr[:, col["p7"]]
        central = arr[:, col["p5"]] + arr[:, col["p6"]]
        assert np.all(voters == params.voters)
        assert np.all(polling == params.polling_units)
        assert np.all(central == params.central_units)

    def test_state_count_grows_with_parameters(self, tiny_graph, small_graph):
        assert small_graph.n_states > tiny_graph.n_states

    def test_medium_matches_paper_order_of_magnitude(self):
        """Our reconstruction of system 0 has the same order of state count as
        the paper's 2 061 (the exact net of Fig. 2 is not published)."""
        graph = build_voting_graph(SCALED_CONFIGURATIONS["medium"])
        paper = VOTING_CONFIGURATIONS[0].paper_states
        assert 0.5 * paper <= graph.n_states <= 2.0 * paper

    def test_predicates_select_states(self, tiny_graph):
        params = SCALED_CONFIGURATIONS["tiny"]
        initial = tiny_graph.states_where(initial_marking_predicate(params))
        assert initial == [0]
        done = tiny_graph.states_where(all_voted_predicate(params))
        assert done
        failed = tiny_graph.states_where(failure_mode_predicate(params))
        assert failed
        operational = tiny_graph.states_where(fully_operational_predicate(params))
        assert 0 in operational
        # progressive voter counts are nested sets
        done2 = set(tiny_graph.states_where(voters_done_predicate(2)))
        done4 = set(tiny_graph.states_where(voters_done_predicate(4)))
        assert done4.issubset(done2)

    def test_build_kernel_shortcut(self):
        kernel, graph = build_voting_kernel(SCALED_CONFIGURATIONS["tiny"])
        assert kernel.n_states == graph.n_states


class TestVotingMeasures:
    def test_voter_passage_time_is_sensible(self, tiny_graph):
        params = SCALED_CONFIGURATIONS["tiny"]
        solver = passage_solver(
            tiny_graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        mean = solver.mean()
        assert 2.0 < mean < 100.0
        # The CDF is monotone and reaches high probability within a few means.
        ts = np.linspace(0.1 * mean, 4.0 * mean, 12)
        cdf = solver.cdf(ts)
        assert np.all(np.diff(cdf) > -5e-3)
        assert cdf[-1] > 0.95
        assert cdf[0] < 0.5
        # The transform-derived mean agrees with the survival-function
        # integral — a strong consistency check that also pins down the
        # heavy-tail contribution of the rare bulk-repair branch (Fig. 3's
        # Erlang(0.001, 5) component), which makes the mean sit far above
        # the median of this passage.
        grid = np.concatenate([np.linspace(0.2, 3 * mean, 40), np.geomspace(3.5 * mean, 5e4, 40)])
        survival = 1.0 - np.clip(solver.cdf(grid), 0.0, 1.0)
        integral = float(np.trapezoid(np.concatenate([[1.0], survival]),
                                      np.concatenate([[0.0], grid])))
        assert mean == pytest.approx(integral, rel=0.15)

    def test_density_integrates_to_one(self, tiny_graph):
        params = SCALED_CONFIGURATIONS["tiny"]
        solver = passage_solver(
            tiny_graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        mean = solver.mean()
        ts = np.linspace(1e-2, 6 * mean, 200)
        density = solver.density(ts)
        assert np.trapezoid(density, ts) == pytest.approx(1.0, abs=0.05)

    def test_failure_mode_is_much_rarer_than_voting(self, tiny_graph):
        """The failure-mode passage has a far longer mean than the voter
        passage — the regime in which the paper's Fig. 6 says simulation
        struggles and the analytic method shines."""
        params = SCALED_CONFIGURATIONS["tiny"]
        voting = passage_solver(
            tiny_graph, initial_marking_predicate(params), all_voted_predicate(params)
        ).mean()
        failure = passage_solver(
            tiny_graph, initial_marking_predicate(params), failure_mode_predicate(params)
        ).mean()
        assert failure > 2.0 * voting

    def test_transient_tends_to_steady_state(self, tiny_graph):
        """Fig. 7 behaviour: the transient approaches its steady-state value.

        Mixing is slow because the bulk-repair distribution of Fig. 3 has a
        5000-second Erlang branch, so the comparison point is far out in time
        and the (exact) direct solver is used to keep the test fast.
        """
        params = SCALED_CONFIGURATIONS["tiny"]
        solver = transient_solver(
            tiny_graph,
            initial_marking_predicate(params),
            voters_done_predicate(2),
            method="direct",
        )
        limit = solver.steady_state()
        early = solver.probability([20.0])[0]
        late = solver.probability([2000.0])[0]
        assert late == pytest.approx(limit, abs=0.02)
        assert abs(late - limit) < abs(early - limit)

    def test_quantile_extraction(self, tiny_graph):
        """The reliability-quantile computation of Fig. 5 / Section 5.3.1."""
        params = SCALED_CONFIGURATIONS["tiny"]
        solver = passage_solver(
            tiny_graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        mean = solver.mean()
        median = solver.quantile(0.50, 0.01 * mean, 20.0 * mean)
        q99 = solver.quantile(0.99, 0.01 * mean, 20.0 * mean)
        assert q99 > median
        assert solver.cdf([q99])[0] == pytest.approx(0.99, abs=1e-4)
        assert solver.cdf([median])[0] == pytest.approx(0.50, abs=1e-4)
