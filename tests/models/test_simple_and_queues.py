"""Tests for the auxiliary example models (analytic SMPs and queueing nets)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeSolver
from repro.distributions import Convolution, Deterministic, Erlang, Exponential, Uniform
from repro.models import (
    alternating_renewal_kernel,
    birth_death_kernel,
    cyclic_server_kernel,
    mg1_queue_kernel,
    web_server_net,
)
from repro.petri import explore, build_kernel
from repro.smp import smp_steady_state


class TestAlternatingRenewal:
    def test_defaults(self):
        k = alternating_renewal_kernel()
        assert k.n_states == 2
        assert k.state_names == ["up", "down"]

    def test_custom_distributions(self):
        k = alternating_renewal_kernel(Exponential(0.1), Deterministic(5.0))
        pi = smp_steady_state(k)
        # availability = E[up] / (E[up] + E[down]) = 10 / 15
        assert pi[0] == pytest.approx(2.0 / 3.0)

    def test_passage_is_up_time(self, t_grid):
        up = Erlang(3.0, 2)
        k = alternating_renewal_kernel(up, Uniform(0.0, 1.0))
        solver = PassageTimeSolver(k, sources=[0], targets=[1])
        assert np.allclose(solver.density(t_grid), up.pdf(t_grid), atol=1e-6)


class TestBirthDeath:
    def test_structure(self):
        k = birth_death_kernel(6)
        assert k.n_states == 6
        with pytest.raises(ValueError):
            birth_death_kernel(1)

    def test_first_passage_0_to_1_is_exponential(self, t_grid):
        k = birth_death_kernel(4, birth_rate=2.0, death_rate=1.0)
        solver = PassageTimeSolver(k, sources=[0], targets=[1])
        expected = Exponential(2.0)
        assert np.allclose(solver.density(t_grid), expected.pdf(t_grid), atol=1e-6)

    def test_mean_hitting_time_matches_ctmc_theory(self):
        """Mean first-passage 0 -> N of a birth-death CTMC, checked against the
        standard recursive formula."""
        birth, death, n = 1.0, 1.5, 4
        k = birth_death_kernel(n + 1, birth_rate=birth, death_rate=death)
        solver = PassageTimeSolver(k, sources=[0], targets=[n])
        # Classical formula: E[T_{0->N}] = sum_{i=0}^{N-1} sum_{j=0}^{i} (d^j/b^{j+1}) * ...
        # computed numerically by solving the linear system for expected hitting times.
        rates_up = np.full(n + 1, birth)
        rates_down = np.full(n + 1, death)
        rates_down[0] = 0.0
        A = np.zeros((n, n))
        b_vec = np.ones(n)
        for i in range(n):
            total = rates_up[i] + rates_down[i]
            b_vec[i] = 1.0 / total
            A[i, i] = 1.0
            if i + 1 < n:
                A[i, i + 1] = -rates_up[i] / total
            if i - 1 >= 0:
                A[i, i - 1] = -rates_down[i] / total
        expected = np.linalg.solve(A, b_vec)[0]
        assert solver.mean() == pytest.approx(expected, rel=1e-4)


class TestCyclicServer:
    def test_cycle_time_transform(self):
        k = cyclic_server_kernel(3, service=Uniform(0.5, 1.5), walk=Deterministic(0.25))
        start = k.state_index("serve_0")
        solver = PassageTimeSolver(k, sources=[start], targets=[start])
        conv = Convolution([Uniform(0.5, 1.5), Deterministic(0.25)] * 3)
        s = 0.6 + 1.1j
        assert solver.transform(s) == pytest.approx(conv.lst(s), rel=1e-7)
        assert solver.mean() == pytest.approx(conv.mean(), rel=1e-4)

    def test_invalid_station_count(self):
        with pytest.raises(ValueError):
            cyclic_server_kernel(1)


class TestMg1Queue:
    def test_structure_and_steady_state(self):
        k = mg1_queue_kernel(capacity=6, arrival_rate=0.5, service=Uniform(0.5, 1.5))
        assert k.n_states == 7
        pi = smp_steady_state(k)
        assert pi.sum() == pytest.approx(1.0)
        # Light load: the empty state dominates deeper queue states.
        assert pi[0] > pi[-1]

    def test_busy_period_style_passage(self):
        k = mg1_queue_kernel(capacity=5, arrival_rate=0.5)
        solver = PassageTimeSolver(k, sources=[1], targets=[0])
        mean = solver.mean()
        assert mean > 0.5  # at least one service time
        assert np.isfinite(mean)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            mg1_queue_kernel(capacity=1)


class TestWebServerNet:
    def test_state_space_and_measures(self):
        net = web_server_net(servers=2, queue_capacity=3)
        graph = explore(net)
        assert graph.n_states > 10
        assert not graph.truncated
        assert not graph.deadlocks
        kernel = build_kernel(graph)
        assert kernel.n_states == graph.n_states

    def test_cluster_restart_is_reachable_and_prioritised(self):
        net = web_server_net(servers=2, queue_capacity=2)
        graph = explore(net)
        all_down = graph.states_where(lambda m: m["failed"] >= 2)
        assert all_down
        # In an all-down marking only the restart transition may fire.
        for state in all_down:
            enabled = net.enabled_transitions(graph.markings[state])
            assert [t.name for t in enabled] == ["cluster_restart"]
