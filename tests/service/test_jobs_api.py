"""HTTP surface of the async job subsystem: 202s, polling, tenancy, errors."""
from __future__ import annotations

import contextlib
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.jobs import TenantQuotas
from repro.service import AnalysisService, ServiceClient, ServiceClientError, create_server
from repro.service.client import _ConnectionFailed


@contextlib.contextmanager
def _serve(service):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def _raw(url, method="GET", body=None, headers=None):
    """Raw request returning (status, headers, parsed-JSON body)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class TestAsyncSubmission:
    def test_async_submit_returns_202_with_location(self, onoff_spec):
        with _serve(AnalysisService()) as url:
            client = ServiceClient(url)
            model = client.register_model(onoff_spec)["model"]
            status, headers, view = _raw(
                f"{url}/v1/passage", method="POST",
                body={"model": model, "source": "on == 2", "target": "on == 0",
                      "t_points": [0.5, 1.0], "async": True},
            )
            assert status == 202
            assert headers["Location"] == f"/v1/jobs/{view['job']}"
            assert view["state"] in ("queued", "running")
            assert view["kind"] == "passage"
            assert view["model"] == model

    def test_async_result_matches_sync(self, onoff_spec):
        with _serve(AnalysisService(job_block_points=20)) as url:
            client = ServiceClient(url)
            model = client.register_model(onoff_spec)["model"]
            query = dict(model=model, source="on == 2", target="on == 0",
                         t_points=[0.5, 1.0, 2.0])
            view = client.submit("passage", cdf=True, **query)
            final = client.wait(view["job"], timeout=60)
            assert final["state"] == "done"
            sync = client.passage(cdf=True, **query)
            for key in ("density", "cdf"):
                assert np.max(np.abs(
                    np.asarray(final["result"][key]) - np.asarray(sync[key])
                )) <= 1e-10
            # block-wise execution was recorded
            assert final["plan"]["n_blocks"] >= 2
            progress = final["progress"]
            assert progress["points_done"] == progress["points_total"]
            assert progress["blocks_done"] == final["plan"]["n_blocks"]

    def test_transient_async(self, onoff_spec):
        with _serve(AnalysisService()) as url:
            client = ServiceClient(url)
            view = client.submit(
                "transient", spec=onoff_spec, source="on == 2",
                target="off == 2", t_points=[1.0, 2.0],
            )
            final = client.wait(view["job"], timeout=60)
            assert final["state"] == "done"
            assert len(final["result"]["probability"]) == 2
            assert "steady_state" in final["result"]

    def test_invalid_submission_fails_fast_not_in_job(self, onoff_spec):
        with _serve(AnalysisService()) as url:
            client = ServiceClient(url)
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit("passage", spec=onoff_spec, source="on == 2",
                              target="on == 0", t_points=[])
            assert excinfo.value.status == 400
            assert client.jobs()["jobs"] == []

    def test_cancel_mid_run(self, onoff_spec):
        # tiny blocks + a big grid leave plenty of between-block windows
        with _serve(AnalysisService(job_block_points=2)) as url:
            client = ServiceClient(url)
            view = client.submit(
                "passage", spec=onoff_spec, source="on == 2", target="on == 0",
                t_points=list(np.linspace(0.5, 20.0, 40)),
            )
            cancelled = client.cancel(view["job"])
            assert cancelled["state"] in ("queued", "running", "cancelled") \
                or cancelled["cancel_requested"]
            final = client.wait(view["job"], timeout=60)
            assert final["state"] in ("cancelled", "done")
            # the overwhelmingly common case: caught between blocks
            if final["state"] == "cancelled":
                assert not final["has_result"]

    def test_job_listing_and_views(self, onoff_spec):
        with _serve(AnalysisService()) as url:
            client = ServiceClient(url)
            view = client.submit(
                "passage", spec=onoff_spec, source="on == 2", target="on == 0",
                t_points=[1.0],
            )
            client.wait(view["job"], timeout=60)
            listing = client.jobs()
            assert [j["job"] for j in listing["jobs"]] == [view["job"]]
            # listings omit the (potentially large) result payload
            assert "result" not in listing["jobs"][0]
            assert listing["jobs"][0]["has_result"]


class TestTenancy:
    def test_jobs_and_models_are_tenant_disjoint(self, onoff_spec):
        with _serve(AnalysisService()) as url:
            alice = ServiceClient(url, tenant="alice")
            bob = ServiceClient(url, tenant="bob")
            model = alice.register_model(onoff_spec)["model"]
            view = alice.submit("passage", model=model, source="on == 2",
                                target="on == 0", t_points=[1.0])
            alice.wait(view["job"], timeout=60)

            assert [m["model"] for m in alice.models()["models"]] == [model]
            assert bob.models()["models"] == []
            assert bob.jobs()["jobs"] == []
            with pytest.raises(ServiceClientError) as excinfo:
                bob.job(view["job"])
            assert excinfo.value.status == 404
            with pytest.raises(ServiceClientError) as excinfo:
                bob.passage(model=model, source="on == 2", target="on == 0",
                            t_points=[1.0])
            assert excinfo.value.status == 404

    def test_default_tenant_when_header_absent(self, onoff_spec):
        with _serve(AnalysisService()) as url:
            anonymous = ServiceClient(url)
            named = ServiceClient(url, tenant="default")
            model = anonymous.register_model(onoff_spec)["model"]
            assert [m["model"] for m in named.models()["models"]] == [model]

    def test_invalid_tenant_name_is_400(self):
        with _serve(AnalysisService()) as url:
            status, _, body = _raw(
                f"{url}/v1/stats", headers={"X-Repro-Tenant": "bad tenant!"}
            )
            assert status == 400
            assert "tenant" in body["error"]

    def test_active_jobs_quota_is_per_tenant_429(self, onoff_spec):
        service = AnalysisService(quotas=TenantQuotas(max_active_jobs=1))
        with _serve(service) as url:
            alice = ServiceClient(url, tenant="alice")
            bob = ServiceClient(url, tenant="bob")
            model = alice.register_model(onoff_spec)["model"]
            bob.register_model(onoff_spec)
            # freeze the runner so submitted jobs stay queued
            service._runner.stop()
            submit = dict(model=model, source="on == 2", target="on == 0",
                          t_points=[1.0])
            alice.submit("passage", **submit)
            with pytest.raises(ServiceClientError) as excinfo:
                alice.submit("passage", **submit)
            assert excinfo.value.status == 429
            assert excinfo.value.payload["quota"] == "active_jobs"
            assert excinfo.value.payload["tenant"] == "alice"
            # bob's budget is untouched
            bob_view = bob.submit("passage", **submit)
            assert bob_view["state"] in ("queued", "running")

    def test_rate_limit_429_with_retry_after(self):
        service = AnalysisService(
            quotas=TenantQuotas(rate_per_second=0.001, burst=1.0)
        )
        with _serve(service) as url:
            status, _, _ = _raw(f"{url}/v1/stats",
                                headers={"X-Repro-Tenant": "hot"})
            assert status == 200
            status, headers, body = _raw(f"{url}/v1/stats",
                                         headers={"X-Repro-Tenant": "hot"})
            assert status == 429
            assert body["quota"] == "rate"
            assert float(headers["Retry-After"]) >= 1
            # health stays unmetered so probes survive an exhausted budget
            status, _, _ = _raw(f"{url}/v1/health",
                                headers={"X-Repro-Tenant": "hot"})
            assert status == 200
            # and another tenant is unaffected
            status, _, _ = _raw(f"{url}/v1/stats",
                                headers={"X-Repro-Tenant": "cold"})
            assert status == 200

    def test_model_quota_429(self, onoff_spec):
        service = AnalysisService(quotas=TenantQuotas(max_models=1))
        with _serve(service) as url:
            client = ServiceClient(url, tenant="small")
            client.register_model(onoff_spec)
            # re-registering the same digest is free
            client.register_model(onoff_spec)
            with pytest.raises(ServiceClientError) as excinfo:
                client.register_model(onoff_spec, overrides={"K": 3})
            assert excinfo.value.status == 429
            assert excinfo.value.payload["quota"] == "models"


class TestHTTPContract:
    def test_405_with_allow_header(self):
        with _serve(AnalysisService()) as url:
            status, headers, body = _raw(f"{url}/v1/passage", method="GET")
            assert status == 405
            assert headers["Allow"] == "POST"
            assert body["status"] == 405
            assert body["allow"] == ["POST"]
            status, headers, _ = _raw(f"{url}/v1/stats", method="POST", body={})
            assert status == 405
            assert headers["Allow"] == "GET"
            status, headers, _ = _raw(f"{url}/v1/jobs/abc", method="POST", body={})
            assert status == 405
            assert headers["Allow"] == "GET, DELETE"

    def test_unknown_v1_path_is_structured_404(self):
        with _serve(AnalysisService()) as url:
            for method in ("GET", "POST", "DELETE"):
                status, _, body = _raw(
                    f"{url}/v1/nope", method=method,
                    body={} if method == "POST" else None,
                )
                assert status == 404
                assert body == {"error": "unknown endpoint '/v1/nope'",
                                "status": 404}

    def test_unknown_job_404(self):
        with _serve(AnalysisService()) as url:
            client = ServiceClient(url)
            with pytest.raises(ServiceClientError) as excinfo:
                client.job("nothere")
            assert excinfo.value.status == 404


class TestClientRetries:
    def test_get_retries_on_connection_failure(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=3, backoff=0.001)
        calls = {"n": 0}

        def flaky(method, path, payload):
            calls["n"] += 1
            if calls["n"] < 3:
                raise _ConnectionFailed("connection reset")
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("GET", "/v1/health") == {"ok": True}
        assert calls["n"] == 3

    def test_get_gives_up_after_retries(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=2, backoff=0.001)
        calls = {"n": 0}

        def dead(method, path, payload):
            calls["n"] += 1
            raise _ConnectionFailed("refused")

        monkeypatch.setattr(client, "_request_once", dead)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/v1/health")
        assert excinfo.value.status == 0
        assert calls["n"] == 3  # initial + 2 retries

    def test_post_fails_fast(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=5, backoff=0.001)
        calls = {"n": 0}

        def dead(method, path, payload):
            calls["n"] += 1
            raise _ConnectionFailed("refused")

        monkeypatch.setattr(client, "_request_once", dead)
        with pytest.raises(ServiceClientError):
            client._request("POST", "/v1/passage", {"x": 1})
        assert calls["n"] == 1  # non-idempotent: never replayed

    def test_http_errors_are_never_retried(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=5, backoff=0.001)
        calls = {"n": 0}

        def not_found(method, path, payload):
            calls["n"] += 1
            raise ServiceClientError(404, "unknown job")

        monkeypatch.setattr(client, "_request_once", not_found)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/v1/jobs/x")
        assert calls["n"] == 1
