"""Fixtures for the analysis-service tests."""
from __future__ import annotations

import threading

import pytest

from repro.service import AnalysisService, ServiceClient, create_server

ON_OFF = r"""
\constant{K}{2}
\model{
  \place{on}{K}
  \place{off}{0}
  \transition{fail}{
    \condition{on > 0}
    \action{ next->on = on - 1; next->off = off + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(2.0, 2, s); }
  }
  \transition{repair}{
    \condition{off > 0}
    \action{ next->on = on + 1; next->off = off - 1; }
    \weight{2.0}
    \priority{1}
    \sojourntimeLT{ return uniformLT(0.5, 1.5, s); }
  }
}
"""


@pytest.fixture
def onoff_spec() -> str:
    return ON_OFF


@pytest.fixture
def service() -> AnalysisService:
    return AnalysisService()


@pytest.fixture
def http_client(service):
    """A client talking to an in-process server on an ephemeral port."""
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
