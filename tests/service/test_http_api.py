"""End-to-end tests of the HTTP JSON API and the stdlib client."""
from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.service import ServiceClientError

T_POINTS = [1.0, 2.0, 4.0, 8.0]


class TestModelsEndpoint:
    def test_register_and_reregister(self, http_client, onoff_spec):
        first = http_client.register_model(onoff_spec, name="onoff")
        assert first["created"] is True
        assert first["states"] == 3
        assert first["constants"]["K"] == 2.0
        second = http_client.register_model(onoff_spec, name="onoff")
        assert second["created"] is False
        assert second["model"] == first["model"]

    def test_register_with_overrides(self, http_client, onoff_spec):
        bigger = http_client.register_model(onoff_spec, overrides={"K": 4})
        assert bigger["states"] == 5

    def test_empty_spec_is_rejected(self, http_client):
        with pytest.raises(ServiceClientError) as err:
            http_client.register_model("   ")
        assert err.value.status == 400

    def test_invalid_spec_is_rejected(self, http_client):
        with pytest.raises(ServiceClientError) as err:
            http_client.register_model(r"\model{ broken")
        assert err.value.status == 422


class TestPassageEndpoint:
    def test_query_by_digest(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        reply = http_client.passage(
            model=model, source="on == K", target="off == K",
            t_points=T_POINTS, cdf=True, quantile=0.5,
        )
        assert reply["model"] == model
        assert len(reply["density"]) == len(T_POINTS)
        cdf = reply["cdf"]
        assert all(0.0 <= F <= 1.0 + 1e-9 for F in cdf)
        assert cdf == sorted(cdf)
        assert 0.0 < reply["quantile"]["t"] < 80.0
        assert reply["statistics"]["s_points_computed"] > 0

    def test_query_by_inline_spec(self, http_client, onoff_spec):
        reply = http_client.passage(
            spec=onoff_spec, source="on == K", target="off == K",
            t_points=T_POINTS,
        )
        assert reply["statistics"]["model_registered"] is True
        again = http_client.passage(
            spec=onoff_spec, source="on == K", target="off == K",
            t_points=T_POINTS,
        )
        assert again["statistics"]["model_registered"] is False
        assert again["statistics"]["s_points_computed"] == 0

    def test_unknown_model_is_404(self, http_client):
        with pytest.raises(ServiceClientError) as err:
            http_client.passage(model="deadbeef", source="a", target="b",
                                t_points=[1.0])
        assert err.value.status == 404

    def test_bad_predicate_is_422(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        with pytest.raises(ServiceClientError) as err:
            http_client.passage(model=model, source="import os", target="off == K",
                                t_points=[1.0])
        assert err.value.status == 422

    def test_unsatisfiable_predicate_is_422(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        with pytest.raises(ServiceClientError) as err:
            http_client.passage(model=model, source="on == 99", target="off == K",
                                t_points=[1.0])
        assert err.value.status == 422
        assert "source predicate" in err.value.message

    def test_bad_t_points_is_400(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        for bad in ([], [-1.0]):
            with pytest.raises(ServiceClientError) as err:
                http_client.passage(model=model, source="on == K",
                                    target="off == K", t_points=bad)
            assert err.value.status == 400
        # Non-numeric entries are rejected server-side too (the client would
        # already refuse to serialise them, so go through a raw request).
        payload = {"model": model, "source": "on == K", "target": "off == K",
                   "t_points": ["x"]}
        with pytest.raises(ServiceClientError) as err:
            http_client._request("POST", "/v1/passage", payload)
        assert err.value.status == 400


class TestTransientEndpoint:
    def test_transient_with_steady_state(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        reply = http_client.transient(
            model=model, source="on == K", target="on > 0", t_points=[1, 5, 50],
        )
        assert len(reply["probability"]) == 3
        assert 0.0 < reply["steady_state"] < 1.0
        # The transient curve settles to the steady state.
        assert reply["probability"][-1] == pytest.approx(reply["steady_state"], abs=5e-3)


class TestStatsAndTransport:
    def test_stats_counters_accumulate(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        query = dict(model=model, source="on == K", target="off == K",
                     t_points=T_POINTS)
        http_client.passage(**query)
        before = http_client.stats()
        http_client.passage(**query)
        after = http_client.stats()
        assert after["queries"]["passage"] == before["queries"]["passage"] + 1
        # The warm repeat evaluated nothing new and hit the memory tier.
        assert after["scheduler"]["points_evaluated"] == \
            before["scheduler"]["points_evaluated"]
        assert after["cache"]["memory_hits"] > before["cache"]["memory_hits"]
        assert after["registry"]["models_built"] == 1

    def test_voting_model_warm_repeat_is_pure_cache(self, http_client):
        """ISSUE 2 acceptance: a repeated passage query on the voting model
        answers from cache — no state-space re-exploration and no s-point
        re-evaluation, asserted via the /v1/stats counters."""
        from repro.models import SCALED_CONFIGURATIONS, voting_spec_text

        spec = voting_spec_text(SCALED_CONFIGURATIONS["tiny"])
        model = http_client.register_model(spec, name="voting-tiny")["model"]
        query = dict(model=model, source="p1 == CC", target="p2 == CC",
                     t_points=[5.0, 10.0, 20.0], cdf=True)
        cold = http_client.passage(**query)
        before = http_client.stats()
        warm = http_client.passage(**query)
        after = http_client.stats()
        assert warm["statistics"]["s_points_computed"] == 0
        assert warm["statistics"]["s_points_from_memory"] == \
            warm["statistics"]["s_points_required"]
        assert after["scheduler"]["points_evaluated"] == \
            before["scheduler"]["points_evaluated"]
        assert after["registry"]["models_built"] == before["registry"]["models_built"]
        assert after["cache"]["memory_hits"] > before["cache"]["memory_hits"]
        np.testing.assert_allclose(warm["density"], cold["density"])

    def test_health(self, http_client):
        assert http_client.health() == {"status": "ok"}

    def test_unknown_route_is_404(self, http_client):
        with pytest.raises(ServiceClientError) as err:
            http_client._request("GET", "/v2/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceClientError) as err:
            http_client._request("POST", "/v1/frobnicate", {"x": 1})
        assert err.value.status == 404

    def test_malformed_json_body_is_400(self, http_client):
        request = urllib.request.Request(
            http_client.base_url + "/v1/passage",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        assert "not valid JSON" in json.loads(err.value.read())["error"]

    def test_concurrent_http_clients_coalesce(self, http_client, onoff_spec, service):
        model = http_client.register_model(onoff_spec)["model"]
        replies: list[dict] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def worker():
            try:
                barrier.wait()
                replies.append(http_client.passage(
                    model=model, source="on == K", target="off == K",
                    t_points=[1.5, 3.0, 6.0],
                ))
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        required = replies[0]["statistics"]["s_points_required"]
        assert service.scheduler.points_evaluated == required
        for reply in replies[1:]:
            np.testing.assert_allclose(reply["density"], replies[0]["density"])


class TestEvaluatorEngineReporting:
    def test_stats_report_engine_batches_and_blocks(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        reply = http_client.passage(
            model=model, source="on == K", target="off == K", t_points=[0.7, 1.4]
        )
        # The cold query's statistics name the engine and its block timings.
        stats = reply["statistics"]
        assert stats["evaluator_engine"] in ("batch", "factored")
        blocks = stats["solve_blocks"]
        assert blocks and all(b["points"] >= 1 and b["seconds"] >= 0 for b in blocks)
        server_stats = http_client.stats()
        engines = server_stats["scheduler"]["engine_batches"]
        assert sum(engines.values()) >= 1
        assert server_stats["scheduler"]["engine_blocks"]

    def test_registration_reports_engine(self, http_client, onoff_spec):
        info = http_client.register_model(onoff_spec)
        assert info["evaluator_engine"] in ("batch", "factored")

    def test_warm_query_omits_engine(self, http_client, onoff_spec):
        """A fully cached query ran no solve, so no engine is reported."""
        model = http_client.register_model(onoff_spec)["model"]
        query = dict(model=model, source="on == K", target="off == K",
                     t_points=[2.2, 3.3])
        http_client.passage(**query)
        warm = http_client.passage(**query)
        assert warm["statistics"]["s_points_computed"] == 0
        assert "evaluator_engine" not in warm["statistics"]
