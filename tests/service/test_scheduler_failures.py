"""Failure propagation through the coalescing scheduler.

A waiter blocked on another request's in-flight s-point must learn about the
leader's death *immediately* — sitting out the coalesce timeout would turn
one failed evaluation into a ten-minute stall for every coalesced request.
"""
from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.service.scheduler import CoalescingScheduler

S = complex(1.0, 2.0)


class _FakeCache:
    """Everything misses; peek/insert are controllable no-ops."""

    def __init__(self, peek=None):
        self._peek = peek

    def lookup(self, digest, canonical):
        return SimpleNamespace(
            found={}, missing=list(canonical), memory_hits=0, disk_hits=0
        )

    def peek(self, digest, owned):
        if self._peek is not None:
            return self._peek(digest, owned)
        return {}

    def insert(self, digest, values):
        pass


class _ScriptedJob:
    """evaluate_many blocks on ``release`` and then runs ``action``."""

    policy = None
    last_report = None

    def __init__(self, entered, release, action):
        self.entered = entered
        self.release = release
        self.action = action

    def digest(self):
        return "digest-1"

    def kind(self):
        return "passage"

    def evaluate_many(self, todo):
        self.entered.set()
        self.release.wait(10.0)
        return self.action(todo)


def _leader_and_waiter(scheduler, job):
    """Start a leader on ``job`` and, once it owns the point, a waiter."""
    leader_error: list = []

    def _lead():
        try:
            scheduler.evaluate(job, [S])
        except BaseException as exc:  # noqa: BLE001 - recorded for the test
            leader_error.append(exc)

    leader = threading.Thread(target=_lead, daemon=True)
    leader.start()
    assert job.entered.wait(5.0)

    waiter_outcome: dict = {}

    def _wait():
        follower = _ScriptedJob(
            threading.Event(), threading.Event(), lambda todo: {}
        )
        start = time.monotonic()
        try:
            waiter_outcome["value"] = scheduler.evaluate(follower, [S])
        except BaseException as exc:  # noqa: BLE001 - recorded for the test
            waiter_outcome["error"] = exc
        waiter_outcome["elapsed"] = time.monotonic() - start

    waiter = threading.Thread(target=_wait, daemon=True)
    waiter.start()
    time.sleep(0.1)  # let the waiter register on the in-flight ticket
    return leader, waiter, leader_error, waiter_outcome


def test_leader_death_reaches_waiters_within_a_second():
    scheduler = CoalescingScheduler(_FakeCache(), coalesce_timeout=600.0)

    def _explode(todo):
        raise RuntimeError("leader exploded")

    entered, release = threading.Event(), threading.Event()
    job = _ScriptedJob(entered, release, _explode)
    leader, waiter, leader_error, outcome = _leader_and_waiter(scheduler, job)

    released = time.monotonic()
    release.set()
    waiter.join(5.0)
    leader.join(5.0)
    assert not waiter.is_alive()
    assert isinstance(leader_error[0], RuntimeError)
    assert "error" in outcome
    assert "failed in another request" in str(outcome["error"])
    # the waiter saw the failure nearly instantly, not after the timeout
    assert time.monotonic() - released < 1.0
    assert not scheduler._in_flight  # no orphaned tickets


def test_failure_outside_evaluate_owned_still_resolves_tickets():
    """The peek double-check runs before _evaluate_owned; a crash there must
    release the registered tickets too (regression for the wrapper around
    the whole owned section)."""
    peek_entered, peek_release = threading.Event(), threading.Event()

    def _peek(digest, owned):
        peek_entered.set()
        peek_release.wait(10.0)
        raise RuntimeError("cache backend died")

    scheduler = CoalescingScheduler(_FakeCache(peek=_peek), coalesce_timeout=600.0)
    job = _ScriptedJob(peek_entered, threading.Event(), lambda todo: {})
    leader, waiter, leader_error, outcome = _leader_and_waiter(scheduler, job)

    released = time.monotonic()
    peek_release.set()
    waiter.join(5.0)
    leader.join(5.0)
    assert not waiter.is_alive()
    assert isinstance(leader_error[0], RuntimeError)
    assert "error" in outcome
    assert time.monotonic() - released < 1.0
    assert not scheduler._in_flight


def test_coalesce_timeout_is_a_constructor_knob():
    scheduler = CoalescingScheduler(_FakeCache(), coalesce_timeout=0.2)
    assert scheduler.coalesce_timeout == 0.2

    entered, release = threading.Event(), threading.Event()
    job = _ScriptedJob(entered, release, lambda todo: {todo[0]: complex(1.0)})
    leader, waiter, leader_error, outcome = _leader_and_waiter(scheduler, job)
    try:
        waiter.join(5.0)
        assert isinstance(outcome.get("error"), TimeoutError)
        assert outcome["elapsed"] < 2.0  # the 600s default would still be waiting
    finally:
        release.set()
        leader.join(5.0)
    assert not leader_error


def test_coalesce_timeout_must_be_positive():
    with pytest.raises(ValueError, match="coalesce_timeout"):
        CoalescingScheduler(_FakeCache(), coalesce_timeout=0.0)
