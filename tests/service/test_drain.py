"""Graceful drain: SIGTERM parks the in-flight job and exits cleanly.

``semimarkov serve`` under SIGTERM must stop admitting mutations (503 with a
Retry-After), let the running job reach its next s-block boundary, re-queue
it with every completed block checkpointed, and exit 0.  A second server
over the same checkpoint directory then picks the job up and finishes it
from disk.
"""
from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service import ServiceClient, ServiceClientError

from .conftest import ON_OFF

SRC = Path(__file__).resolve().parents[2] / "src"

T_POINTS = [float(t) for t in np.linspace(0.5, 6.0, 12)]
QUERY = dict(spec=ON_OFF, source="on == 2", target="on == 0",
             t_points=T_POINTS, cdf=True)


def _start_server(checkpoint: Path, extra_env: dict | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    # small blocks => many drain points inside one solve
    env["REPRO_JOBS_BLOCK_POINTS"] = "4"
    env.update(extra_env or {})
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--checkpoint", str(checkpoint), "--job-store", "sqlite"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError("server died before listening")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return process, f"http://127.0.0.1:{match.group(1)}"
    process.kill()
    raise RuntimeError("server never printed its listening banner")


def test_sigterm_drains_requeues_and_resumes(tmp_path):
    checkpoint = tmp_path / "ckpt"

    # --- first life: SIGTERM lands mid-job ---------------------------------
    # Each s-block is slowed so the drain window (signal -> accept-loop stop)
    # is wide enough to observe the 503 behaviour deterministically.
    process, url = _start_server(
        checkpoint, {"REPRO_FAULTS": "jobs.block=delay:seconds=0.4"}
    )
    refused = None
    try:
        client = ServiceClient(url, retries=0)
        job_id = client.submit("passage", **QUERY)["job"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            view = client.job(job_id)
            if view["state"] == "running" and view["progress"].get("blocks_done"):
                break
            time.sleep(0.05)
        else:
            pytest.fail("job never started running")

        process.send_signal(signal.SIGTERM)
        time.sleep(0.1)  # the drain flag is set synchronously in the handler
        try:
            client.submit("passage", **QUERY)
        except ServiceClientError as exc:
            refused = exc
        output, _ = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    assert process.returncode == 0  # a drain is not a crash
    assert "received SIGTERM; draining" in output
    assert "drained; all job state persisted" in output
    # the submit raced the accept-loop stop: either it reached the server and
    # was refused with backpressure, or the socket was already closed
    assert refused is not None
    if refused.status != 0:
        assert refused.status == 503
        assert refused.retry_after is not None

    # --- second life: the parked job resumes from its checkpoints ----------
    process, url = _start_server(checkpoint)
    try:
        client = ServiceClient(url, tenant=None)
        final = client.wait(job_id, timeout=180, interval=0.2)
        assert final["state"] == "done"
        assert final["attempts"] == 2  # one per server life
        statistics = final["result"]["statistics"]
        assert statistics["s_points_from_disk"] > 0  # drained blocks reused
        progress = final["progress"]
        assert progress["points_done"] == progress["points_total"]
    finally:
        process.kill()
        process.wait(timeout=30)
