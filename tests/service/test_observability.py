"""Service observability: /metrics, /v1/progress, build info, request log."""
from __future__ import annotations

import logging
import time

import repro


def _wait_until(predicate, timeout: float = 5.0):
    """Poll for a condition that lands just after the HTTP reply.

    Request accounting (the structured log line, the request counters) runs
    in the handler's ``finally`` — *after* the client has read the response
    body — so assertions made immediately can race it by a scheduling beat.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value or time.monotonic() >= deadline:
            return value
        time.sleep(0.01)


class TestMetricsEndpoint:
    def test_prometheus_text_exposition(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        reply = http_client.passage(
            model=model, source="on == K", target="off == K",
            t_points=[1.0, 5.0], cdf=True,
        )
        assert _wait_until(
            lambda: 'repro_requests_total{path="/v1/passage",status="200",tenant="default"}'
            in http_client.metrics_text()
        )
        text = http_client.metrics_text()
        assert "# TYPE repro_points_evaluated_total counter" in text
        assert "# TYPE repro_block_seconds histogram" in text
        assert "repro_block_seconds_bucket{le=" in text
        assert 'repro_queries_total{kind="passage",tenant="default"}' in text
        assert "repro_models_built_total" in text
        # the counter reconciles with what this query reported computing
        computed = reply["statistics"]["s_points_computed"]
        for line in text.splitlines():
            if line.startswith("repro_points_evaluated_total "):
                assert float(line.split()[-1]) >= computed
                break
        else:  # pragma: no cover - assertion aid
            raise AssertionError("repro_points_evaluated_total not exposed")

    def test_cache_tier_counters(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        kwargs = dict(model=model, source="on == K", target="off == K",
                      t_points=[2.0, 4.0])
        http_client.passage(**kwargs)
        http_client.passage(**kwargs)  # served from the memory tier
        text = http_client.metrics_text()
        assert 'repro_cache_points_total{tier="memory"}' in text


class TestProgressEndpoint:
    def test_finished_run_is_visible_in_recent(self, http_client, onoff_spec):
        model = http_client.register_model(onoff_spec)["model"]
        http_client.passage(
            model=model, source="on == K", target="off == K", t_points=[1.0]
        )
        view = http_client.progress(model)
        assert view["digest"] == model
        assert view["active"] == []
        assert view["recent"]
        snap = view["recent"][-1]
        assert snap["finished"] is True
        assert snap["points_done"] == snap["points_total"] > 0
        assert snap["blocks_done"] >= 1

    def test_unknown_digest_is_empty_not_an_error(self, http_client):
        view = http_client.progress("deadbeef")
        assert view == {"digest": "deadbeef", "active": [], "recent": []}


class TestStatsBuildInfo:
    def test_stats_carry_version_and_build(self, http_client):
        stats = http_client.stats()
        assert stats["version"] == repro.__version__
        build = stats["build"]
        assert build["python"].count(".") >= 1
        assert build["numpy"]
        assert build["scipy"]
        assert build["effective_cores"] >= 1


class TestRequestLog:
    def test_one_structured_line_per_request(self, http_client, onoff_spec,
                                             caplog):
        with caplog.at_level(logging.INFO, logger="repro.service"):
            model = http_client.register_model(onoff_spec)["model"]
            http_client.passage(
                model=model, source="on == K", target="off == K",
                t_points=[1.0],
            )
            http_client.health()
            _wait_until(lambda: len(
                [r for r in caplog.records if r.name == "repro.service"]
            ) >= 3)
        lines = [r.getMessage() for r in caplog.records
                 if r.name == "repro.service"]
        assert len(lines) == 3
        passage_line = next(line for line in lines if "/v1/passage" in line)
        assert "method=POST" in passage_line
        assert f"digest={model}" in passage_line
        assert "status=200" in passage_line
        assert "ms=" in passage_line
        assert "points=" in passage_line
        health_line = next(line for line in lines if "/v1/health" in line)
        assert "method=GET" in health_line
        assert "digest=-" in health_line

    def test_errors_log_their_status(self, http_client, caplog):
        import pytest

        from repro.service import ServiceClientError

        with caplog.at_level(logging.INFO, logger="repro.service"):
            with pytest.raises(ServiceClientError):
                http_client.passage(model="missing", source="a", target="b",
                                    t_points=[1.0])
            _wait_until(lambda: [r for r in caplog.records
                                 if r.name == "repro.service"])
        (line,) = [r.getMessage() for r in caplog.records
                   if r.name == "repro.service"]
        assert "status=404" in line
