"""Client-side backpressure behaviour: Retry-After, 429 polling, jitter.

A polling fleet must neither hammer a rate-limiting server (ignore its
Retry-After) nor re-arrive in lockstep after a shared backoff (no jitter).
"""
from __future__ import annotations

import io
import urllib.error
import urllib.request
from email.message import Message

import pytest

from repro.service import ServiceClient, ServiceClientError
from repro.service.client import _jittered


class TestJitter:
    def test_jitter_stays_within_twenty_percent(self):
        draws = [_jittered(1.0) for _ in range(500)]
        assert all(0.8 <= d <= 1.2 for d in draws)
        assert max(draws) - min(draws) > 0.01  # actually random, not constant

    def test_jitter_scales_with_delay(self):
        assert 0.08 <= _jittered(0.1) <= 0.12


class TestRetryAfterParsing:
    def _raise_429(self, retry_after=None):
        headers = Message()
        if retry_after is not None:
            headers["Retry-After"] = retry_after
        return urllib.error.HTTPError(
            "http://127.0.0.1:1/v1/jobs/x", 429, "Too Many Requests",
            headers, io.BytesIO(b'{"error": "rate limited"}'),
        )

    def test_retry_after_header_lands_on_the_exception(self, monkeypatch):
        error = self._raise_429("7")
        monkeypatch.setattr(
            urllib.request, "urlopen",
            lambda *a, **k: (_ for _ in ()).throw(error),
        )
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("x")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 7.0
        assert excinfo.value.message == "rate limited"

    def test_unparseable_retry_after_is_ignored(self, monkeypatch):
        error = self._raise_429("next tuesday")
        monkeypatch.setattr(
            urllib.request, "urlopen",
            lambda *a, **k: (_ for _ in ()).throw(error),
        )
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("x")
        assert excinfo.value.retry_after is None


class TestWaitUnder429:
    def _polling_client(self, monkeypatch, responses, sleeps):
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        replies = iter(responses)

        def _job(job_id):
            reply = next(replies)
            if isinstance(reply, Exception):
                raise reply
            return reply

        monkeypatch.setattr(client, "job", _job)
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        return client

    def test_wait_honours_retry_after_and_keeps_polling(self, monkeypatch):
        sleeps: list[float] = []
        client = self._polling_client(
            monkeypatch,
            [
                ServiceClientError(429, "rate limited", retry_after=3.5),
                ServiceClientError(429, "rate limited", retry_after=1.25),
                {"state": "done", "job": "x"},
            ],
            sleeps,
        )
        view = client.wait("x", interval=0.25)
        assert view["state"] == "done"
        assert sleeps == [3.5, 1.25]  # the server's pacing, not ours

    def test_wait_without_retry_after_falls_back_to_jittered_interval(
        self, monkeypatch
    ):
        sleeps: list[float] = []
        client = self._polling_client(
            monkeypatch,
            [
                ServiceClientError(429, "rate limited"),
                {"state": "done", "job": "x"},
            ],
            sleeps,
        )
        client.wait("x", interval=0.25)
        assert len(sleeps) == 1
        assert 0.2 <= sleeps[0] <= 0.3  # +-20% of the interval

    def test_wait_reraises_non_429_errors(self, monkeypatch):
        sleeps: list[float] = []
        client = self._polling_client(
            monkeypatch,
            [ServiceClientError(500, "kaboom")],
            sleeps,
        )
        with pytest.raises(ServiceClientError, match="kaboom"):
            client.wait("x")
        assert sleeps == []
