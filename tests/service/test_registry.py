"""Tests for the content-addressed model registry."""
from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import ModelRegistry, spec_digest


class TestSpecDigest:
    def test_stable_and_whitespace_insensitive(self, onoff_spec):
        assert spec_digest(onoff_spec) == spec_digest(onoff_spec)
        assert spec_digest(onoff_spec) == spec_digest("\n" + onoff_spec + "  \n")

    def test_overrides_and_caps_change_the_digest(self, onoff_spec):
        base = spec_digest(onoff_spec)
        assert spec_digest(onoff_spec, {"K": 4.0}) != base
        assert spec_digest(onoff_spec, {"K": 4.0}) == spec_digest(onoff_spec, {"K": 4})
        assert spec_digest(onoff_spec, max_states=10) != base


class TestModelRegistry:
    def test_identical_specs_share_one_entry(self, onoff_spec):
        registry = ModelRegistry()
        first, created_first = registry.register(onoff_spec)
        second, created_second = registry.register(onoff_spec)
        assert created_first and not created_second
        assert second is first
        assert second.kernel is first.kernel
        assert second.evaluator is first.evaluator
        assert registry.models_built == 1
        assert registry.registry_hits == 1

    def test_overrides_build_distinct_kernels(self, onoff_spec):
        registry = ModelRegistry()
        base, _ = registry.register(onoff_spec)
        bigger, created = registry.register(onoff_spec, overrides={"K": 4})
        assert created
        assert bigger is not base
        assert base.n_states == 3       # on+off in {2..0}
        assert bigger.n_states == 5     # K=4 -> five markings
        assert bigger.constants["K"] == 4.0
        assert registry.models_built == 2

    def test_lookup_by_digest(self, onoff_spec):
        registry = ModelRegistry()
        entry, _ = registry.register(onoff_spec)
        assert registry.get(entry.digest) is entry
        assert registry.get("no-such-digest") is None

    def test_state_set_memoisation(self, onoff_spec):
        registry = ModelRegistry()
        entry, _ = registry.register(onoff_spec)
        first = entry.states_matching("off == K")
        second = entry.states_matching("off == K")
        assert first is second
        np.testing.assert_array_equal(first, entry.graph.states_where(
            lambda view: view.as_dict()["off"] == 2
        ))

    def test_concurrent_registration_builds_once(self, onoff_spec):
        registry = ModelRegistry()
        entries = []
        barrier = threading.Barrier(8)

        def register():
            barrier.wait()
            entry, _ = registry.register(onoff_spec)
            entries.append(entry)

        threads = [threading.Thread(target=register) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.models_built == 1
        assert len(entries) == 8
        assert all(e is entries[0] for e in entries)

    def test_bad_spec_raises_for_every_caller(self):
        registry = ModelRegistry()
        with pytest.raises(Exception):
            registry.register(r"\model{ not valid")
        assert registry.models_built == 0
        # The failed build must not leave a stuck "building" event behind.
        with pytest.raises(Exception):
            registry.register(r"\model{ not valid")
