"""Kill the server mid-solve; the job must survive, resume and finish right.

The server process is crashed after its first completed s-block by the
``jobs.block`` fault point (``REPRO_FAULTS="jobs.block=crash:done=1"``).  A
second server started against the same checkpoint directory must

* replay the sqlite job log and re-queue the interrupted ``running`` job,
* resume it from the per-block checkpoints — points already solved come
  from the disk tier, only the remainder is computed (exact accounting,
  no loss, no double-count),
* produce a density identical (``<= 1e-10``) to an in-process synchronous
  solve of the same query.
"""
from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.service import AnalysisService, ServiceClient

from .conftest import ON_OFF

SRC = Path(__file__).resolve().parents[2] / "src"

T_POINTS = [float(t) for t in np.linspace(0.5, 6.0, 12)]
QUERY = dict(spec=ON_OFF, source="on == 2", target="on == 0",
             t_points=T_POINTS, cdf=True)


def _start_server(checkpoint: Path, extra_env: dict | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    # small blocks => several checkpoint barriers inside one solve
    env["REPRO_JOBS_BLOCK_POINTS"] = "8"
    env.update(extra_env or {})
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--checkpoint", str(checkpoint), "--job-store", "sqlite"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError("server died before listening")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return process, f"http://127.0.0.1:{match.group(1)}"
    process.kill()
    raise RuntimeError("server never printed its listening banner")


def test_job_survives_server_crash_and_resumes(tmp_path):
    checkpoint = tmp_path / "ckpt"

    # --- first life: crash after the first completed block -----------------
    process, url = _start_server(
        checkpoint, {"REPRO_FAULTS": "jobs.block=crash:done=1"}
    )
    try:
        client = ServiceClient(url, retries=0)
        view = client.submit("passage", **QUERY)
        job_id = view["job"]
        assert process.wait(timeout=120) == 1  # the planted crash fired
    finally:
        if process.poll() is None:
            process.kill()

    # --- second life: same checkpoint dir, no crash hook -------------------
    process, url = _start_server(checkpoint)
    try:
        client = ServiceClient(url, tenant=None)
        final = client.wait(job_id, timeout=180, interval=0.2)
        assert final["state"] == "done"
        assert final["attempts"] == 2  # one per server life

        # exact points accounting on the resumed attempt: everything the
        # first life checkpointed arrives from disk, nothing is recomputed
        # and nothing is missing.
        statistics = final["result"]["statistics"]
        accounted = (
            statistics["s_points_computed"]
            + statistics["s_points_from_disk"]
            + statistics["s_points_from_memory"]
        )
        assert accounted == statistics["s_points_required"]
        assert statistics["s_points_from_disk"] > 0
        assert statistics["s_points_computed"] < statistics["s_points_required"]
        assert final["plan"]["points_checkpointed"] > 0

        progress = final["progress"]
        assert progress["points_done"] == progress["points_total"]

        # the jobs listing survived the crash too
        jobs = client.jobs()["jobs"]
        assert [j["job"] for j in jobs] == [job_id]
        assert jobs[0]["state"] == "done"
    finally:
        process.kill()
        process.wait(timeout=30)

    # --- parity with a synchronous in-process solve ------------------------
    sync = AnalysisService().passage(**{k: v for k, v in QUERY.items()
                                        if k != "cdf"}, include_cdf=True)
    for key in ("density", "cdf"):
        assert np.max(np.abs(
            np.asarray(final["result"][key]) - np.asarray(sync[key])
        )) <= 1e-10
