"""Coalescing and tiered-cache behaviour of the analysis service."""
from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import AnalysisService, QueryError, TieredResultCache

T_POINTS = [1.0, 2.0, 4.0, 8.0]
QUERY = dict(source="on == K", target="off == K", t_points=T_POINTS)


class TestWarmCache:
    def test_repeated_query_computes_nothing(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        cold = service.passage(model=model, **QUERY)
        warm = service.passage(model=model, **QUERY)
        assert cold["statistics"]["s_points_computed"] > 0
        assert warm["statistics"]["s_points_computed"] == 0
        assert warm["statistics"]["s_points_from_memory"] == \
            cold["statistics"]["s_points_required"]
        np.testing.assert_allclose(warm["density"], cold["density"])
        np.testing.assert_allclose(warm["cdf"], cold["cdf"])
        # The model itself was built exactly once.
        assert service.registry.models_built == 1

    def test_distinct_measures_do_not_share_values(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        service.passage(model=model, **QUERY)
        other = service.passage(
            model=model, source="on == K", target="off > 0", t_points=T_POINTS
        )
        # Different target set -> different measure digest -> fresh points.
        assert other["statistics"]["s_points_computed"] > 0

    def test_epsilon_keys_the_measure(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        service.passage(model=model, **QUERY)
        looser = service.passage(model=model, epsilon=1e-4, **QUERY)
        assert looser["statistics"]["s_points_computed"] > 0


class TestCoalescing:
    def test_concurrent_queries_evaluate_each_point_once(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        replies: list[dict] = []
        errors: list[BaseException] = []

        def worker():
            try:
                barrier.wait()
                replies.append(service.passage(model=model, **QUERY))
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(replies) == n_threads

        required = replies[0]["statistics"]["s_points_required"]
        assert required > 0
        # The single-flight table guarantees each distinct s-point was
        # evaluated exactly once across all eight requests...
        assert service.scheduler.points_evaluated == required
        # ...and every other request's points were served by coalescing onto
        # the in-flight evaluation or by the freshly warmed memory tier.
        total_served = sum(
            r["statistics"]["s_points_from_memory"]
            + r["statistics"]["s_points_coalesced"]
            + r["statistics"]["s_points_computed"]
            for r in replies
        )
        assert total_served == n_threads * required
        coalesced = service.scheduler.points_coalesced
        memory_hits = service.cache.memory_hits
        assert coalesced + memory_hits == (n_threads - 1) * required
        for reply in replies[1:]:
            np.testing.assert_allclose(reply["density"], replies[0]["density"])

    def test_transient_and_passage_share_the_kernel_not_values(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        p = service.passage(model=model, **QUERY)
        t = service.transient(model=model, source="on == K", target="on > 0",
                              t_points=T_POINTS)
        assert p["statistics"]["s_points_computed"] > 0
        assert t["statistics"]["s_points_computed"] > 0
        assert service.registry.models_built == 1


class TestTieredCache:
    def test_disk_tier_survives_a_restart(self, onoff_spec, tmp_path):
        first = AnalysisService(checkpoint_dir=tmp_path / "ckpt")
        model = first.register_model(onoff_spec)["model"]
        cold = first.passage(model=model, **QUERY)
        assert cold["statistics"]["s_points_computed"] > 0

        # A fresh service process over the same checkpoint directory must
        # answer from disk without re-evaluating anything.
        second = AnalysisService(checkpoint_dir=tmp_path / "ckpt")
        model2 = second.register_model(onoff_spec)["model"]
        assert model2 == model
        warm = second.passage(model=model2, **QUERY)
        assert warm["statistics"]["s_points_computed"] == 0
        assert warm["statistics"]["s_points_from_disk"] == \
            cold["statistics"]["s_points_required"]
        np.testing.assert_allclose(warm["density"], cold["density"])

    def test_lru_eviction_recovers_from_disk(self, onoff_spec, tmp_path):
        service = AnalysisService(checkpoint_dir=tmp_path / "ckpt", cache_points=40)
        model = service.register_model(onoff_spec)["model"]
        service.passage(model=model, **QUERY)            # measure A (33 points)
        service.passage(model=model, source="on == K", target="off > 0",
                        t_points=T_POINTS)               # measure B evicts A
        assert service.cache.measures_evicted >= 1
        again = service.passage(model=model, **QUERY)
        assert again["statistics"]["s_points_computed"] == 0
        assert again["statistics"]["s_points_from_disk"] > 0

    def test_memory_only_eviction_recomputes(self, onoff_spec):
        service = AnalysisService(cache_points=40)
        model = service.register_model(onoff_spec)["model"]
        service.passage(model=model, **QUERY)
        service.passage(model=model, source="on == K", target="off > 0",
                        t_points=T_POINTS)
        again = service.passage(model=model, **QUERY)
        assert again["statistics"]["s_points_computed"] > 0

    def test_cache_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TieredResultCache(max_points=0)


class TestQuantile:
    def test_service_quantile_matches_cdf(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        reply = service.passage(model=model, quantile=0.9, **QUERY)
        t90 = reply["quantile"]["t"]
        check = service.passage(model=model, source="on == K", target="off == K",
                                t_points=[t90])
        assert check["cdf"][0] == pytest.approx(0.9, abs=1e-4)

    def test_unbracketed_quantile_is_a_query_error(self, service, onoff_spec):
        model = service.register_model(onoff_spec)["model"]
        with pytest.raises(QueryError, match="not bracketed"):
            service.passage(model=model, source="on == K", target="off == K",
                            t_points=[50.0, 60.0], quantile=0.001)
