"""Block-dispatched execution parity: every bundled model, engine, inversion.

The s-block refactor must be invisible in the numbers: a grid chopped into
memory-budgeted blocks and evaluated by pool workers attached to the shared
kernel plane has to agree with the single-process inline sweep to 1e-10 on
every bundled model, under both the batched and the distribution-factored
evaluation engines and both inversion algorithms.  (Per-point results are
independent of the blocking, so in practice the agreement is bit-exact.)
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.api import DistributedEngine, Model
from repro.core.jobs import PassageTimeJob
from repro.distributed import DistributedPipeline, MultiprocessingBackend
from repro.models import (
    SCALED_CONFIGURATIONS,
    alternating_renewal_kernel,
    birth_death_kernel,
    build_voting_kernel,
    cyclic_server_kernel,
    mg1_queue_kernel,
    web_server_net,
)
from repro.petri import build_kernel, explore
from repro.smp import SPointPolicy, source_weights

T_POINTS = [0.5, 2.0]
PARITY = dict(rtol=0.0, atol=1e-10)
LAGUERRE_OPTIONS = {"n_points": 32}

_KERNEL_BUILDERS = {
    "alternating-renewal": lambda: alternating_renewal_kernel(),
    "birth-death": lambda: birth_death_kernel(6),
    "cyclic-server": lambda: cyclic_server_kernel(3),
    "mg1-queue": lambda: mg1_queue_kernel(5),
    "web-server": lambda: build_kernel(
        explore(web_server_net(servers=2, queue_capacity=2))
    ),
    "voting-tiny": lambda: build_voting_kernel(SCALED_CONFIGURATIONS["tiny"])[0],
}

_KERNELS: dict[str, object] = {}


def _kernel(name):
    if name not in _KERNELS:
        _KERNELS[name] = _KERNEL_BUILDERS[name]()
    return _KERNELS[name]


def _make_job(kernel, engine: str) -> PassageTimeJob:
    return PassageTimeJob(
        kernel=kernel,
        alpha=source_weights(kernel, [0]),
        targets=[kernel.n_states - 1],
        policy=SPointPolicy(engine=engine),
    )


@pytest.mark.parametrize("model_name", sorted(_KERNEL_BUILDERS))
@pytest.mark.parametrize("engine", ["batch", "factored"])
@pytest.mark.parametrize("inversion", ["euler", "laguerre"])
def test_block_dispatch_matches_inline(model_name, engine, inversion):
    kernel = _kernel(model_name)
    options = LAGUERRE_OPTIONS if inversion == "laguerre" else None

    inline = DistributedPipeline(
        _make_job(kernel, engine), inversion=inversion, inverter_options=options
    )
    reference = inline.density(T_POINTS)

    backend = MultiprocessingBackend(processes=2)
    blocked = DistributedPipeline(
        _make_job(kernel, engine),
        inversion=inversion,
        inverter_options=options,
        backend=backend,
    )
    try:
        density = blocked.density(T_POINTS)
    finally:
        backend.close()
    np.testing.assert_allclose(density, reference, **PARITY)
    assert blocked.statistics.workers  # the pool really served the blocks


class TestQueryLevelWorkers:
    @pytest.fixture(scope="class")
    def passage_query(self, voting_spec):
        model = Model.from_spec(voting_spec, name="voting-block-parity")
        return model.passage("p1 == CC", "p2 == CC").density([5.0, 10.0, 20.0])

    @pytest.fixture(scope="class")
    def inline_result(self, passage_query):
        return passage_query.run(engine="inline")

    def test_multiprocessing_workers_kwarg(self, passage_query, inline_result):
        result = passage_query.run(engine="multiprocessing", workers=2)
        np.testing.assert_allclose(result.density, inline_result.density, **PARITY)
        workers = result.statistics.get("workers")
        assert workers
        assert sum(e["points"] for e in workers.values()) > 0

    def test_workers_and_processes_conflict(self):
        from repro.api.engines import EngineError, MultiprocessingEngine

        with pytest.raises(EngineError):
            MultiprocessingEngine(workers=2, processes=3)

    def test_distributed_workers_use_plane_store(
        self, passage_query, inline_result, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        engine = DistributedEngine(workers=2, checkpoint=str(ckpt))
        result = passage_query.run(engine)
        np.testing.assert_allclose(result.density, inline_result.density, **PARITY)
        # The engine exported the kernel plane as a file under the
        # checkpoint directory, where serve-fleet workers attach by digest.
        assert list((ckpt / "planes").glob("*.plane"))
        # Resume answers from the block-granular checkpoint.
        resumed = passage_query.run(DistributedEngine(workers=2, checkpoint=str(ckpt)))
        assert resumed.statistics["s_points_computed"] == 0


class TestServiceWorkers:
    def test_service_pool_reports_worker_stats(self, voting_spec):
        from repro.service import AnalysisService

        service = AnalysisService(workers=2)
        info = service.register_model(voting_spec, name="voting-pool")
        response = service.passage(
            model=info["model"],
            source="p1 == CC",
            target="p2 == CC",
            t_points=[5.0, 10.0],
            include_cdf=False,
        )
        workers = response["statistics"].get("workers")
        assert workers
        assert sum(e["blocks"] for e in workers.values()) > 0
        stats = service.stats()
        assert stats["workers"] == 2
        assert stats["scheduler"].get("workers")

    def test_service_rejects_bad_worker_count(self):
        from repro.service import AnalysisService
        from repro.service.service import ValidationError

        with pytest.raises(ValidationError):
            AnalysisService(workers=0)
