"""Shared fixtures for the public-API tests."""
from __future__ import annotations

import threading

import pytest

from repro.models import SCALED_CONFIGURATIONS, voting_spec_text

ONOFF_SPEC = r"""
\constant{K}{2}
\model{
  \place{on}{K}
  \place{off}{0}
  \transition{fail}{
    \condition{on > 0}
    \action{ next->on = on - 1; next->off = off + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(2.0, 2, s); }
  }
  \transition{repair}{
    \condition{off > 0}
    \action{ next->on = on + 1; next->off = off - 1; }
    \weight{2.0}
    \priority{1}
    \sojourntimeLT{ return uniformLT(0.5, 1.5, s); }
  }
}
"""


@pytest.fixture
def onoff_spec() -> str:
    return ONOFF_SPEC


@pytest.fixture(scope="module")
def voting_spec() -> str:
    return voting_spec_text(SCALED_CONFIGURATIONS["tiny"])


@pytest.fixture(scope="module")
def server_url():
    """A live analysis server for remote-engine tests."""
    from repro.service import AnalysisService, create_server

    server = create_server(AnalysisService(), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
