"""Tests of the lazy query objects, query plans and the engine registry."""
from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    EngineError,
    InlineEngine,
    Model,
    PlanError,
    PredicateError,
    available_engines,
    get_engine,
    register_engine,
)
from repro.service.registry import ModelRegistry


@pytest.fixture
def model(onoff_spec):
    return Model.from_spec(onoff_spec, registry=ModelRegistry())


class TestFluentQueries:
    def test_queries_are_immutable(self, model):
        base = model.passage("on == 2", "off == 2")
        with_grid = base.density([1.0, 2.0])
        assert base.t_points is None
        assert with_grid.t_points == (1.0, 2.0)
        with_cdf = with_grid.cdf()
        assert not with_grid.include_cdf and with_cdf.include_cdf
        with_q = with_cdf.quantile(0.9)
        assert with_cdf.quantiles == () and with_q.quantiles == (0.9,)

    def test_run_without_t_points(self, model):
        with pytest.raises(PlanError, match="t-points"):
            model.passage("on == 2", "off == 2").run()

    def test_bad_grid_rejected(self, model):
        q = model.passage("on == 2", "off == 2")
        with pytest.raises(PlanError):
            q.density([])
        with pytest.raises(PlanError):
            q.density([-1.0])
        with pytest.raises(PlanError):
            q.density([float("inf")])

    def test_bad_solver_and_inversion(self, model):
        q = model.passage("on == 2", "off == 2").density([1.0])
        with pytest.raises(PlanError, match="gauss"):
            q.with_solver("gauss")
        with pytest.raises(PlanError, match="talbot"):
            q.with_inversion("talbot")
        with pytest.raises(PlanError, match="eular_terms"):
            q.with_inversion("euler", eular_terms=5)

    def test_bad_quantile(self, model):
        q = model.passage("on == 2", "off == 2")
        with pytest.raises(PlanError):
            q.quantile(0.0)
        with pytest.raises(PlanError):
            q.quantile(1.5)

    def test_unsatisfied_predicate(self, model):
        q = model.passage("on == 2", "off == 99").density([1.0])
        with pytest.raises(PredicateError, match="target predicate"):
            q.run()


class TestQueryPlan:
    def test_euler_grid_size(self, model):
        plan = model.passage("on == 2", "off == 2").density([1.0, 2.0, 4.0]).plan()
        # 33 evaluations per t-point with the default Euler parameters.
        assert plan.required_s_points.size == 99
        assert plan.n_evaluations == 99  # upper half plane: nothing to fold
        assert plan.describe()["inversion"] == "euler"

    def test_laguerre_grid_is_t_independent_and_folds(self, model):
        query = model.passage("on == 2", "off == 2").with_inversion("laguerre", n_points=64)
        one = query.density([1.0]).plan()
        many = query.density([1.0, 5.0, 9.0]).plan()
        assert one.n_evaluations == many.n_evaluations
        assert many.conjugates_folded > 0

    def test_plan_happens_without_building_the_model(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        model.passage("on == 2", "off == 2").density([1.0]).plan()
        assert not model.built


class TestEngineRegistry:
    def test_known_engines(self):
        assert {"inline", "multiprocessing", "distributed", "remote"} <= set(
            available_engines()
        )

    def test_unknown_engine_lists_the_valid_set(self, model):
        q = model.passage("on == 2", "off == 2").density([1.0])
        with pytest.raises(EngineError, match="inline"):
            q.run(engine="warpdrive")

    def test_engine_instance_passthrough(self, model):
        engine = InlineEngine()
        assert get_engine(engine) is engine
        with pytest.raises(EngineError):
            get_engine(engine, processes=2)

    def test_bad_engine_options(self, model):
        with pytest.raises(EngineError, match="inline"):
            get_engine("inline", bogus=True)

    def test_custom_engine_registration(self, model):
        class EchoEngine(InlineEngine):
            name = "echo-test"

        register_engine("echo-test", EchoEngine, replace=True)
        result = model.passage("on == 2", "off == 2").density([1.0]).run("echo-test")
        assert result.statistics["engine"] == "echo-test"


class TestSimulationQuery:
    def test_simulation_runs_without_state_space(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        result = (
            model.simulate("off == 2", replications=500, seed=7)
            .with_t_points([1.0, 2.0, 4.0])
            .run()
        )
        assert result.n_replications == 500
        assert 0.0 < result.mean()
        assert result.cdf is not None and np.all(np.diff(result.cdf) >= 0)
        assert not model.built  # simulation never explored the state space

    def test_simulation_rejects_other_engines(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        with pytest.raises(EngineError, match="inline"):
            model.simulate("off == 2").run(engine="remote")

    def test_seeded_simulation_is_reproducible(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        a = model.simulate("off == 2", replications=200, seed=11).run()
        b = model.simulate("off == 2", replications=200, seed=11).run()
        assert np.array_equal(a.samples, b.samples)
