"""Tests of the :class:`repro.api.Model` facade."""
from __future__ import annotations

import pytest

from repro.api import Model, ModelError, PredicateError
from repro.service.registry import ModelRegistry


class TestConstruction:
    def test_from_spec_is_lazy(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        assert not model.built
        # Digest, constants and the net are available without a build.
        assert model.digest
        assert model.constants == {"K": 2.0}
        assert set(model.net.places) == {"on", "off"}
        assert not model.built
        assert model.n_states == 3
        assert model.built

    def test_from_file(self, onoff_spec, tmp_path):
        path = tmp_path / "onoff.dnamaca"
        path.write_text(onoff_spec)
        model = Model.from_file(path, registry=ModelRegistry())
        assert model.name == "onoff"
        assert model.n_states == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError, match="cannot read"):
            Model.from_file(tmp_path / "nope.dnamaca")

    def test_empty_spec_rejected(self):
        with pytest.raises(ModelError):
            Model.from_spec("   ")
        with pytest.raises(ModelError):
            Model(spec_text=None, digest=None)

    def test_invalid_spec_fails_at_build_not_construction(self):
        model = Model.from_spec(r"\model{ broken", registry=ModelRegistry())
        with pytest.raises(ModelError, match="cannot build model"):
            _ = model.entry


class TestContentAddressing:
    def test_same_spec_builds_once(self, onoff_spec):
        registry = ModelRegistry()
        a = Model.from_spec(onoff_spec, registry=registry)
        b = Model.from_spec(onoff_spec, registry=registry)
        assert a.entry is b.entry
        assert registry.models_built == 1
        assert a.digest == b.digest

    def test_overrides_change_the_digest_and_the_build(self, onoff_spec):
        registry = ModelRegistry()
        base = Model.from_spec(onoff_spec, registry=registry)
        bigger = Model.from_spec(onoff_spec, overrides={"K": 4}, registry=registry)
        assert base.digest != bigger.digest
        assert base.n_states == 3
        assert bigger.n_states == 5

    def test_cli_style_overrides(self, onoff_spec):
        model = Model.from_spec(onoff_spec, overrides=["K=4"], registry=ModelRegistry())
        assert model.overrides == {"K": 4.0}
        assert model.constants["K"] == 4.0

    def test_bad_overrides_rejected_eagerly(self, onoff_spec):
        with pytest.raises(ModelError, match="K:4"):
            Model.from_spec(onoff_spec, overrides=["K:4"])


class TestRemoteReference:
    def test_from_digest_cannot_build_locally(self):
        model = Model.from_digest("0123abcd")
        assert model.is_remote_reference
        assert model.reference() == {"model": "0123abcd"}
        with pytest.raises(ModelError, match="remote"):
            _ = model.entry

    def test_spec_reference_carries_overrides_and_cap(self, onoff_spec):
        model = Model.from_spec(onoff_spec, overrides={"K": 4}, max_states=100)
        ref = model.reference()
        assert ref["spec"] == onoff_spec
        assert ref["overrides"] == {"K": 4.0}
        assert ref["max_states"] == 100


class TestStatesAndPredicates:
    def test_states_and_predicate(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        assert len(model.states("on == 2")) == 1
        assert len(model.states("on >= 0")) == 3
        with pytest.raises(PredicateError):
            model.states("unknown_place > 0")

    def test_describe(self, onoff_spec):
        model = Model.from_spec(onoff_spec, registry=ModelRegistry())
        info = model.describe()
        assert info["states"] == 3
        assert info["constants"] == {"K": 2.0}
