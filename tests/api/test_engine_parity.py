"""Engine parity: one query object, four engines, identical results.

The contract of the api facade is that the execution engine is a pure
deployment choice — the numbers must not depend on it.  The same
voting-model query object is run through the inline, multiprocessing,
distributed and remote (live server) engines and the results are required
to agree within 1e-10 (in practice they are bit-identical, because every
path evaluates the same exact s-points and caches by canonical key).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.api import DistributedEngine, Model
from repro.core.results import PassageTimeResult, TransientResult

T_POINTS = [5.0, 10.0, 20.0]
PARITY = dict(rtol=0.0, atol=1e-10)


@pytest.fixture(scope="module")
def passage_query(voting_spec):
    model = Model.from_spec(voting_spec, name="voting-tiny")
    return (
        model.passage("p1 == CC", "p2 == CC")
        .density(T_POINTS)
        .cdf()
        .quantile(0.9)
    )


@pytest.fixture(scope="module")
def inline_result(passage_query):
    return passage_query.run(engine="inline")


class TestPassageParity:
    def test_inline_shape(self, inline_result):
        assert isinstance(inline_result, PassageTimeResult)
        assert inline_result.density.shape == (3,)
        assert inline_result.cdf.shape == (3,)
        assert 0.9 in inline_result.quantiles
        assert inline_result.statistics["engine"] == "inline"

    def test_multiprocessing_matches_inline(self, passage_query, inline_result):
        result = passage_query.run(engine="multiprocessing", processes=2)
        assert isinstance(result, PassageTimeResult)
        np.testing.assert_allclose(result.density, inline_result.density, **PARITY)
        np.testing.assert_allclose(result.cdf, inline_result.cdf, **PARITY)
        assert result.quantiles[0.9] == pytest.approx(
            inline_result.quantiles[0.9], abs=1e-10
        )

    def test_remote_matches_inline(self, passage_query, inline_result, server_url):
        result = passage_query.run(engine="remote", url=server_url)
        assert isinstance(result, PassageTimeResult)
        np.testing.assert_allclose(result.density, inline_result.density, **PARITY)
        np.testing.assert_allclose(result.cdf, inline_result.cdf, **PARITY)
        assert result.quantiles[0.9] == pytest.approx(
            inline_result.quantiles[0.9], abs=1e-10
        )
        # And again against the server's warm cache.
        warm = passage_query.run(engine="remote", url=server_url)
        np.testing.assert_allclose(warm.density, inline_result.density, **PARITY)
        assert warm.statistics["s_points_computed"] == 0

    def test_distributed_matches_inline(self, passage_query, inline_result, tmp_path):
        engine = DistributedEngine(checkpoint=str(tmp_path / "ckpt"))
        result = passage_query.run(engine)
        np.testing.assert_allclose(result.density, inline_result.density, **PARITY)
        np.testing.assert_allclose(result.cdf, inline_result.cdf, **PARITY)
        assert result.quantiles[0.9] == pytest.approx(
            inline_result.quantiles[0.9], abs=1e-10
        )
        # A resumed run answers the main grid from the checkpoint.
        resumed = passage_query.run(DistributedEngine(checkpoint=str(tmp_path / "ckpt")))
        np.testing.assert_allclose(resumed.density, inline_result.density, **PARITY)
        assert resumed.statistics["s_points_computed"] == 0


class TestTransientParity:
    @pytest.fixture(scope="class")
    def transient_query(self, voting_spec):
        model = Model.from_spec(voting_spec)
        return model.transient("p1 == CC", "p2 >= 1").probability([1.0, 5.0, 25.0])

    def test_remote_matches_inline(self, transient_query, server_url):
        inline = transient_query.run()
        remote = transient_query.run(engine="remote", url=server_url)
        assert isinstance(inline, TransientResult)
        np.testing.assert_allclose(remote.probability, inline.probability, **PARITY)
        assert remote.steady_state == pytest.approx(inline.steady_state, abs=1e-10)

    def test_distributed_matches_inline(self, transient_query):
        inline = transient_query.run()
        dist = transient_query.run(engine="distributed")
        np.testing.assert_allclose(dist.probability, inline.probability, **PARITY)
        assert dist.steady_state == pytest.approx(inline.steady_state, abs=1e-10)


class TestLaguerreParity:
    def test_laguerre_inline_vs_remote(self, voting_spec, server_url):
        query = (
            Model.from_spec(voting_spec)
            .passage("p1 == CC", "p2 == CC")
            .density(T_POINTS)
            .with_inversion("laguerre")
        )
        inline = query.run()
        remote = query.run(engine="remote", url=server_url)
        np.testing.assert_allclose(remote.density, inline.density, **PARITY)
