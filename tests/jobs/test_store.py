"""Unit tests for the append-only job store and its backends."""
from __future__ import annotations

import threading

import pytest

from repro.jobs import (
    JobStore,
    JobStoreError,
    MemoryBackend,
    SqliteBackend,
    open_backend,
)


def _submit(store, tenant="default", kind="passage"):
    return store.create(
        tenant=tenant, kind=kind,
        request={"spec": "x", "source": "a", "target": "b", "t_points": [1.0]},
        model="digest0",
    )


class TestLifecycle:
    def test_create_starts_queued(self):
        store = JobStore()
        record = _submit(store)
        assert record.state == "queued"
        assert record.job_id
        assert record.created_at > 0
        assert store.get(record.job_id) is record

    def test_full_happy_path(self):
        store = JobStore()
        record = _submit(store)
        record = store.transition(record.job_id, "running")
        assert record.state == "running"
        assert record.started_at is not None
        assert record.attempts == 1
        record = store.transition(record.job_id, "done", result={"density": [1.0]})
        assert record.state == "done"
        assert record.finished_at is not None
        assert record.result == {"density": [1.0]}

    def test_failed_records_error(self):
        store = JobStore()
        record = _submit(store)
        store.transition(record.job_id, "running")
        record = store.transition(record.job_id, "failed", error="boom")
        assert record.state == "failed"
        assert record.error == "boom"
        assert record.view()["error"] == "boom"

    def test_illegal_transitions_raise(self):
        store = JobStore()
        record = _submit(store)
        with pytest.raises(JobStoreError):
            store.transition(record.job_id, "done")  # queued cannot finish
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done")
        with pytest.raises(JobStoreError):
            store.transition(record.job_id, "running")  # terminal is final

    def test_unknown_job_raises(self):
        store = JobStore()
        with pytest.raises(JobStoreError):
            store.transition("nope", "running")

    def test_cancel_queued_is_immediate(self):
        store = JobStore()
        record = _submit(store)
        record = store.request_cancel(record.job_id)
        assert record.state == "cancelled"

    def test_cancel_running_sets_flag(self):
        store = JobStore()
        record = _submit(store)
        store.transition(record.job_id, "running")
        record = store.request_cancel(record.job_id)
        assert record.state == "running"
        assert record.cancel_requested
        assert store.cancel_requested(record.job_id)
        record = store.transition(record.job_id, "cancelled")
        assert not record.cancel_requested

    def test_cancel_terminal_is_noop(self):
        store = JobStore()
        record = _submit(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done", result={})
        record = store.request_cancel(record.job_id)
        assert record.state == "done"

    def test_view_hides_result_on_request(self):
        store = JobStore()
        record = _submit(store)
        store.transition(record.job_id, "running")
        record = store.transition(record.job_id, "done", result={"x": 1})
        assert record.view()["result"] == {"x": 1}
        summary = record.view(include_result=False)
        assert "result" not in summary
        assert summary["has_result"]


class TestQueueSemantics:
    def test_fifo_dispatch(self):
        clock = iter(range(100)).__next__
        store = JobStore(clock=lambda: float(clock()))
        first = _submit(store)
        _submit(store)
        assert store.next_queued().job_id == first.job_id

    def test_list_is_tenant_scoped_and_newest_first(self):
        clock = iter(range(100)).__next__
        store = JobStore(clock=lambda: float(clock()))
        a1 = _submit(store, tenant="a")
        b1 = _submit(store, tenant="b")
        a2 = _submit(store, tenant="a")
        assert [r.job_id for r in store.list("a")] == [a2.job_id, a1.job_id]
        assert [r.job_id for r in store.list("b")] == [b1.job_id]
        assert len(store.list()) == 3

    def test_active_count(self):
        store = JobStore()
        r1 = _submit(store, tenant="a")
        _submit(store, tenant="a")
        assert store.active_count("a") == 2
        store.transition(r1.job_id, "running")
        assert store.active_count("a") == 2  # running still counts
        store.transition(r1.job_id, "done", result={})
        assert store.active_count("a") == 1
        assert store.active_count("b") == 0


class TestProgressAndPlan:
    def test_annotations_fold_into_view(self):
        store = JobStore()
        record = _submit(store)
        store.transition(record.job_id, "running")
        store.annotate_plan(record.job_id, {"n_blocks": 4})
        store.progress(record.job_id, {"blocks_done": 1})
        store.progress(record.job_id, {"blocks_done": 2})
        view = store.get(record.job_id).view()
        assert view["plan"] == {"n_blocks": 4}
        assert view["progress"] == {"blocks_done": 2}  # last snapshot wins

    def test_requeue_clears_progress(self):
        store = JobStore()
        record = _submit(store)
        store.transition(record.job_id, "running")
        store.progress(record.job_id, {"blocks_done": 2})
        record = store.transition(record.job_id, "queued")
        assert record.progress == {}
        assert record.started_at is None
        assert record.attempts == 1  # attempts survive the re-queue


class TestReplayAndRecovery:
    def test_memory_backend_replays_within_process(self):
        backend = MemoryBackend()
        store = JobStore(backend)
        record = _submit(store)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done", result={"d": [0.5]})
        replayed = JobStore(backend)
        again = replayed.get(record.job_id)
        assert again.state == "done"
        assert again.result == {"d": [0.5]}

    def test_running_jobs_requeue_on_restart(self):
        backend = MemoryBackend()
        store = JobStore(backend)
        record = _submit(store)
        store.transition(record.job_id, "running")
        restarted = JobStore(backend)
        assert restarted.recovered == [record.job_id]
        again = restarted.get(record.job_id)
        assert again.state == "queued"
        assert again.attempts == 1

    def test_running_with_pending_cancel_cancels_on_restart(self):
        backend = MemoryBackend()
        store = JobStore(backend)
        record = _submit(store)
        store.transition(record.job_id, "running")
        store.request_cancel(record.job_id)
        restarted = JobStore(backend)
        assert restarted.get(record.job_id).state == "cancelled"

    def test_sqlite_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        store = JobStore(SqliteBackend(path))
        record = _submit(store, tenant="t1")
        store.transition(record.job_id, "running")
        store.annotate_plan(record.job_id, {"n_blocks": 3})
        store.progress(record.job_id, {"blocks_done": 1})
        store.transition(record.job_id, "done", result={"density": [1, 2]})
        store.close()

        reopened = JobStore(SqliteBackend(path))
        again = reopened.get(record.job_id)
        assert again.state == "done"
        assert again.tenant == "t1"
        assert again.result == {"density": [1, 2]}
        assert again.plan == {"n_blocks": 3}
        reopened.close()

    def test_stats_shape(self):
        store = JobStore()
        record = _submit(store)
        store.request_cancel(record.job_id)
        stats = store.stats()
        assert stats["backend"] == "memory"
        assert stats["durable"] is False
        assert stats["by_state"] == {"cancelled": 1}


class TestOpenBackend:
    def test_auto_without_checkpoint_is_memory(self):
        assert open_backend("auto").name == "memory"

    def test_auto_with_checkpoint_is_sqlite(self, tmp_path):
        backend = open_backend("auto", checkpoint_dir=tmp_path)
        assert backend.name == "sqlite"
        assert backend.path == tmp_path / "jobs.sqlite"
        backend.close()

    def test_sqlite_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            open_backend("sqlite")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown job store"):
            open_backend("postgres")


class TestConcurrency:
    def test_concurrent_creates_are_all_recorded(self):
        store = JobStore()
        errors: list[Exception] = []

        def submit_many():
            try:
                for _ in range(25):
                    _submit(store)
            except Exception as exc:  # pragma: no cover - failure aid
                errors.append(exc)

        threads = [threading.Thread(target=submit_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store.list()) == 100

    def test_cancel_vs_claim_race_is_consistent(self):
        # A queued job cancelled while the runner claims it must end up
        # exactly one of cancelled/running — never both transitions applied.
        for _ in range(50):
            store = JobStore()
            record = _submit(store)
            outcomes: list[str] = []

            def claim():
                try:
                    store.transition(record.job_id, "running")
                    outcomes.append("claimed")
                except JobStoreError:
                    outcomes.append("lost")

            def cancel():
                view = store.request_cancel(record.job_id)
                outcomes.append(view.state)

            t1 = threading.Thread(target=claim)
            t2 = threading.Thread(target=cancel)
            t1.start(); t2.start(); t1.join(); t2.join()
            state = store.get(record.job_id).state
            if "claimed" in outcomes:
                assert state in ("running",)  # cancel flagged, not applied
            else:
                assert state == "cancelled"
