"""Tests for the async job subsystem (repro.jobs)."""
