"""Unit tests for tenant validation, quotas and rate limiting."""
from __future__ import annotations

import pytest

from repro.jobs import (
    DEFAULT_TENANT,
    QuotaError,
    TenancyManager,
    TenantError,
    TenantQuotas,
    TokenBucket,
    validate_tenant,
)


class TestValidateTenant:
    def test_none_and_empty_mean_default(self):
        assert validate_tenant(None) == DEFAULT_TENANT
        assert validate_tenant("") == DEFAULT_TENANT
        assert validate_tenant("   ") == DEFAULT_TENANT

    def test_valid_names_pass_through(self):
        for name in ("a", "team-a", "org.unit_7", "0zero", "x" * 64):
            assert validate_tenant(name) == name

    def test_invalid_names_raise(self):
        for name in ("-leading", ".dot", "has space", "semi;colon",
                     "x" * 65, "ünïcode", "a/b"):
            with pytest.raises(TenantError):
                validate_tenant(name)


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)
        now[0] += 1.0  # one token refilled
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: now[0])
        now[0] += 100.0
        for _ in range(3):
            assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTenancyManager:
    def test_no_rate_limit_admits_everything(self):
        manager = TenancyManager(TenantQuotas(rate_per_second=None))
        for _ in range(1000):
            manager.admit("a")

    def test_rate_limit_is_per_tenant(self):
        now = [0.0]
        manager = TenancyManager(
            TenantQuotas(rate_per_second=1.0, burst=1.0), clock=lambda: now[0]
        )
        manager.admit("a")
        with pytest.raises(QuotaError) as excinfo:
            manager.admit("a")
        assert excinfo.value.quota == "rate"
        assert excinfo.value.tenant == "a"
        assert excinfo.value.retry_after is not None
        manager.admit("b")  # an exhausted tenant never throttles another

    def test_active_jobs_quota(self):
        manager = TenancyManager(TenantQuotas(max_active_jobs=2))
        manager.check_active_jobs("a", 0)
        manager.check_active_jobs("a", 1)
        with pytest.raises(QuotaError) as excinfo:
            manager.check_active_jobs("a", 2)
        assert excinfo.value.quota == "active_jobs"
        assert excinfo.value.limit == 2

    def test_model_quota(self):
        manager = TenancyManager(TenantQuotas(max_models=1))
        manager.check_models("a", 0)
        with pytest.raises(QuotaError) as excinfo:
            manager.check_models("a", 1)
        assert excinfo.value.quota == "models"

    def test_disabled_quotas_never_raise(self):
        manager = TenancyManager(
            TenantQuotas(max_active_jobs=None, max_models=None)
        )
        manager.check_active_jobs("a", 10**6)
        manager.check_models("a", 10**6)

    def test_stats_shape(self):
        manager = TenancyManager(TenantQuotas(rate_per_second=5.0))
        manager.admit("a")
        stats = manager.stats()
        assert stats["rate_per_second"] == 5.0
        assert stats["rate_limited_tenants"] == ["a"]
