"""Crash-loop detection in restart recovery.

Re-queueing a ``running`` job after a restart is the right default — unless
every execution of that job is what killed the process.  After
``max_attempts`` executions died mid-run, recovery must fail the job with a
structured ``crash_loop`` error instead of taking the next server down too.
"""
from __future__ import annotations

import pytest

from repro.jobs.store import JobStore, MemoryBackend


def test_crash_looping_job_fails_after_max_attempts():
    backend = MemoryBackend()
    store = JobStore(backend, max_attempts=2)
    job_id = store.create(kind="passage", request={}, model="m1").job_id
    store.transition(job_id, "running")  # life 1 dies here

    # life 2: recovery re-queues (1 attempt < 2) and the job dies again
    store = JobStore(backend, max_attempts=2)
    assert store.recovered == [job_id]
    record = store.get(job_id)
    assert record.state == "queued"
    assert record.attempts == 1
    store.transition(job_id, "running")  # life 2 dies here too

    # life 3: two executions died mid-run — the loop is broken, not resumed
    store = JobStore(backend, max_attempts=2)
    assert store.recovered == [job_id]
    record = store.get(job_id)
    assert record.state == "failed"
    assert record.error_code == "crash_loop"
    assert "crash loop: 2 execution(s)" in record.error
    view = record.view()
    assert view["error_code"] == "crash_loop"
    assert view["state"] == "failed"

    # the failure is terminal: yet another restart does not resurrect it
    store = JobStore(backend, max_attempts=2)
    assert store.recovered == []
    assert store.get(job_id).state == "failed"


def test_below_the_threshold_jobs_keep_being_requeued():
    backend = MemoryBackend()
    store = JobStore(backend, max_attempts=5)
    job_id = store.create(kind="passage", request={}, model="m1").job_id
    for expected_attempts in range(1, 5):
        store.transition(job_id, "running")
        store = JobStore(backend, max_attempts=5)
        record = store.get(job_id)
        assert record.attempts == expected_attempts
        if expected_attempts < 5:
            assert record.state == "queued"


def test_pending_cancellation_beats_the_crash_loop_verdict():
    backend = MemoryBackend()
    store = JobStore(backend, max_attempts=1)
    job_id = store.create(kind="passage", request={}, model="m1").job_id
    store.transition(job_id, "running")
    store.request_cancel(job_id)

    store = JobStore(backend, max_attempts=1)
    record = store.get(job_id)
    assert record.state == "cancelled"
    assert record.error_code is None


def test_max_attempts_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        JobStore(MemoryBackend(), max_attempts=0)
