"""Tests of the top-level public API surface."""
from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_quickstart_works(self):
        from repro import PassageTimeSolver, SMPBuilder
        from repro.distributions import Erlang, Uniform

        builder = SMPBuilder()
        builder.add_transition("working", "broken", 1.0, Erlang(2.0, 3))
        builder.add_transition("broken", "working", 1.0, Uniform(1.0, 2.0))
        kernel = builder.build()
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
        density = solver.density(np.linspace(0.1, 6.0, 10))
        assert np.all(density >= -1e-9)
        p99 = solver.quantile(0.99, 0.1, 20.0)
        assert Erlang(2.0, 3).cdf(p99) == pytest.approx(0.99, abs=1e-4)

    def test_subpackages_importable(self):
        import repro.core
        import repro.distributed
        import repro.distributions
        import repro.dnamaca
        import repro.laplace
        import repro.models
        import repro.partition
        import repro.petri
        import repro.simulation
        import repro.smp
        import repro.utils

        assert repro.core and repro.utils
