"""Metric types, registry snapshot/diff/absorb, exposition, worker stats."""
from __future__ import annotations

import pytest

from repro.obs.metrics import (
    ITERATIONS_BUCKETS,
    MetricsRegistry,
    effective_cores,
    merge_worker_stats,
    note_solve_block,
    record_worker_block,
    worker_stats_snapshot,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestMetricTypes:
    def test_counter_sums_and_rejects_negative(self, registry):
        c = registry.counter("hits", "hit count")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc(0.5)
        assert g.value() == 3.5

    def test_labels_partition_series(self, registry):
        c = registry.counter("reqs", labelnames=("path",))
        c.inc(path="/a")
        c.inc(2, path="/b")
        assert c.value(path="/a") == 1
        assert c.value(path="/b") == 2

    def test_wrong_label_set_raises(self, registry):
        c = registry.counter("reqs", labelnames=("path",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(verb="GET")

    def test_histogram_cumulative_buckets(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot_of()
        assert snap["buckets"] == [1, 2, 1, 1]  # per-bucket, +Inf last
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_registry_get_or_create_is_idempotent(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_label_mismatch_raises(self, registry):
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x", labelnames=("b",))

    def test_effective_cores_positive(self):
        assert effective_cores() >= 1


class TestSnapshotDiffAbsorb:
    def test_diff_subtracts_counters_and_histograms(self, registry):
        registry.counter("c").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        before = registry.snapshot()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(5.0)
        registry.gauge("g").set(7)
        delta = registry.diff(before)
        assert delta["c"]["values"]["[]"] == 2
        assert delta["h"]["values"]["[]"]["count"] == 1
        assert delta["h"]["values"]["[]"]["buckets"] == [0, 1]
        assert delta["g"]["values"]["[]"] == 7

    def test_unchanged_series_are_dropped_from_diff(self, registry):
        registry.counter("c").inc(3)
        before = registry.snapshot()
        assert registry.diff(before) == {}

    def test_absorb_round_trip(self, registry):
        worker = MetricsRegistry()
        worker.counter("pts", "points", ("engine",)).inc(4, engine="batch")
        worker.histogram("sec", buckets=(1.0, 10.0)).observe(2.0)
        worker.gauge("busy").set(0.5)
        registry.counter("pts", "points", ("engine",)).inc(1, engine="batch")
        registry.absorb(worker.diff({}))
        assert registry.get("pts").value(engine="batch") == 5
        assert registry.get("sec").snapshot_of()["count"] == 1
        assert registry.get("busy").value() == 0.5

    def test_absorb_rejects_bucket_layout_mismatch(self, registry):
        other = MetricsRegistry()
        other.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket layout"):
            registry.absorb(other.snapshot())

    def test_absorb_none_is_noop(self, registry):
        registry.absorb(None)
        assert registry.snapshot() == {}


class TestPrometheusExposition:
    def test_render_counter_and_gauge(self, registry):
        registry.counter("repro_points_total", "points").inc(42)
        registry.gauge("repro_depth", "depth", ("q",)).set(1.5, q="main")
        text = registry.render_prometheus()
        assert "# HELP repro_points_total points\n" in text
        assert "# TYPE repro_points_total counter\n" in text
        assert "repro_points_total 42\n" in text
        assert 'repro_depth{q="main"} 1.5\n' in text

    def test_render_histogram_cumulative(self, registry):
        h = registry.histogram("repro_sec", "seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = registry.render_prometheus()
        assert 'repro_sec_bucket{le="0.1"} 1\n' in text
        assert 'repro_sec_bucket{le="1.0"} 2\n' in text
        assert 'repro_sec_bucket{le="+Inf"} 3\n' in text
        assert "repro_sec_sum 5.55" in text
        assert "repro_sec_count 3\n" in text

    def test_label_values_are_escaped(self, registry):
        registry.counter("c", labelnames=("p",)).inc(p='he said "hi"\n')
        text = registry.render_prometheus()
        assert r'p="he said \"hi\"\n"' in text


class TestWorkerStatsPath:
    def test_merge_worker_stats_sums_and_adds(self):
        into = {"9001": {"blocks": 1, "points": 4, "busy_seconds": 0.5}}
        merge_worker_stats(into, {
            "9001": {"blocks": 2, "points": 8, "busy_seconds": 0.25},
            "9002": {"blocks": 1, "points": 4, "busy_seconds": 0.125},
        })
        assert into["9001"] == {"blocks": 3, "points": 12, "busy_seconds": 0.75}
        assert into["9002"]["points"] == 4

    def test_merge_none_is_noop(self):
        into = {}
        assert merge_worker_stats(into, None) is into
        assert into == {}

    def test_record_and_snapshot_round_trip(self, registry):
        record_worker_block(9001, 4, 0.5, registry=registry)
        record_worker_block(9001, 4, 0.25, registry=registry)
        record_worker_block(9002, 8, 0.125, registry=registry)
        snap = worker_stats_snapshot(registry=registry)
        assert snap["9001"] == {"blocks": 2, "points": 8, "busy_seconds": 0.75}
        assert snap["9002"] == {"blocks": 1, "points": 8, "busy_seconds": 0.125}

    def test_snapshot_of_empty_registry(self, registry):
        assert worker_stats_snapshot(registry=registry) == {}


class TestNoteSolveBlock:
    def test_core_counters(self, registry):
        note_solve_block(
            points=4, seconds=0.2, iterations=120, direct_solves=1,
            unconverged=2, iteration_counts=[10, 30, 40, 40],
            engine="batch", registry=registry,
        )
        assert registry.get("repro_points_evaluated_total").value() == 4
        assert registry.get("repro_solve_iterations_total").value() == 120
        assert registry.get("repro_direct_solves_total").value() == 1
        assert registry.get("repro_unconverged_points_total").value() == 2
        assert registry.get("repro_block_seconds").snapshot_of()["count"] == 1
        assert registry.get("repro_solve_blocks_total").value(engine="batch") == 1
        iters = registry.get("repro_iterations_per_s_point")
        assert iters.bounds == tuple(ITERATIONS_BUCKETS)
        assert iters.snapshot_of()["count"] == 4

    def test_optional_series_stay_absent(self, registry):
        note_solve_block(points=2, seconds=0.1, registry=registry)
        assert registry.get("repro_direct_solves_total") is None
        assert registry.get("repro_unconverged_points_total") is None
