"""Span recording, parent links, cross-process transfer and export."""
from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import Span, Tracer, get_tracer, span


@pytest.fixture
def tracer() -> Tracer:
    return Tracer().enable()


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_noop(self):
        t = Tracer()
        a = t.span("anything", key=1)
        b = t.span("else")
        assert a is b  # one singleton, no allocation per call
        with a as live:
            assert live is a
        assert t.spans() == []

    def test_noop_set_chains(self):
        t = Tracer()
        s = t.span("x")
        assert s.set(foo=1) is s

    def test_module_tracer_is_disabled_by_default(self):
        assert get_tracer().enabled is False
        with span("never-recorded"):
            pass
        assert all(
            r["name"] != "never-recorded" for r in get_tracer().spans()
        )


class TestRecording:
    def test_records_timing_and_attributes(self, tracer):
        with tracer.span("solve", points=4) as s:
            s.set(engine="batch")
        (record,) = tracer.spans()
        assert record["name"] == "solve"
        assert record["attributes"] == {"points": 4, "engine": "batch"}
        assert record["duration"] >= 0.0
        assert record["cpu"] >= 0.0
        assert record["pid"] == os.getpid()
        assert record["parent"] is None
        assert isinstance(Span(tracer, "x", {}), Span)

    def test_nested_spans_link_to_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_sibling_spans_share_a_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.spans()
        assert a["parent"] == root["id"]
        assert b["parent"] == root["id"]

    def test_exception_is_recorded_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("explode"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert "ValueError" in record["attributes"]["error"]

    def test_threads_keep_separate_stacks(self, tracer):
        def worker():
            with tracer.span("thread-span"):
                pass

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        thread_record = next(
            r for r in tracer.spans() if r["name"] == "thread-span"
        )
        # the other thread's span must NOT parent under main's open span
        assert thread_record["parent"] is None


class TestTransfer:
    def test_drain_empties_and_absorb_merges(self, tracer):
        with tracer.span("shipped"):
            pass
        shipped = tracer.drain()
        assert tracer.spans() == []
        other = Tracer().enable()
        with other.span("local"):
            pass
        other.absorb(shipped)
        names = {r["name"] for r in other.spans()}
        assert names == {"local", "shipped"}

    def test_absorb_none_is_noop(self, tracer):
        tracer.absorb(None)
        tracer.absorb([])
        assert tracer.spans() == []

    def test_clear(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestExport:
    def test_to_json_round_trips(self, tracer):
        with tracer.span("a", n=1):
            pass
        records = json.loads(tracer.to_json())
        assert records[0]["name"] == "a"

    def test_chrome_trace_events(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner", points=3):
                pass
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        inner = by_name["inner"]
        assert inner["ph"] == "X"
        assert inner["cat"] == "repro"
        assert inner["dur"] > 0  # zero-length spans still render
        assert inner["args"]["points"] == 3
        assert inner["args"]["parent"] == by_name["outer"]["id"]

    def test_write_chrome_trace(self, tracer, tmp_path):
        with tracer.span("one"):
            pass
        path = tmp_path / "trace.json"
        assert tracer.write_chrome_trace(path) == 1
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 1
