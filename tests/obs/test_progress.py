"""Progress reporters, the service progress board, and the stderr line."""
from __future__ import annotations

import io

from repro.obs import ProgressBoard, ProgressReporter, stderr_renderer


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestProgressReporter:
    def test_snapshot_rates_and_eta(self):
        clock = FakeClock()
        reporter = ProgressReporter("solve", clock=clock)
        reporter.add_total(4, points=40)
        clock.now += 2.0
        reporter.advance(1, points=10)
        snap = reporter.snapshot()
        assert snap["blocks_done"] == 1
        assert snap["blocks_total"] == 4
        assert snap["points_done"] == 10
        assert snap["points_total"] == 40
        assert snap["elapsed_seconds"] == 2.0
        assert snap["points_per_second"] == 5.0
        assert snap["eta_seconds"] == 6.0  # 30 remaining at 5/s
        assert snap["finished"] is False

    def test_eta_unknown_before_any_progress(self):
        reporter = ProgressReporter(clock=FakeClock())
        reporter.add_total(2, points=10)
        assert reporter.snapshot()["eta_seconds"] is None

    def test_totals_are_additive(self):
        reporter = ProgressReporter(clock=FakeClock())
        reporter.add_total(2, points=10)
        reporter.add_total(3, points=15)
        snap = reporter.snapshot()
        assert snap["blocks_total"] == 5
        assert snap["points_total"] == 25

    def test_finish_freezes_elapsed(self):
        clock = FakeClock()
        reporter = ProgressReporter(clock=clock)
        reporter.add_total(1, points=5)
        clock.now += 1.0
        reporter.advance(1, points=5)
        reporter.finish()
        clock.now += 100.0
        snap = reporter.snapshot()
        assert snap["finished"] is True
        assert snap["elapsed_seconds"] == 1.0
        assert snap["eta_seconds"] == 0.0

    def test_listeners_get_every_emit_and_final_flag(self):
        seen = []
        reporter = ProgressReporter(clock=FakeClock())
        assert reporter.subscribe(lambda s, final: seen.append(final)) is reporter
        reporter.add_total(1, points=2)
        reporter.advance(1, points=2)
        reporter.finish()
        assert seen == [False, False, True]

    def test_broken_listener_does_not_break_the_solve(self):
        reporter = ProgressReporter(clock=FakeClock())

        def bad(snap, final):
            raise RuntimeError("listener bug")

        reporter.subscribe(bad)
        reporter.advance(1)  # must not raise


class TestProgressBoard:
    def test_active_then_recent(self):
        board = ProgressBoard()
        reporter = board.start("abc123", label="passage")
        reporter.add_total(2, points=8)
        view = board.view("abc123")
        assert view["digest"] == "abc123"
        assert len(view["active"]) == 1
        assert view["active"][0]["label"] == "passage"
        assert view["recent"] == []

        board.done("abc123", reporter)
        view = board.view("abc123")
        assert view["active"] == []
        assert len(view["recent"]) == 1
        assert view["recent"][0]["finished"] is True

    def test_views_are_per_digest(self):
        board = ProgressBoard()
        board.start("aaa")
        assert board.view("bbb") == {"digest": "bbb", "active": [], "recent": []}

    def test_finished_history_is_bounded(self):
        board = ProgressBoard(keep_finished=2)
        for i in range(4):
            board.done("d", board.start("d", label=str(i)))
        assert len(board._finished) == 2
        labels = [s["label"] for s in board.view("d")["recent"]]
        assert labels == ["2", "3"]

    def test_overview_lists_active_and_recent(self):
        board = ProgressBoard()
        board.start("live")
        board.done("old", board.start("old"))
        overview = board.overview()
        assert "live" in overview["active"]
        assert overview["recent"][0]["digest"] == "old"


class TestStderrRenderer:
    def _snap(self, **overrides) -> dict:
        snap = {
            "blocks_done": 1, "blocks_total": 4,
            "points_done": 10, "points_total": 40,
            "elapsed_seconds": 2.0, "points_per_second": 5.0,
            "eta_seconds": 6.0, "finished": False,
        }
        snap.update(overrides)
        return snap

    def test_non_tty_writes_full_lines(self):
        stream = io.StringIO()
        listener = stderr_renderer(stream, min_interval=0.0)
        listener(self._snap(), False)
        out = stream.getvalue()
        assert out == "# progress: 1/4 blocks · 10/40 points · 5.0 pts/s · eta 6.0s\n"

    def test_final_line_reports_duration(self):
        stream = io.StringIO()
        listener = stderr_renderer(stream, min_interval=0.0)
        listener(self._snap(blocks_done=4, points_done=40, finished=True,
                            eta_seconds=0.0), True)
        assert "done in 2.0s" in stream.getvalue()

    def test_throttles_but_never_drops_final(self):
        stream = io.StringIO()
        listener = stderr_renderer(stream, min_interval=3600.0)
        listener(self._snap(), False)
        listener(self._snap(blocks_done=2), False)  # throttled away
        listener(self._snap(blocks_done=4), True)   # final always paints
        out = stream.getvalue()
        assert "1/4 blocks" in out
        assert "2/4 blocks" not in out
        assert "4/4 blocks" in out

    def test_tty_repaints_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        listener = stderr_renderer(stream, min_interval=0.0)
        listener(self._snap(), False)
        listener(self._snap(blocks_done=4, finished=True), True)
        out = stream.getvalue()
        assert out.startswith("\r# progress: 1/4")  # in-place repaint, no newline
        assert "done in 2.0s\n" in out  # final line is terminated
        assert out.count("\n") == 1
