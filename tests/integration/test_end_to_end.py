"""End-to-end integration tests crossing every layer of the library.

Each test exercises a complete path a user of the reproduction would take:
model text / net construction -> state space -> kernel -> transform
evaluation (serial or distributed) -> inversion -> measure, with simulation
as an independent witness where appropriate.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro import PassageTimeSolver, load_model
from repro.core.jobs import PassageTimeJob
from repro.distributed import CheckpointStore, DistributedPipeline, MultiprocessingBackend
from repro.dnamaca import parse_model
from repro.models import (
    SCALED_CONFIGURATIONS,
    all_voted_predicate,
    build_voting_graph,
    initial_marking_predicate,
    voting_spec_text,
)
from repro.petri import build_kernel, explore, passage_solver, transient_solver
from repro.simulation import PetriSimulator, empirical_cdf, simulate_passage_times
from repro.smp import smp_steady_state, source_weights


@pytest.fixture(scope="module")
def params():
    return SCALED_CONFIGURATIONS["tiny"]


@pytest.fixture(scope="module")
def graph(params):
    return build_voting_graph(params)


class TestSpecificationToMeasures:
    """DNAmaca text -> SM-SPN -> SMP -> passage time / transient."""

    def test_full_chain_from_text(self, params):
        text = voting_spec_text(params)
        spec = parse_model(text)
        assert {"p1", "p2", "p7"} <= set(spec.place_names())

        net = load_model(text)
        graph = explore(net)
        kernel = build_kernel(graph)
        assert kernel.n_states == graph.n_states

        solver = passage_solver(
            graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        mean = solver.mean()
        q50 = solver.quantile(0.50, 0.01 * mean, 10.0 * mean)
        q90 = solver.quantile(0.90, 0.01 * mean, 10.0 * mean)
        assert 0 < q50 < q90
        assert solver.cdf([q90])[0] == pytest.approx(0.90, abs=1e-4)

    def test_spec_model_agrees_with_python_model(self, params, graph):
        spec_graph = explore(load_model(voting_spec_text(params)))
        spec_solver = passage_solver(
            spec_graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        py_solver = passage_solver(
            graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        ts = np.array([5.0, 10.0, 20.0])
        assert np.allclose(spec_solver.density(ts), py_solver.density(ts), atol=1e-8)


class TestAnalyticAgainstSimulation:
    """The paper's validation methodology: analytic curves vs simulation."""

    def test_voting_passage_cdf(self, params, graph):
        solver = passage_solver(
            graph, initial_marking_predicate(params), all_voted_predicate(params)
        )
        kernel = build_kernel(graph)
        sources = graph.states_where(initial_marking_predicate(params))
        targets = graph.states_where(all_voted_predicate(params))
        samples = simulate_passage_times(
            kernel, sources, targets, n_samples=3000, rng=123
        )
        probe = np.quantile(samples, [0.2, 0.5, 0.8])
        assert np.max(np.abs(solver.cdf(probe) - empirical_cdf(samples, probe))) < 0.04

    def test_net_level_simulation_agrees_with_kernel_level(self, params):
        from repro.models import build_voting_net

        net_samples = PetriSimulator(build_voting_net(params)).sample_passage_times(
            all_voted_predicate(params), n_samples=1200, rng=5
        )
        graph = build_voting_graph(params)
        kernel = build_kernel(graph)
        kernel_samples = simulate_passage_times(
            kernel,
            graph.states_where(initial_marking_predicate(params)),
            graph.states_where(all_voted_predicate(params)),
            n_samples=1200,
            rng=6,
        )
        probe = np.quantile(kernel_samples, [0.3, 0.6, 0.9])
        assert np.max(
            np.abs(empirical_cdf(net_samples, probe) - empirical_cdf(kernel_samples, probe))
        ) < 0.06


class TestDistributedPathEquivalence:
    """Serial solver, checkpointed pipeline and process-pool backend agree."""

    def test_all_execution_paths_agree(self, params, graph, tmp_path):
        kernel = build_kernel(graph)
        sources = graph.states_where(initial_marking_predicate(params))
        targets = graph.states_where(all_voted_predicate(params))
        t_points = np.array([6.0, 12.0, 24.0])

        solver = PassageTimeSolver(kernel, sources=sources, targets=targets)
        reference = solver.density(t_points)

        job = PassageTimeJob(
            kernel=kernel, alpha=source_weights(kernel, sources), targets=targets
        )
        checkpointed = DistributedPipeline(job, checkpoint=CheckpointStore(tmp_path))
        assert np.allclose(checkpointed.density(t_points), reference, atol=1e-9)

        resumed = DistributedPipeline(job, checkpoint=CheckpointStore(tmp_path))
        assert np.allclose(resumed.density(t_points), reference, atol=1e-9)
        assert resumed.statistics.s_points_computed == 0

        pooled = DistributedPipeline(job, backend=MultiprocessingBackend(processes=2, chunk_size=8))
        assert np.allclose(pooled.density(t_points), reference, atol=1e-9)


class TestSteadyStateConsistency:
    """Transient limits, steady states and simulation occupancy line up."""

    def test_transient_limit_matches_smp_steady_state(self, params, graph):
        kernel = build_kernel(graph)
        operational = graph.states_where(lambda m: m["p7"] == 0 and m["p6"] == 0)
        solver = transient_solver(
            graph,
            initial_marking_predicate(params),
            lambda m: m["p7"] == 0 and m["p6"] == 0,
            method="direct",
        )
        limit = solver.steady_state()
        pi = smp_steady_state(kernel)
        assert limit == pytest.approx(pi[operational].sum(), abs=1e-9)
        # Mixing is slow (the Fig. 3 bulk repair has a 5000s Erlang branch),
        # so the comparison point sits well beyond that time scale.
        late = solver.probability([30_000.0])[0]
        assert late == pytest.approx(limit, abs=0.01)
