"""Smoke tests that the example scripts run end to end.

Only the quicker examples are executed here (the full voting and distributed
walkthroughs take minutes); they are run in-process with a patched
``__name__`` guard so coverage still sees them.
"""
from __future__ import annotations

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        return runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_examples_directory_contents(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "api_quickstart.py",
            "voting_analysis.py",
            "failure_mode_reliability.py",
            "distributed_pipeline.py",
            "dnamaca_spec.py",
            "service_demo.py",
        } <= names

    def test_api_quickstart_runs(self, capsys):
        run_example("api_quickstart.py")
        out = capsys.readouterr().out
        assert "query plan before any evaluation" in out
        assert "engine parity" in out
        assert "remote warm repeat evaluated 0 s-points" in out
        assert "steady state" in out

    def test_quickstart_runs(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "mean time to failure" in out
        assert "steady-state availability" in out
        assert "Simulation cross-check" in out

    def test_service_demo_runs(self, capsys):
        run_example("service_demo.py")
        out = capsys.readouterr().out
        assert "cold query" in out
        assert "warm query" in out
        assert "s-points evaluated once" in out
        assert "coalesced" in out

    def test_dnamaca_spec_runs(self, capsys):
        run_example("dnamaca_spec.py")
        out = capsys.readouterr().out
        assert "transition t5" in out
        assert "state space from the specification" in out
        assert "steady state" in out
