"""Telemetry across the process pool: spans and metrics ride the result path.

Worker-side spans and metric deltas ship back to the master inside each
block result, and the global per-worker counters are fed exactly once per
*completed* block by the dispatching backend.  The crash tests pin the
invariant that matters: killing a worker (and rebuilding the pool) must
neither lose nor double-count telemetry, because a block that never
returned never fed the counters.
"""
from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.jobs import PassageTimeJob
from repro.distributed import MultiprocessingBackend
from repro.obs import get_metrics, get_tracer, worker_stats_snapshot
from repro.smp import source_weights
from tests.smp.conftest import random_kernel

S_GRID = [complex(0.3 * (k + 1), 0.9 * k) for k in range(16)]


@pytest.fixture(scope="module")
def big_kernel():
    rng = np.random.default_rng(20030422)
    return random_kernel(rng, 80, density=0.4)


@pytest.fixture
def big_job(big_kernel):
    return PassageTimeJob(
        kernel=big_kernel, alpha=source_weights(big_kernel, [0]), targets=[3, 4]
    )


@pytest.fixture
def fresh_registry():
    """Run against a clean process-global registry, restoring state after."""
    registry = get_metrics()
    saved = registry.snapshot()
    registry.reset()
    try:
        yield registry
    finally:
        registry.reset()
        registry.absorb(saved)


class TestWorkerStatsMerging:
    def test_registry_matches_per_run_queue_view(self, big_job, fresh_registry):
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            backend.evaluate(big_job, S_GRID)
        finally:
            backend.close()
        snap = worker_stats_snapshot()
        assert snap == backend.last_worker_stats
        assert sum(e["points"] for e in snap.values()) == len(S_GRID)

    def test_pool_rebuild_neither_loses_nor_double_counts(
        self, big_job, tmp_path, monkeypatch, fresh_registry
    ):
        """Kill one worker mid-run: the crashed block's first attempt never
        completed, so only its retry lands in the counters — totals must come
        out exact across the pool rebuild."""
        state = tmp_path / "faults"
        monkeypatch.setenv(
            "REPRO_FAULTS", f"state={state};worker.solve=crash:limit=1,block=1"
        )
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            values = backend.evaluate(big_job, S_GRID)
        finally:
            backend.close()
        assert list(state.glob("rule*.fire*"))  # the crash really happened
        assert len(values) == len(S_GRID)

        snap = worker_stats_snapshot()
        assert sum(e["points"] for e in snap.values()) == len(S_GRID)
        assert all(e["busy_seconds"] > 0 for e in snap.values())
        # the per-run queue view and the registry view agree after the rebuild
        assert snap == backend.last_worker_stats

    def test_points_evaluated_counter_reconciles(self, big_job, fresh_registry):
        """Worker-side solve metrics are absorbed into the master registry:
        the points_evaluated counter equals the s-grid size exactly."""
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            backend.evaluate(big_job, S_GRID)
        finally:
            backend.close()
        counter = fresh_registry.get("repro_points_evaluated_total")
        assert counter is not None
        assert counter.value() == len(S_GRID)
        n_blocks = sum(e["blocks"] for e in backend.last_worker_stats.values())
        blocks = fresh_registry.get("repro_block_seconds")
        assert blocks.snapshot_of()["count"] == n_blocks


class TestWorkerSpanCapture:
    def test_worker_spans_are_absorbed_with_worker_pids(self, big_job):
        tracer = get_tracer()
        tracer.enable()
        tracer.clear()
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            backend.evaluate(big_job, S_GRID)
            spans = tracer.spans()
        finally:
            backend.close()
            tracer.disable()
            tracer.clear()

        sblocks = [r for r in spans if r["name"] == "s-block"]
        n_blocks = sum(e["blocks"] for e in backend.last_worker_stats.values())
        assert len(sblocks) == n_blocks >= 2
        worker_pids = {r["pid"] for r in sblocks}
        assert os.getpid() not in worker_pids  # recorded inside the workers
        # the inner solver span nests under the worker-level block span
        solves = [r for r in spans if r["name"] == "s-block-solve"]
        assert solves
        ids = {r["id"]: r for r in spans}
        assert all(ids[r["parent"]]["name"] == "s-block" for r in solves)
        # the master recorded the plane export around pool start
        exports = [r for r in spans if r["name"] == "plane-export"]
        assert exports and exports[0]["pid"] == os.getpid()

    def test_disabled_tracer_ships_nothing(self, big_job):
        tracer = get_tracer()
        assert not tracer.enabled
        tracer.clear()
        backend = MultiprocessingBackend(processes=2, block_size=8)
        try:
            backend.evaluate(big_job, S_GRID[:8])
        finally:
            backend.close()
            tracer.clear()
        assert tracer.spans() == []
