"""Tests for the s-point work queue and the checkpoint store."""
from __future__ import annotations

import json
import multiprocessing
import threading

import numpy as np
import pytest

from repro.distributed import CheckpointStore, SPointWorkQueue


def _contending_writer(directory, digest: str, start: int, count: int) -> None:
    """Merge ``count`` one-point updates [start, start+count) into one digest.

    Module-level so it pickles under any multiprocessing start method.  Each
    merge is a full read-modify-write of the shared file, maximising the
    window in which an unlocked implementation loses the other writer's
    points.
    """
    store = CheckpointStore(directory)
    for i in range(start, start + count):
        store.merge(digest, {complex(i, 1.0): complex(i, -1.0)})


class TestWorkQueue:
    def test_put_deduplicates(self):
        queue = SPointWorkQueue()
        added = queue.put([1 + 2j, 1 + 2j, 3 + 0j])
        assert added == 2
        assert queue.n_pending == 2
        # Near-identical points (within canonical rounding) are also folded.
        assert queue.put([1 + 2j * (1 + 1e-14)]) == 0

    def test_take_and_complete(self):
        queue = SPointWorkQueue()
        queue.put([0.5 + 1j, 0.5 + 2j, 0.5 + 3j])
        items = queue.take(2)
        assert len(items) == 2 and queue.n_pending == 1
        queue.complete(items[0], 0.25 + 0.1j, duration=0.5, worker="slave-1")
        queue.complete(items[1], 0.5 + 0.0j, duration=0.7, worker="slave-2")
        assert queue.n_completed == 2
        assert queue.value_of(items[0].s) == 0.25 + 0.1j
        assert np.allclose(queue.durations(), [0.5, 0.7])

    def test_completed_points_not_requeued(self):
        queue = SPointWorkQueue()
        queue.put([2 + 2j])
        item = queue.take(1)[0]
        queue.complete(item, 1.0 + 0j)
        assert queue.put([2 + 2j]) == 0

    def test_take_requires_positive_count(self):
        with pytest.raises(ValueError):
            SPointWorkQueue().take(0)


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoints")
        values = {1.5 + 2.5j: 0.25 - 0.1j, 3.0 + 0j: 0.5 + 0j}
        store.merge("job-a", values)
        loaded = store.load("job-a")
        assert loaded == {1.5 + 2.5j: 0.25 - 0.1j, 3.0 + 0j: 0.5 + 0j}
        assert store.digests() == ["job-a"]
        assert store.size_bytes("job-a") > 0

    def test_merge_accumulates(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("job", {1 + 1j: 2 + 2j})
        store.merge("job", {3 + 3j: 4 + 4j})
        assert len(store.load("job")) == 2

    def test_missing_digest_is_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nothing") == {}

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("job", {1 + 1j: 2 + 2j})
        store.clear("job")
        assert store.load("job") == {}
        store.clear("job")  # idempotent

    def test_corrupt_file_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("job", {1 + 1j: 2 + 2j})
        path = next((tmp_path).glob("*.json"))
        path.write_text("{not json")
        assert store.load("job") == {}

    def test_empty_merge_is_noop(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("job", {})
        assert store.load("job") == {}

    def test_digest_sanitised(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("weird/../digest", {1 + 0j: 1 + 0j})
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        assert "/" not in files[0].name
        with pytest.raises(ValueError):
            store.merge("///", {1 + 0j: 1 + 0j})

    def test_file_is_valid_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("job", {0.5 + 0.25j: 1.0 - 0.5j})
        path = next(tmp_path.glob("*.json"))
        payload = json.loads(path.read_text())
        assert set(payload) == {"crc32", "values"}
        assert list(payload["values"].values()) == [[1.0, -0.5]]

    def test_lock_file_not_listed_as_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.merge("job", {1 + 1j: 2 + 2j})
        assert store.digests() == ["job"]
        assert (tmp_path / "job.lock").exists()


class TestCheckpointContention:
    """merge() is a read-modify-write; concurrent writers must not lose points."""

    def test_two_writer_processes_lose_no_values(self, tmp_path):
        digest = "shared-measure"
        per_writer = 120
        workers = [
            multiprocessing.Process(
                target=_contending_writer,
                args=(str(tmp_path), digest, w * per_writer, per_writer),
            )
            for w in range(2)
        ]
        for p in workers:
            p.start()
        for p in workers:
            p.join(timeout=120)
            assert p.exitcode == 0
        merged = CheckpointStore(tmp_path).load(digest)
        assert len(merged) == 2 * per_writer
        for i in range(2 * per_writer):
            assert merged[complex(i, 1.0)] == complex(i, -1.0)

    def test_many_writer_threads_lose_no_values(self, tmp_path):
        store = CheckpointStore(tmp_path)
        digest = "threaded-measure"
        per_writer, n_threads = 40, 4
        threads = [
            threading.Thread(
                target=_contending_writer,
                args=(tmp_path, digest, w * per_writer, per_writer),
            )
            for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store.load(digest)) == n_threads * per_writer
