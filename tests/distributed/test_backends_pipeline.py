"""Tests for the execution backends and the master pipeline."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeSolver, TransientSolver
from repro.core.jobs import PassageTimeJob, TransientJob
from repro.distributions import Erlang
from repro.distributed import (
    CheckpointStore,
    DistributedPipeline,
    MultiprocessingBackend,
    SerialBackend,
)
from repro.smp import source_weights


@pytest.fixture
def erlang_job(two_state_kernel):
    return PassageTimeJob(
        kernel=two_state_kernel,
        alpha=source_weights(two_state_kernel, [0]),
        targets=[1],
    )


class TestSerialBackend:
    def test_matches_direct_evaluation(self, erlang_job):
        backend = SerialBackend()
        s_points = [0.5 + 1j, 2.0 + 0j]
        values = backend.evaluate(erlang_job, s_points)
        for s in s_points:
            assert values[s] == pytest.approx(erlang_job.evaluate(s))

    def test_timing_recorded(self, erlang_job):
        backend = SerialBackend(record_timings=True)
        backend.evaluate(erlang_job, [0.5 + 1j, 1.0 + 2j, 2.0 + 3j])
        assert len(backend.task_durations) == 3
        assert all(d >= 0 for d in backend.task_durations)


class TestMultiprocessingBackend:
    def test_matches_serial(self, erlang_job):
        serial = SerialBackend().evaluate(erlang_job, [0.4 + 1j, 1.5 + 2j])
        parallel = MultiprocessingBackend(processes=2).evaluate(
            erlang_job, [0.4 + 1j, 1.5 + 2j]
        )
        for s, v in serial.items():
            assert parallel[s] == pytest.approx(v)

    def test_empty_input(self, erlang_job):
        assert MultiprocessingBackend(processes=1).evaluate(erlang_job, []) == {}

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            MultiprocessingBackend(processes=0)
        with pytest.raises(ValueError):
            MultiprocessingBackend(chunk_size=0)


class TestDistributedPipeline:
    def test_density_and_cdf_match_solver(self, two_state_kernel, erlang_job, t_grid):
        pipeline = DistributedPipeline(erlang_job)
        solver = PassageTimeSolver(two_state_kernel, sources=[0], targets=[1])
        assert np.allclose(pipeline.density(t_grid), solver.density(t_grid), atol=1e-10)
        assert np.allclose(pipeline.cdf(t_grid), solver.cdf(t_grid), atol=1e-10)

    def test_run_returns_result_object(self, erlang_job, t_grid):
        result = DistributedPipeline(erlang_job).run(t_grid)
        erlang = Erlang(2.0, 3)
        assert np.allclose(result.density, erlang.pdf(t_grid), atol=1e-6)
        assert np.allclose(result.cdf, erlang.cdf(t_grid), atol=1e-6)
        assert result.statistics["s_points_computed"] == 33 * len(t_grid)
        assert result.statistics["backend"] == "serial"

    def test_checkpoint_resume_skips_computation(self, erlang_job, t_grid, tmp_path):
        store = CheckpointStore(tmp_path)
        first = DistributedPipeline(erlang_job, checkpoint=store)
        first.run(t_grid)
        resumed = DistributedPipeline(erlang_job, checkpoint=store)
        result = resumed.run(t_grid)
        assert resumed.statistics.s_points_computed == 0
        assert resumed.statistics.s_points_from_cache > 0
        assert np.allclose(result.density, Erlang(2.0, 3).pdf(t_grid), atol=1e-6)

    def test_checkpoints_are_per_measure(self, two_state_kernel, erlang_job, tmp_path):
        store = CheckpointStore(tmp_path)
        DistributedPipeline(erlang_job, checkpoint=store).density([1.0])
        other_job = PassageTimeJob(
            kernel=two_state_kernel,
            alpha=source_weights(two_state_kernel, [0]),
            targets=[0],
        )
        other = DistributedPipeline(other_job, checkpoint=store)
        other.density([1.0])
        assert other.statistics.s_points_computed > 0
        assert len(store.digests()) == 2

    def test_laguerre_conjugate_folding_halves_work(self, erlang_job):
        pipeline = DistributedPipeline(
            erlang_job, inversion="laguerre", inverter_options={"n_points": 64}
        )
        density = pipeline.density([0.5, 1.0, 2.0])
        assert np.allclose(density, Erlang(2.0, 3).pdf([0.5, 1.0, 2.0]), atol=1e-5)
        stats = pipeline.statistics
        assert stats.conjugates_folded > 0
        assert stats.s_points_computed < stats.s_points_required

    def test_transient_job_pipeline(self, ctmc_kernel):
        job = TransientJob(
            kernel=ctmc_kernel, alpha=source_weights(ctmc_kernel, [0]), targets=[1]
        )
        t_points = np.array([0.2, 0.8, 2.0])
        result = DistributedPipeline(job).run(t_points)
        expected = TransientSolver(ctmc_kernel, sources=[0], targets=[1]).probability(t_points)
        assert np.allclose(result.probability, expected, atol=1e-8)

    def test_multiprocessing_pipeline_end_to_end(self, erlang_job):
        backend = MultiprocessingBackend(processes=2, chunk_size=8)
        pipeline = DistributedPipeline(erlang_job, backend=backend)
        ts = [0.5, 1.5]
        assert np.allclose(pipeline.density(ts), Erlang(2.0, 3).pdf(ts), atol=1e-6)
        assert backend.last_wall_clock is not None

    def test_task_durations_collected_for_scalability_model(self, erlang_job, t_grid):
        pipeline = DistributedPipeline(erlang_job, backend=SerialBackend(record_timings=True))
        pipeline.density(t_grid)
        assert len(pipeline.statistics.task_durations) == 33 * len(t_grid)
