"""Block-granular dispatch: payload size, crash recovery, checkpoint resume.

What crosses the process boundary in the refactored execution stack is a
one-time :class:`JobSpec` + :class:`PlaneHandle` pair at pool start and one
:class:`SBlock` per task — never the kernel arrays.  These tests pin the
payload sizes down as a regression (the scalar-era backend pickled the whole
job, kernel included, into every worker), and exercise the failure paths:
a worker killed mid-run is retried without recomputing finished blocks, and
a run that exhausts its retries resumes from the per-block checkpoint.
"""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.jobs import JobSpec, PassageTimeJob
from repro.distributed import (
    CheckpointStore,
    DistributedPipeline,
    MultiprocessingBackend,
    SBlockQueue,
    SerialBackend,
)
from repro.smp import KernelPlane, SPointPolicy, kernel_content_digest, source_weights
from tests.smp.conftest import random_kernel

S_GRID = [complex(0.3 * (k + 1), 0.9 * k) for k in range(16)]


@pytest.fixture(scope="module")
def big_kernel():
    rng = np.random.default_rng(20030422)
    return random_kernel(rng, 80, density=0.4)


@pytest.fixture
def big_job(big_kernel):
    return PassageTimeJob(
        kernel=big_kernel, alpha=source_weights(big_kernel, [0]), targets=[3, 4]
    )


class TestPayloadSize:
    def test_spec_has_no_kernel_arrays(self, big_job):
        """Regression: the per-pool payload must not scale with the kernel."""
        spec = JobSpec.from_job(big_job)
        spec_bytes = len(pickle.dumps(spec))
        job_bytes = len(pickle.dumps(big_job))
        # The full job pickles the edge arrays of an ~80-state dense-ish
        # kernel; the spec pickles indices/weights of one source, two targets
        # and the options — three orders of magnitude apart.
        assert spec_bytes < 2_000
        assert job_bytes > 50 * spec_bytes

    def test_per_block_payload_is_bounded(self, big_job):
        plane = KernelPlane.build(big_job.evaluator)
        try:
            handle_bytes = len(pickle.dumps(plane.handle()))
            queue = SBlockQueue.from_points(S_GRID, 4)
            block_bytes = max(
                len(pickle.dumps(b)) for b in queue.outstanding()
            )
            assert handle_bytes < 512
            assert block_bytes < 1_024
        finally:
            plane.unlink()

    def test_spec_build_round_trip(self, big_job):
        plane = KernelPlane.build(big_job.evaluator)
        try:
            attached = plane.handle().attach()
            spec = pickle.loads(pickle.dumps(JobSpec.from_job(big_job)))
            rebuilt = spec.build(attached.evaluator)
            assert rebuilt.digest() == big_job.digest()
            np.testing.assert_array_equal(rebuilt.alpha, big_job.alpha)
            np.testing.assert_array_equal(rebuilt.targets, big_job.targets)
            attached.close()
        finally:
            plane.unlink()

    def test_spec_build_rejects_wrong_kernel(self, big_job, two_state_kernel):
        spec = JobSpec.from_job(big_job)
        with pytest.raises(ValueError, match="states"):
            spec.build(two_state_kernel.evaluator())


class TestBlockSizing:
    def test_dispatch_blocks_spread_over_workers(self, big_job):
        """No explicit size: the policy's memory budget is capped so every
        worker sees work — the single code path shared with the in-process
        engines."""
        policy = SPointPolicy()
        evaluator = big_job.evaluator
        engine = policy.resolve_engine(evaluator)
        expected = policy.dispatch_block_points(evaluator, engine, 16, 4)
        assert expected <= 4  # ceil(16 / (4 workers * 4)) caps the budget
        assert expected == min(
            policy.block_points(evaluator, engine), expected
        )

    def test_explicit_block_size_and_policy_take_the_min(self, big_job):
        policy = SPointPolicy()
        evaluator = big_job.evaluator
        engine = policy.resolve_engine(evaluator)
        effective = min(3, policy.dispatch_block_points(evaluator, engine, 10, 2))
        backend = MultiprocessingBackend(processes=2, block_size=3)
        try:
            values = backend.evaluate(big_job, S_GRID[:10])
            assert len(values) == 10
            stats = backend.last_worker_stats
            assert sum(e["blocks"] for e in stats.values()) == -(-10 // effective)
            assert sum(e["points"] for e in stats.values()) == 10
        finally:
            backend.close()

    def test_chunk_size_is_an_alias(self):
        backend = MultiprocessingBackend(processes=1, chunk_size=7)
        assert backend.block_size == 7
        assert backend.chunk_size == 7


class TestCrashRecovery:
    def test_killed_worker_is_retried(self, big_job, tmp_path, monkeypatch):
        state = tmp_path / "faults"
        monkeypatch.setenv(
            "REPRO_FAULTS", f"state={state};worker.solve=crash:limit=1,block=1"
        )
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            values = backend.evaluate(big_job, S_GRID)
        finally:
            backend.close()
        assert list(state.glob("rule*.fire*"))  # the crash really happened
        assert backend.last_retry_stats["retries"]
        serial = SerialBackend().evaluate(big_job, S_GRID)
        for s, v in serial.items():
            assert values[s] == pytest.approx(v, abs=1e-12)

    def test_retries_exhausted_raises(self, big_job, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.solve=crash:block=0")
        backend = MultiprocessingBackend(processes=1, block_size=8, max_retries=0)
        try:
            with pytest.raises(Exception, match="1 time"):
                backend.evaluate(big_job, S_GRID)
        finally:
            backend.close()

    def test_resume_from_per_block_checkpoint(self, big_job, tmp_path, monkeypatch):
        """A run that dies mid-grid leaves its finished blocks on disk; the
        next run computes only the remainder."""
        store = CheckpointStore(tmp_path / "ckpt")
        t_grid = [0.5, 1.0, 2.0]

        # Probe how many deduplicated s-points the grid actually dispatches.
        probe = DistributedPipeline(big_job)
        reference = probe.density(t_grid)
        required = probe.statistics.s_points_computed
        n_blocks = -(-required // 4)
        assert n_blocks > 1

        # One worker, four-point blocks, crash on the last block: every
        # earlier block completes (and is merged to disk) first.
        monkeypatch.setenv(
            "REPRO_FAULTS", f"worker.solve=crash:block={n_blocks - 1}"
        )
        backend = MultiprocessingBackend(processes=1, block_size=4, max_retries=0)
        pipeline = DistributedPipeline(big_job, backend=backend, checkpoint=store)
        with pytest.raises(Exception):
            pipeline.density(t_grid)
        backend.close()
        checkpointed = len(store.load(big_job.digest()))
        assert 0 < checkpointed < required

        monkeypatch.delenv("REPRO_FAULTS")
        backend = MultiprocessingBackend(processes=1, block_size=4)
        resumed = DistributedPipeline(big_job, backend=backend, checkpoint=store)
        density = resumed.density(t_grid)
        backend.close()
        assert resumed.statistics.s_points_from_cache >= checkpointed
        assert 0 < resumed.statistics.s_points_computed < required
        np.testing.assert_allclose(density, reference, rtol=0.0, atol=1e-10)


class TestWorkerStats:
    def test_backend_reports_per_worker_counters(self, big_job):
        backend = MultiprocessingBackend(processes=2, block_size=4)
        try:
            backend.evaluate(big_job, S_GRID)
            stats = backend.last_worker_stats
            assert stats
            assert sum(e["points"] for e in stats.values()) == len(S_GRID)
            assert all(e["busy_seconds"] >= 0 for e in stats.values())
            report = big_job.last_report
            assert report["workers"] == stats
            assert report["engine"] in ("batch", "factored")
        finally:
            backend.close()

    def test_pipeline_surfaces_worker_stats(self, big_job):
        backend = MultiprocessingBackend(processes=2, block_size=4)
        pipeline = DistributedPipeline(big_job, backend=backend)
        try:
            pipeline.density([0.5, 1.0])
        finally:
            backend.close()
        summary = pipeline.statistics_summary()
        assert "workers" in summary
        assert sum(e["points"] for e in summary["workers"].values()) > 0

    def test_plane_digest_agrees_with_checkpoint_keying(self, big_job):
        # The plane stamps the kernel digest, so a worker-built job checkpoints
        # under the same key as the master's.
        assert JobSpec.from_job(big_job).kernel_digest == kernel_content_digest(
            big_job.kernel
        )
