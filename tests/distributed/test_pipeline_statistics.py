"""Regression tests for :class:`PipelineStatistics` bookkeeping.

One ``DistributedPipeline.run()`` over a 5-point t-grid needs exactly
165 s-points (33 per t-point with the default Euler parameters).  The
density and CDF measures share that grid, so the pipeline must count the
165 unique points once — not once per measure — and must not report the
second measure's reuse of them as cache hits.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core.jobs import PassageTimeJob
from repro.distributed import CheckpointStore, DistributedPipeline
from repro.smp import source_weights

T_GRID = np.array([0.5, 1.0, 1.5, 2.0, 3.0])  # 5 t-points -> 165 s-points


@pytest.fixture
def job(two_state_kernel):
    return PassageTimeJob(
        kernel=two_state_kernel,
        alpha=source_weights(two_state_kernel, [0]),
        targets=[1],
    )


def test_run_counts_unique_required_points_once(job):
    pipeline = DistributedPipeline(job)
    pipeline.run(T_GRID)
    stats = pipeline.statistics
    assert stats.s_points_required == 165
    assert stats.s_points_computed == 165
    assert stats.s_points_from_cache == 0


def test_second_measure_adds_no_phantom_hits(job):
    pipeline = DistributedPipeline(job)
    density = pipeline.density(T_GRID)
    stats_after_density = (
        pipeline.statistics.s_points_required,
        pipeline.statistics.s_points_computed,
        pipeline.statistics.s_points_from_cache,
    )
    assert stats_after_density == (165, 165, 0)
    cdf = pipeline.cdf(T_GRID)
    assert (
        pipeline.statistics.s_points_required,
        pipeline.statistics.s_points_computed,
        pipeline.statistics.s_points_from_cache,
    ) == stats_after_density
    assert np.all(np.diff(cdf) >= -1e-9)
    assert np.all(density > -1e-9)


def test_new_t_points_extend_required_count(job):
    pipeline = DistributedPipeline(job)
    pipeline.density(T_GRID)
    pipeline.density(np.array([4.0]))  # 33 genuinely new points
    stats = pipeline.statistics
    assert stats.s_points_required == 165 + 33
    assert stats.s_points_computed == 165 + 33
    assert stats.s_points_from_cache == 0


def test_failed_backend_run_is_retryable(job):
    """A backend failure must not poison the pipeline's bookkeeping: a retry
    recomputes the missing points instead of raising KeyError."""

    class FlakyBackend:
        name = "flaky"

        def __init__(self):
            self.calls = 0

        def evaluate(self, job, s_points):
            self.calls += 1
            if self.calls == 1:
                raise RuntimeError("simulated worker crash")
            return job.evaluate_many(s_points)

    pipeline = DistributedPipeline(job, backend=FlakyBackend())
    with pytest.raises(RuntimeError, match="simulated worker crash"):
        pipeline.density(T_GRID)
    density = pipeline.density(T_GRID)
    assert np.all(np.isfinite(density))
    stats = pipeline.statistics
    assert stats.s_points_required == 165
    assert stats.s_points_computed == 165
    assert stats.s_points_from_cache == 0


def test_checkpoint_reuse_counts_as_true_cache_hits(job, tmp_path):
    store = CheckpointStore(tmp_path)
    DistributedPipeline(job, checkpoint=store).run(T_GRID)
    resumed = DistributedPipeline(job, checkpoint=store)
    resumed.run(T_GRID)
    stats = resumed.statistics
    assert stats.s_points_required == 165
    assert stats.s_points_computed == 0
    assert stats.s_points_from_cache == 165
