"""Tests for the simulated-cluster timing model (the Table 2 substrate)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import ClusterTiming, ScalabilityRow, SimulatedCluster, scalability_table


class TestSimulatedCluster:
    def test_single_slave_is_serial_sum(self):
        timing = ClusterTiming(dispatch_overhead=0.0, network_latency=0.0)
        cluster = SimulatedCluster(1, timing)
        durations = [1.0, 2.0, 3.0]
        assert cluster.makespan(durations) == pytest.approx(6.0)

    def test_perfect_split_without_overheads(self):
        timing = ClusterTiming(dispatch_overhead=0.0, network_latency=0.0)
        cluster = SimulatedCluster(4, timing)
        # 8 equal tasks over 4 slaves -> exactly 2 rounds.
        assert cluster.makespan([1.0] * 8) == pytest.approx(2.0)

    def test_master_dispatch_serialises(self):
        timing = ClusterTiming(dispatch_overhead=1.0, network_latency=0.0)
        cluster = SimulatedCluster(100, timing)
        # With huge dispatch cost the master is the bottleneck.
        assert cluster.makespan([0.001] * 10) >= 10.0

    def test_slave_speed_scaling(self):
        slow = SimulatedCluster(1, ClusterTiming(0.0, 0.0, slave_speed=1.0))
        fast = SimulatedCluster(1, ClusterTiming(0.0, 0.0, slave_speed=2.0))
        assert fast.makespan([4.0]) == pytest.approx(0.5 * slow.makespan([4.0]))

    def test_empty_task_list(self):
        assert SimulatedCluster(4).makespan([]) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)
        with pytest.raises(ValueError):
            ClusterTiming(dispatch_overhead=-1.0)
        with pytest.raises(ValueError):
            ClusterTiming(slave_speed=0.0)
        with pytest.raises(ValueError):
            SimulatedCluster(2).makespan([-1.0])


class TestScalabilityTable:
    @pytest.fixture
    def durations(self, rng):
        """165 tasks (the paper's 5 t-points x 33 Euler evaluations)."""
        return rng.uniform(2.5, 4.0, size=165)

    def test_reproduces_table2_shape(self, durations):
        """Monotone speedup, decaying efficiency — the qualitative content of
        Table 2 (1.00 / 0.965 / 0.876 / 0.712 in the paper)."""
        rows = scalability_table(durations, (1, 8, 16, 32))
        assert [r.slaves for r in rows] == [1, 8, 16, 32]
        times = [r.time_seconds for r in rows]
        assert times == sorted(times, reverse=True)
        speedups = [r.speedup for r in rows]
        assert speedups[0] == pytest.approx(1.0)
        assert all(np.diff(speedups) > 0)
        efficiencies = [r.efficiency for r in rows]
        assert all(np.diff(efficiencies) < 1e-9)
        assert efficiencies[1] > 0.9          # 8 slaves stay very efficient
        assert 0.45 < efficiencies[3] < 1.0   # 32 slaves lose efficiency to imbalance

    def test_speedup_bounded_by_slave_count(self, durations):
        for row in scalability_table(durations, (2, 4, 8)):
            assert row.speedup <= row.slaves + 1e-9
            assert 0.0 < row.efficiency <= 1.0 + 1e-9

    def test_row_tuple_accessor(self, durations):
        row = scalability_table(durations, (4,))[0]
        assert isinstance(row, ScalabilityRow)
        slaves, time_s, speedup, efficiency = row.as_tuple()
        assert slaves == 4 and time_s > 0

    def test_invalid_slave_counts(self, durations):
        with pytest.raises(ValueError):
            scalability_table(durations, (0, 4))
