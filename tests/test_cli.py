"""Tests for the ``semimarkov`` command-line interface."""
from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.models import SCALED_CONFIGURATIONS, voting_spec_text

PARAMS = SCALED_CONFIGURATIONS["tiny"]


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "voting.dnamaca"
    path.write_text(voting_spec_text(PARAMS))
    return str(path)


ON_OFF = r"""
\constant{K}{2}
\model{
  \place{on}{K}
  \place{off}{0}
  \transition{fail}{
    \condition{on > 0}
    \action{ next->on = on - 1; next->off = off + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(2.0, 2, s); }
  }
  \transition{repair}{
    \condition{off > 0}
    \action{ next->on = on + 1; next->off = off - 1; }
    \weight{2.0}
    \priority{1}
    \sojourntimeLT{ return uniformLT(0.5, 1.5, s); }
  }
}
"""


@pytest.fixture
def onoff_file(tmp_path):
    path = tmp_path / "onoff.dnamaca"
    path.write_text(ON_OFF)
    return str(path)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("info", "passage", "transient", "simulate"):
            args = parser.parse_args(
                [command, "model.dnamaca"]
                + (
                    ["--source", "on > 0", "--target", "off > 0", "--t-points", "1"]
                    if command in ("passage", "transient")
                    else (["--target", "off > 0"] if command == "simulate" else [])
                )
            )
            assert args.command == command

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["passage", "model.dnamaca"])


class TestInfo:
    def test_info_output(self, onoff_file, capsys):
        assert main(["info", onoff_file]) == 0
        out = capsys.readouterr().out
        assert "reachable states: 3" in out
        assert "fail" in out and "repair" in out

    def test_constant_override(self, onoff_file, capsys):
        assert main(["info", onoff_file, "--set", "K=4"]) == 0
        assert "reachable states: 5" in capsys.readouterr().out

    def test_bad_override_format(self, onoff_file):
        with pytest.raises(SystemExit):
            main(["info", onoff_file, "--set", "K:4"])


class TestPassage:
    def test_density_and_cdf(self, onoff_file, capsys):
        code = main([
            "passage", onoff_file,
            "--source", "on == 2", "--target", "off == 2",
            "--t-points", "1", "2", "4", "8",
            "--cdf", "--json",
        ])
        assert code == 0
        captured = capsys.readouterr()
        rows = json.loads(captured.out)
        assert len(rows) == 4
        times, densities, cdfs = zip(*rows)
        assert all(d >= -1e-9 for d in densities)
        assert all(-1e-6 <= c <= 1 + 1e-6 for c in cdfs)
        assert cdfs == tuple(sorted(cdfs))

    def test_quantile_and_checkpoint(self, onoff_file, capsys, tmp_path):
        args = [
            "passage", onoff_file,
            "--source", "on == 2", "--target", "off == 2",
            "--t-points", "1", "4", "8",
            "--quantile", "0.9",
            "--checkpoint", str(tmp_path / "ckpt"),
        ]
        assert main(args) == 0
        out1 = capsys.readouterr()
        assert "quantile: P(T <=" in out1.out
        # Second run resumes from the checkpoint (0 computed s-points).
        assert main(args) == 0
        err2 = capsys.readouterr().err
        assert "s-points computed: 0" in err2

    def test_unsatisfied_predicate_fails_cleanly(self, onoff_file):
        with pytest.raises(SystemExit, match="target predicate"):
            main([
                "passage", onoff_file,
                "--source", "on == 2", "--target", "off == 99",
                "--t-points", "1",
            ])

    def test_voting_model_passage(self, model_file, capsys):
        code = main([
            "passage", model_file,
            "--source", "p1 == CC", "--target", "p2 == CC",
            "--t-points", "5", "10", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # header + three rows


class TestServeAndQuery:
    @pytest.fixture
    def server_url(self):
        import threading

        from repro.service import AnalysisService, create_server

        server = create_server(AnalysisService(), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_serve_and_query_parsers(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--checkpoint", "x"])
        assert args.command == "serve" and args.port == 0
        args = parser.parse_args([
            "query", "--url", "http://h:1", "passage", "m.dnamaca",
            "--source", "a > 0", "--target", "b > 0", "--t-points", "1", "2",
        ])
        assert args.query_command == "passage"
        with pytest.raises(SystemExit):
            parser.parse_args(["query"])  # a query sub-command is required

    def test_query_register_and_passage(self, server_url, onoff_file, capsys):
        assert main(["query", "--url", server_url, "register", onoff_file]) == 0
        out = capsys.readouterr().out
        assert "built" in out and "states   : 3" in out

        code = main([
            "query", "--url", server_url, "passage", onoff_file,
            "--source", "on == 2", "--target", "off == 2",
            "--t-points", "1", "2", "4", "8", "--cdf", "--json",
        ])
        assert code == 0
        captured = capsys.readouterr()
        rows = json.loads(captured.out.split("quantile:")[0])
        assert len(rows) == 4
        assert all(len(row) == 3 for row in rows)
        assert "s-points" in captured.err

        # Second run: the server answers without computing anything.
        assert main([
            "query", "--url", server_url, "passage", onoff_file,
            "--source", "on == 2", "--target", "off == 2",
            "--t-points", "1", "2", "4", "8", "--cdf",
        ]) == 0
        err = capsys.readouterr().err
        assert "0 computed" in err

    def test_query_transient_and_stats(self, server_url, onoff_file, capsys):
        code = main([
            "query", "--url", server_url, "transient", onoff_file,
            "--source", "on == 2", "--target", "on > 0",
            "--t-points", "1", "5", "25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "steady-state value" in out

        assert main(["query", "--url", server_url, "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["queries"]["transient"] == 1
        assert stats["registry"]["models"] == 1

    def test_query_digest_with_set_is_rejected(self, server_url):
        with pytest.raises(SystemExit, match="spec file"):
            main([
                "query", "--url", server_url, "passage", "0123abcd",
                "--set", "K=4",
                "--source", "on == 2", "--target", "off == 2",
                "--t-points", "1",
            ])

    def test_query_against_dead_server_fails_cleanly(self, onoff_file):
        with pytest.raises(SystemExit):
            main([
                "query", "--url", "http://127.0.0.1:1", "passage", onoff_file,
                "--source", "on == 2", "--target", "off == 2", "--t-points", "1",
            ])


class TestTransientAndSimulate:
    def test_transient(self, onoff_file, capsys):
        code = main([
            "transient", onoff_file,
            "--source", "on == 2", "--target", "on == 2",
            "--t-points", "0.5", "2", "10", "50",
            "--solver", "direct",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "steady-state value" in out

    def test_simulate(self, onoff_file, capsys):
        code = main([
            "simulate", onoff_file,
            "--target", "off == 2",
            "--replications", "300",
            "--seed", "7",
            "--t-points", "2.0", "5.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean:" in out
        assert "P(T<=t)" in out


@pytest.fixture
def api_server_url():
    import threading

    from repro.service import AnalysisService, create_server

    server = create_server(AnalysisService(), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestEmission:
    """CSV/JSON emission of result tables, including ``None`` cells.

    ``PassageTimeResult.as_table()`` fills un-requested columns with ``None``;
    the emitter must render those as *empty* CSV fields (not the string
    ``"None"``) and as JSON ``null``.
    """

    @staticmethod
    def _args(**flags):
        import argparse

        defaults = {"json": False, "csv": False}
        defaults.update(flags)
        return argparse.Namespace(**defaults)

    def test_csv_renders_none_as_empty_field(self, capsys):
        from repro.cli import _emit, _passage_rows
        from repro.core.results import PassageTimeResult

        result = PassageTimeResult(t_points=[1.0, 2.0], cdf=[0.25, 0.5])
        rows = result.as_table()  # density column is all None
        _emit(rows, ["t", "density", "cdf"], self._args(csv=True))
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "t,density,cdf"
        assert out[1] == "1.0,,0.25"
        assert out[2] == "2.0,,0.5"
        assert "None" not in "\n".join(out)
        # the pruning helper drops the all-None column entirely
        pruned, header = _passage_rows(result)
        assert header == ["t", "cdf"]
        assert all(len(row) == 2 for row in pruned)

    def test_json_renders_none_as_null(self, capsys):
        from repro.cli import _emit
        from repro.core.results import PassageTimeResult

        result = PassageTimeResult(t_points=[1.0], density=[0.5])
        _emit(result.as_table(), ["t", "density", "cdf"], self._args(json=True))
        rows = json.loads(capsys.readouterr().out)
        assert rows == [[1.0, 0.5, None]]

    def test_table_renders_none_as_blank(self, capsys):
        from repro.cli import _emit
        from repro.core.results import TransientResult

        _emit([[1.0, None]], ["t", "probability"], self._args())
        out = capsys.readouterr().out
        assert "None" not in out
        # TransientResult.as_table has no None cells but must emit fine too
        result = TransientResult(t_points=[1.0, 2.0], probability=[0.1, 0.2])
        _emit(result.as_table(), ["t", "probability"], self._args(csv=True))
        out = capsys.readouterr().out.splitlines()
        assert out[1] == "1.0,0.1"

    def test_passage_csv_end_to_end(self, onoff_file, capsys):
        code = main([
            "passage", onoff_file,
            "--source", "on == 2", "--target", "off == 2",
            "--t-points", "1", "2", "4",
            "--cdf", "--csv",
        ])
        assert code == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "t,density,cdf"
        assert len(out) >= 4
        for line in out[1:4]:
            cells = line.split(",")
            assert len(cells) == 3 and all(c != "" and c != "None" for c in cells)

    def test_transient_csv_end_to_end(self, onoff_file, capsys):
        code = main([
            "transient", onoff_file,
            "--source", "on == 2", "--target", "on == 2",
            "--t-points", "1", "5", "--csv",
        ])
        assert code == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "t,probability"
        assert len(out[1].split(",")) == 2

    def test_query_passage_csv(self, api_server_url, onoff_file, capsys):
        code = main([
            "query", "--url", api_server_url, "passage", onoff_file,
            "--source", "on == 2", "--target", "off == 2",
            "--t-points", "1", "2", "--csv",
        ])
        assert code == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "t,density"


class TestApiRouting:
    """Acceptance: the CLI routes through repro.api, not hand-built kernels."""

    def test_cli_does_not_construct_kernels_directly(self):
        import inspect

        import repro.cli as cli

        source = inspect.getsource(cli)
        for symbol in ("build_kernel", "explore(", "UEvaluator", "PassageTimeJob"):
            assert symbol not in source

    def test_passage_and_query_passage_agree(self, api_server_url, onoff_file, capsys):
        args = ["--source", "on == 2", "--target", "off == 2",
                "--t-points", "1", "2", "4", "--cdf", "--json"]
        assert main(["passage", onoff_file] + args) == 0
        local = json.loads(capsys.readouterr().out)
        assert main(["query", "--url", api_server_url, "passage", onoff_file] + args) == 0
        remote = json.loads(capsys.readouterr().out)
        assert np.allclose(np.asarray(local, dtype=float),
                           np.asarray(remote, dtype=float), atol=1e-10)
