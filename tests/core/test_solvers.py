"""Tests for the high-level PassageTimeSolver / TransientSolver API."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeJob, PassageTimeSolver, TransientJob, TransientSolver
from repro.distributions import Convolution, Erlang, Exponential, Uniform
from repro.smp import PassageTimeOptions, SMPBuilder


@pytest.fixture
def erlang_target():
    """Two-state kernel whose 0 -> 1 passage time is exactly Erlang(2, 3)."""
    b = SMPBuilder()
    b.add_transition(0, 1, 1.0, Erlang(2.0, 3))
    b.add_transition(1, 0, 1.0, Uniform(1.0, 2.0))
    return b.build(), Erlang(2.0, 3)


class TestPassageTimeSolver:
    def test_density_and_cdf_match_closed_form(self, erlang_target, t_grid):
        kernel, dist = erlang_target
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
        assert np.max(np.abs(solver.density(t_grid) - dist.pdf(t_grid))) < 1e-6
        assert np.max(np.abs(solver.cdf(t_grid) - dist.cdf(t_grid))) < 1e-6

    def test_solve_packages_everything(self, erlang_target, t_grid):
        kernel, dist = erlang_target
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
        result = solver.solve(t_grid)
        assert np.allclose(result.density, dist.pdf(t_grid), atol=1e-6)
        assert np.allclose(result.cdf, dist.cdf(t_grid), atol=1e-6)
        assert result.method == "euler"
        assert result.statistics["s_point_evaluations"] == 33 * len(t_grid)
        assert result.statistics["wall_clock_seconds"] > 0
        # Quantile interpolation from the packaged CDF (grid-resolution accuracy).
        q = result.quantile(0.5)
        assert dist.cdf(q) == pytest.approx(0.5, abs=0.05)

    def test_quantile_root_find(self, erlang_target):
        kernel, dist = erlang_target
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
        q90 = solver.quantile(0.9, 0.05, 12.0)
        assert dist.cdf(q90) == pytest.approx(0.9, abs=1e-5)
        with pytest.raises(ValueError):
            solver.quantile(1.5, 0.1, 10.0)
        with pytest.raises(ValueError):
            solver.quantile(0.9, 5.0, 1.0)
        with pytest.raises(ValueError):
            solver.quantile(0.999999, 0.1, 0.2)  # not bracketed

    def test_mean_and_moments(self, erlang_target):
        kernel, dist = erlang_target
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
        assert solver.mean() == pytest.approx(dist.mean(), rel=1e-5)
        moments = solver.moments(2)
        assert moments[0] == pytest.approx(1.0, abs=1e-8)
        assert moments[2] == pytest.approx(dist.variance() + dist.mean() ** 2, rel=1e-3)

    def test_direct_method_matches_iterative(self, erlang_target, t_grid):
        kernel, _ = erlang_target
        it = PassageTimeSolver(kernel, sources=[0], targets=[1], method="iterative")
        di = PassageTimeSolver(kernel, sources=[0], targets=[1], method="direct")
        assert np.allclose(it.density(t_grid), di.density(t_grid), atol=1e-8)

    def test_laguerre_inversion_option(self, erlang_target, t_grid):
        kernel, dist = erlang_target
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1], inversion="laguerre")
        assert np.max(np.abs(solver.density(t_grid) - dist.pdf(t_grid))) < 1e-5

    def test_cycle_time_through_source_in_targets(self):
        b = SMPBuilder()
        b.add_transition(0, 1, 1.0, Exponential(2.0))
        b.add_transition(1, 0, 1.0, Exponential(3.0))
        kernel = b.build()
        cycle = Convolution([Exponential(2.0), Exponential(3.0)])
        solver = PassageTimeSolver(kernel, sources=[0], targets=[0])
        ts = np.array([0.3, 0.8, 1.5, 3.0])
        recovered = solver.density(ts)
        expected = (
            6.0 * (np.exp(-2.0 * ts) - np.exp(-3.0 * ts))
        )  # closed-form hypoexponential density
        assert np.allclose(recovered, expected, atol=1e-6)
        assert solver.mean() == pytest.approx(cycle.mean(), rel=1e-5)

    def test_transform_cache_reused(self, erlang_target, t_grid):
        kernel, _ = erlang_target
        solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
        solver.density(t_grid)
        cached = len(solver._cache)
        solver.cdf(t_grid)  # same s-points: no new evaluations
        assert len(solver._cache) == cached

    def test_multiple_sources_alpha_weighting(self, branching_kernel):
        t = np.array([0.5, 1.0, 2.0])
        combined = PassageTimeSolver(branching_kernel, sources=[0, 1], targets=[4]).density(t)
        from repro.smp import source_weights

        alpha = source_weights(branching_kernel, [0, 1])
        separate = (
            alpha[0] * PassageTimeSolver(branching_kernel, sources=[0], targets=[4]).density(t)
            + alpha[1] * PassageTimeSolver(branching_kernel, sources=[1], targets=[4]).density(t)
        )
        assert np.allclose(combined, separate, atol=1e-7)

    def test_invalid_inputs(self, erlang_target):
        kernel, _ = erlang_target
        with pytest.raises(TypeError):
            PassageTimeSolver("not a kernel", sources=[0], targets=[1])
        with pytest.raises(ValueError):
            PassageTimeSolver(kernel, sources=[0], targets=[1], alpha=np.ones(5))
        with pytest.raises(ValueError):
            PassageTimeSolver(kernel, sources=[0], targets=[1], method="nonsense")


class TestTransientSolver:
    def test_two_state_ctmc_occupancy(self, ctmc_kernel):
        solver = TransientSolver(ctmc_kernel, sources=[0], targets=[1])
        t = np.array([0.05, 0.2, 0.5, 1.0, 2.0])
        expected = 0.4 * (1.0 - np.exp(-5.0 * t))
        assert np.max(np.abs(solver.probability(t) - expected)) < 1e-6
        assert solver.steady_state() == pytest.approx(0.4)

    def test_solve_reports_convergence_gap(self, ctmc_kernel):
        solver = TransientSolver(ctmc_kernel, sources=[0], targets=[1])
        result = solver.solve(np.array([0.1, 0.5, 1.0, 3.0]))
        assert result.steady_state == pytest.approx(0.4)
        assert result.convergence_gap() < 1e-4
        table = result.as_table()
        assert len(table) == 4 and table[0][0] == pytest.approx(0.1)

    def test_jobs_expose_kind_and_digest(self, ctmc_kernel):
        p = PassageTimeSolver(ctmc_kernel, sources=[0], targets=[1]).job
        t = TransientSolver(ctmc_kernel, sources=[0], targets=[1]).job
        assert isinstance(p, PassageTimeJob) and p.kind() == "passage"
        assert isinstance(t, TransientJob) and t.kind() == "transient"
        assert p.digest() != t.digest()
        # Digest depends on the targets.
        other = PassageTimeSolver(ctmc_kernel, sources=[0], targets=[0]).job
        assert other.digest() != p.digest()

    def test_job_pickles_without_evaluator(self, ctmc_kernel):
        import pickle

        job = PassageTimeSolver(ctmc_kernel, sources=[0], targets=[1]).job
        _ = job.evaluator  # force lazy construction
        clone = pickle.loads(pickle.dumps(job))
        assert clone.evaluate(1.0 + 1j) == pytest.approx(job.evaluate(1.0 + 1j))

    def test_options_propagate(self, ctmc_kernel):
        opts = PassageTimeOptions(epsilon=1e-10, max_iterations=500)
        solver = TransientSolver(ctmc_kernel, sources=[0], targets=[1], options=opts)
        assert solver.job.options.epsilon == 1e-10
