"""Tests for the result container objects."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeResult, TransientResult
from repro.distributions import Erlang


@pytest.fixture
def erlang_result():
    dist = Erlang(2.0, 3)
    t = np.linspace(0.05, 8.0, 160)
    return PassageTimeResult(t_points=t, density=dist.pdf(t), cdf=dist.cdf(t)), dist


class TestPassageTimeResult:
    def test_probability_between(self, erlang_result):
        result, dist = erlang_result
        assert result.probability_between(1.0, 3.0) == pytest.approx(
            dist.cdf(3.0) - dist.cdf(1.0), abs=1e-3
        )
        assert result.probability_between(0.0, 100.0) <= 1.0
        with pytest.raises(ValueError):
            result.probability_between(3.0, 1.0)

    def test_quantile_interpolation(self, erlang_result):
        result, dist = erlang_result
        q = result.quantile(0.75)
        assert dist.cdf(q) == pytest.approx(0.75, abs=5e-3)
        with pytest.raises(ValueError):
            result.quantile(0.0)
        with pytest.raises(ValueError):
            result.quantile(0.999999)  # outside the covered CDF range

    def test_mean_and_normalisation(self, erlang_result):
        result, dist = erlang_result
        assert result.mean_estimate() == pytest.approx(dist.mean(), rel=0.02)
        assert result.normalisation_defect() < 0.01

    def test_as_table(self, erlang_result):
        result, _ = erlang_result
        table = result.as_table()
        assert len(table) == len(result.t_points)
        assert table[0][0] == pytest.approx(0.05)
        assert all(len(row) == 3 for row in table)

    def test_density_only_result(self):
        t = np.linspace(0.1, 5, 20)
        result = PassageTimeResult(t_points=t, density=Erlang(1.0, 2).pdf(t))
        with pytest.raises(ValueError):
            result.quantile(0.5)
        with pytest.raises(ValueError):
            result.probability_between(1, 2)
        assert result.mean_estimate() > 0

    def test_cdf_only_result(self):
        t = np.linspace(0.1, 10, 50)
        result = PassageTimeResult(t_points=t, cdf=Erlang(1.0, 2).cdf(t))
        with pytest.raises(ValueError):
            result.mean_estimate()
        with pytest.raises(ValueError):
            result.normalisation_defect()
        assert result.quantile(0.5) > 0


class TestTransientResult:
    def test_convergence_gap(self):
        t = np.array([1.0, 10.0, 100.0])
        result = TransientResult(
            t_points=t, probability=np.array([0.9, 0.55, 0.501]), steady_state=0.5
        )
        assert result.convergence_gap() == pytest.approx(0.001)
        assert result.as_table()[-1] == (100.0, pytest.approx(0.501))

    def test_gap_without_steady_state(self):
        result = TransientResult(t_points=[1.0], probability=[0.4])
        assert result.convergence_gap() is None
