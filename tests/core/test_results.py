"""Tests for the result container objects."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeResult, TransientResult
from repro.distributions import Erlang


@pytest.fixture
def erlang_result():
    dist = Erlang(2.0, 3)
    t = np.linspace(0.05, 8.0, 160)
    return PassageTimeResult(t_points=t, density=dist.pdf(t), cdf=dist.cdf(t)), dist


class TestPassageTimeResult:
    def test_probability_between(self, erlang_result):
        result, dist = erlang_result
        assert result.probability_between(1.0, 3.0) == pytest.approx(
            dist.cdf(3.0) - dist.cdf(1.0), abs=1e-3
        )
        assert result.probability_between(0.0, 100.0) <= 1.0
        with pytest.raises(ValueError):
            result.probability_between(3.0, 1.0)

    def test_quantile_interpolation(self, erlang_result):
        result, dist = erlang_result
        q = result.quantile(0.75)
        assert dist.cdf(q) == pytest.approx(0.75, abs=5e-3)
        with pytest.raises(ValueError):
            result.quantile(0.0)
        with pytest.raises(ValueError):
            result.quantile(0.999999)  # outside the covered CDF range

    def test_quantile_on_oscillating_cdf(self):
        # Euler-inversion oscillation can leave the sampled CDF locally
        # non-monotone; raw np.interp over such samples silently returns a
        # wrong t.  The quantile must interpolate the running-max envelope.
        t = np.array([1.0, 2.0, 3.0, 4.0])
        cdf = np.array([0.1, 0.5, 0.45, 0.8])  # dips at t=3
        result = PassageTimeResult(t_points=t, cdf=cdf)
        # q inside the dip: the envelope is flat at 0.5 over [2, 3], so any
        # q <= 0.5 must resolve within [1, 2] (the rising segment), never
        # inside the decreasing stretch.
        assert result.quantile(0.47) == pytest.approx(
            np.interp(0.47, [0.1, 0.5], [1.0, 2.0])
        )
        # q above the dip interpolates the final rising segment from the
        # envelope value 0.5, not from the raw sample 0.45.
        assert result.quantile(0.6) == pytest.approx(
            np.interp(0.6, [0.5, 0.8], [3.0, 4.0])
        )
        # Monotonicity of the quantile function over a fine sweep.
        qs = np.linspace(0.11, 0.79, 40)
        ts = [result.quantile(q) for q in qs]
        assert all(a <= b + 1e-12 for a, b in zip(ts, ts[1:]))

    def test_quantile_out_of_range_uses_envelope_bounds(self):
        t = np.array([1.0, 2.0, 3.0])
        result = PassageTimeResult(t_points=t, cdf=np.array([0.3, 0.6, 0.55]))
        with pytest.raises(ValueError, match=r"\[0.3, 0.6\]"):
            result.quantile(0.7)  # the raw final sample 0.55 is not the cap
        with pytest.raises(ValueError):
            result.quantile(0.2)

    def test_mean_and_normalisation(self, erlang_result):
        result, dist = erlang_result
        assert result.mean_estimate() == pytest.approx(dist.mean(), rel=0.02)
        assert result.normalisation_defect() < 0.01

    def test_as_table(self, erlang_result):
        result, _ = erlang_result
        table = result.as_table()
        assert len(table) == len(result.t_points)
        assert table[0][0] == pytest.approx(0.05)
        assert all(len(row) == 3 for row in table)

    def test_density_only_result(self):
        t = np.linspace(0.1, 5, 20)
        result = PassageTimeResult(t_points=t, density=Erlang(1.0, 2).pdf(t))
        with pytest.raises(ValueError):
            result.quantile(0.5)
        with pytest.raises(ValueError):
            result.probability_between(1, 2)
        assert result.mean_estimate() > 0

    def test_cdf_only_result(self):
        t = np.linspace(0.1, 10, 50)
        result = PassageTimeResult(t_points=t, cdf=Erlang(1.0, 2).cdf(t))
        with pytest.raises(ValueError):
            result.mean_estimate()
        with pytest.raises(ValueError):
            result.normalisation_defect()
        assert result.quantile(0.5) > 0


class TestTransientResult:
    def test_convergence_gap(self):
        t = np.array([1.0, 10.0, 100.0])
        result = TransientResult(
            t_points=t, probability=np.array([0.9, 0.55, 0.501]), steady_state=0.5
        )
        assert result.convergence_gap() == pytest.approx(0.001)
        assert result.as_table()[-1] == (100.0, pytest.approx(0.501))

    def test_gap_without_steady_state(self):
        result = TransientResult(t_points=[1.0], probability=[0.4])
        assert result.convergence_gap() is None
