"""Batch-vs-scalar equivalence of the s-point transform-evaluation engine.

The batched engine must be a drop-in replacement for the scalar loops: on the
iterative path it applies the *same* truncation rule per s-point, so values
match the scalar functions to float associativity; policy-routed points come
from the sparse-LU direct solve and must match the direct oracle.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    Convolution,
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Mixture,
    Pareto,
    Scaled,
    Shifted,
    Uniform,
    Weibull,
)
from repro.smp import (
    PassageTimeOptions,
    SMPBuilder,
    SPointPolicy,
    passage_transform,
    passage_transform_batch,
    passage_transform_direct,
    passage_transform_direct_batch,
    passage_transform_vector,
    passage_transform_vector_batch,
    source_weights,
    transient_transform,
    transient_transform_batch,
)
from tests.smp.conftest import random_kernel

# One representative of every distribution family shipped with the library.
FAMILIES = {
    "exponential": Exponential(1.5),
    "erlang": Erlang(2.0, 3),
    "gamma": Gamma(1.7, 2.0),
    "uniform": Uniform(0.5, 2.0),
    "deterministic": Deterministic(0.8),
    "weibull": Weibull(1.4, 1.0),
    "lognormal": LogNormal(0.0, 0.5),
    "pareto": Pareto(2.5, 0.5),
    "hyperexponential": HyperExponential([0.4, 0.6], [1.0, 3.0]),
    "mixture": Mixture([Uniform(0.5, 2.0), Erlang(1.0, 2)], [0.8, 0.2]),
    "convolution": Convolution([Exponential(2.0), Deterministic(0.3)]),
    "scaled": Scaled(Exponential(1.0), 0.5),
    "shifted": Shifted(Exponential(2.0), 0.25),
}

S_GRID = np.array([0.4 + 0.0j, 0.8 + 2.5j, 1.5 - 1.0j, 0.1 + 6.0j, 2.5 + 0.5j])

#: forces the pure batched-iterative path (no direct routing, no fallback)
ITERATIVE_ONLY = SPointPolicy(predicted_iteration_limit=10**9, fallback_to_direct=False)


def family_kernel(dist):
    """A 3-state ring where one transition carries the family under test."""
    b = SMPBuilder()
    for name in "abc":
        b.add_state(name)
    b.add_transition("a", "b", 1.0, dist)
    b.add_transition("b", "c", 0.7, Exponential(2.0))
    b.add_transition("b", "a", 0.3, Erlang(1.5, 2))
    b.add_transition("c", "a", 1.0, Uniform(0.2, 1.2))
    return b.build()


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_batch_matches_scalar_per_family(family):
    kernel = family_kernel(FAMILIES[family])
    alpha = source_weights(kernel, [0])
    batch, diags = passage_transform_batch(
        kernel, alpha, [2], S_GRID, policy=ITERATIVE_ONLY
    )
    for t, s in enumerate(S_GRID):
        scalar, scalar_diag = passage_transform(kernel, alpha, [2], complex(s))
        assert batch[t] == pytest.approx(scalar, abs=1e-10)
        assert diags[t].iterations == scalar_diag.iterations
        assert diags[t].matvec_count == scalar_diag.matvec_count


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_adaptive_batch_matches_direct_per_family(family):
    kernel = family_kernel(FAMILIES[family])
    alpha = source_weights(kernel, [0]).astype(complex)
    batch, _ = passage_transform_batch(kernel, alpha, [2], S_GRID)
    direct = passage_transform_direct_batch(kernel, [2], S_GRID)
    assert np.allclose(batch, direct @ alpha, atol=2e-6)


def test_direct_batch_matches_scalar_direct():
    kernel = random_kernel(np.random.default_rng(5), 10)
    vecs = passage_transform_direct_batch(kernel, [3, 7], S_GRID)
    for t, s in enumerate(S_GRID):
        assert np.allclose(
            vecs[t], passage_transform_direct(kernel, [3, 7], complex(s)), atol=1e-10
        )


def test_vector_batch_matches_scalar_on_random_kernels():
    for seed in range(5):
        kernel = random_kernel(np.random.default_rng(seed), 4 + seed * 2)
        target = [kernel.n_states - 1]
        batch, diags = passage_transform_vector_batch(
            kernel, target, S_GRID, policy=ITERATIVE_ONLY
        )
        for t, s in enumerate(S_GRID):
            scalar, scalar_diag = passage_transform_vector(kernel, target, complex(s))
            assert np.allclose(batch[t], scalar, atol=1e-10)
            assert diags[t].iterations == scalar_diag.iterations


def test_transient_batch_matches_scalar(branching_kernel):
    alpha = source_weights(branching_kernel, [0])
    targets = [3, 4]
    batch, diags = transient_transform_batch(
        branching_kernel, alpha, targets, S_GRID, policy=ITERATIVE_ONLY
    )
    assert len(diags) == len(S_GRID)
    for t, s in enumerate(S_GRID):
        scalar = transient_transform(branching_kernel, alpha, targets, complex(s))
        assert batch[t] == pytest.approx(scalar, abs=1e-10)


def test_transient_batch_direct_solver(ctmc_kernel):
    alpha = source_weights(ctmc_kernel, [0])
    batch, _ = transient_transform_batch(
        ctmc_kernel, alpha, [1], S_GRID, solver="direct"
    )
    for t, s in enumerate(S_GRID):
        scalar = transient_transform(ctmc_kernel, alpha, [1], complex(s), solver="direct")
        assert batch[t] == pytest.approx(scalar, abs=1e-9)


def test_transient_batch_rejects_s_zero(ctmc_kernel):
    alpha = source_weights(ctmc_kernel, [0])
    with pytest.raises(ValueError, match="pole"):
        transient_transform_batch(ctmc_kernel, alpha, [1], [0.5 + 0j, 0.0 + 0j])


def test_policy_routes_small_s_to_direct(two_state_kernel):
    """Near s = 0 the predicted iteration count explodes; the policy must hand
    those points to the LU solver, and the result must still be the passage
    probability (~1)."""
    alpha = source_weights(two_state_kernel, [0])
    tiny = np.array([1e-9 + 0j, 1e-8 + 1e-8j])
    values, diags = passage_transform_batch(
        two_state_kernel, alpha, [1], tiny, policy=SPointPolicy(predicted_iteration_limit=50)
    )
    assert all(d.solver == "direct" for d in diags)
    assert np.allclose(values, 1.0, atol=1e-5)


def test_policy_mixed_routing_preserves_order(ring_kernel):
    """A grid mixing easy and hard points comes back in input order with the
    per-point solver recorded in the diagnostics."""
    alpha = source_weights(ring_kernel, [0])
    mixed = np.array([2.0 + 1.0j, 1e-9 + 0j, 1.5 - 2.0j, 1e-10 + 1e-9j])
    values, diags = passage_transform_batch(
        ring_kernel, alpha, [2], mixed, policy=SPointPolicy(predicted_iteration_limit=200)
    )
    solvers = [d.solver for d in diags]
    assert solvers[0] == "iterative" and solvers[2] == "iterative"
    assert solvers[1] == "direct" and solvers[3] == "direct"
    for t in (0, 2):
        scalar, _ = passage_transform(ring_kernel, alpha, [2], complex(mixed[t]))
        assert values[t] == pytest.approx(scalar, abs=1e-10)


def test_fallback_to_direct_on_iteration_cap(branching_kernel):
    """Points that exhaust max_iterations are re-solved exactly instead of
    returning a silently truncated sum.  State 4 is only visited on 40% of
    the cycles through the branching kernel, so the sum needs far more than
    five transitions to converge."""
    alpha = source_weights(branching_kernel, [0])
    s = np.array([0.001 + 0.001j])
    options = PassageTimeOptions(max_iterations=5)
    values, diags = passage_transform_batch(
        branching_kernel, alpha, [4], s, options,
        policy=SPointPolicy(predicted_iteration_limit=10**9, fallback_to_direct=True),
    )
    assert diags[0].solver == "direct-fallback"
    direct = passage_transform_direct(branching_kernel, [4], complex(s[0]))
    assert values[0] == pytest.approx(np.dot(alpha, direct), abs=1e-10)


def test_empty_grid(two_state_kernel):
    alpha = source_weights(two_state_kernel, [0])
    values, diags = passage_transform_batch(two_state_kernel, alpha, [1], [])
    assert values.size == 0 and diags == []


def test_policy_validation():
    with pytest.raises(ValueError):
        SPointPolicy(predicted_iteration_limit=0)
