"""Tests for the iterative passage-time algorithm and the direct baseline."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Convolution, Erlang, Exponential, Uniform
from repro.smp import (
    PassageTimeOptions,
    passage_transform,
    passage_transform_direct,
    passage_transform_vector,
    source_weights,
)
from tests.smp.conftest import random_kernel

S_POINTS = [0.5 + 0.0j, 0.3 + 2.1j, 4.0 - 1.5j, 0.05 + 9.0j]


class TestAgainstClosedForms:
    def test_single_hop_equals_sojourn_transform(self, two_state_kernel):
        """Passage 0 -> 1 in the two-state kernel is exactly the Erlang sojourn."""
        erlang = Erlang(2.0, 3)
        alpha = source_weights(two_state_kernel, [0])
        for s in S_POINTS:
            value, diag = passage_transform(two_state_kernel, alpha, [1], s)
            assert diag.converged
            assert value == pytest.approx(erlang.lst(s), rel=1e-8, abs=1e-10)

    def test_cycle_time_is_convolution(self, two_state_kernel):
        """Passage 0 -> 0 is the convolution of both sojourns (the initial U
        term of Eq. 9 is what makes cycle times non-zero)."""
        cycle = Convolution([Erlang(2.0, 3), Uniform(1.0, 2.0)])
        alpha = source_weights(two_state_kernel, [0])
        for s in S_POINTS:
            value, _ = passage_transform(two_state_kernel, alpha, [0], s)
            assert value == pytest.approx(cycle.lst(s), rel=1e-8, abs=1e-10)

    def test_ring_passage_is_convolution_of_segments(self, ring_kernel):
        """Passage p -> s around the deterministic ring is the convolution of
        the three intermediate sojourns."""
        conv = Convolution([Exponential(1.0), Erlang(2.0, 2), Uniform(0.25, 0.75)])
        alpha = source_weights(ring_kernel, [0])
        s = 0.8 + 1.3j
        value, _ = passage_transform(ring_kernel, alpha, [3], s)
        # p->q->r->s traverses Exponential, Erlang, Deterministic... note the
        # passage *into* s happens when the r -> s transition fires, so the
        # segments are the sojourns in p, q and r.
        conv = Convolution([Exponential(1.0), Erlang(2.0, 2), __import__("repro").distributions.Deterministic(0.5)])
        assert value == pytest.approx(conv.lst(s), rel=1e-8, abs=1e-10)

    def test_exponential_race_first_passage(self):
        """CTMC sanity check: 0 -> {2} through a probabilistic branch.

        From state 0 the chain moves to 2 directly with probability 0.4 or via
        state 1 with probability 0.6; all holding times are Exp(1).  The
        transform is 0.4/(1+s) + 0.6/(1+s)^2.
        """
        from repro.smp import SMPBuilder

        b = SMPBuilder()
        b.add_transition(0, 2, 0.4, Exponential(1.0))
        b.add_transition(0, 1, 0.6, Exponential(1.0))
        b.add_transition(1, 2, 1.0, Exponential(1.0))
        b.add_transition(2, 0, 1.0, Exponential(1.0))
        k = b.build()
        alpha = source_weights(k, [0])
        for s in S_POINTS:
            value, _ = passage_transform(k, alpha, [2], s)
            expected = 0.4 / (1 + s) + 0.6 / (1 + s) ** 2
            assert value == pytest.approx(expected, rel=1e-8, abs=1e-10)


class TestIterativeMatchesDirect:
    @pytest.mark.parametrize("s", S_POINTS)
    def test_vector_forms_agree(self, branching_kernel, s):
        iterative, diag = passage_transform_vector(branching_kernel, [4], s)
        direct = passage_transform_direct(branching_kernel, [4], s)
        assert diag.converged
        assert np.allclose(iterative, direct, atol=1e-8)

    @pytest.mark.parametrize("targets", [[0], [2, 4], [1, 2, 3]])
    def test_multiple_targets_agree(self, branching_kernel, targets):
        s = 0.6 + 1.7j
        iterative, _ = passage_transform_vector(branching_kernel, targets, s)
        direct = passage_transform_direct(branching_kernel, targets, s)
        assert np.allclose(iterative, direct, atol=1e-8)

    def test_random_kernels_agree(self, rng):
        for n in (5, 12, 25):
            kernel = random_kernel(rng, n)
            targets = [int(rng.integers(0, n))]
            s = complex(rng.uniform(0.05, 2.0), rng.uniform(-5.0, 5.0))
            iterative, diag = passage_transform_vector(kernel, targets, s)
            direct = passage_transform_direct(kernel, targets, s)
            assert diag.converged
            assert np.allclose(iterative, direct, atol=1e-7)

    def test_scalar_form_is_alpha_weighted_vector_form(self, branching_kernel):
        s = 0.4 + 0.9j
        alpha = source_weights(branching_kernel, [0, 1, 2])
        scalar, _ = passage_transform(branching_kernel, alpha, [4], s)
        vector = passage_transform_direct(branching_kernel, [4], s)
        assert scalar == pytest.approx(np.dot(alpha, vector), rel=1e-7)


class TestConvergenceControls:
    def test_tighter_epsilon_costs_more_iterations(self, branching_kernel):
        s = 0.05 + 0.3j
        alpha = source_weights(branching_kernel, [0])
        loose = PassageTimeOptions(epsilon=1e-4)
        tight = PassageTimeOptions(epsilon=1e-12)
        _, d_loose = passage_transform(branching_kernel, alpha, [4], s, loose)
        _, d_tight = passage_transform(branching_kernel, alpha, [4], s, tight)
        assert d_tight.iterations >= d_loose.iterations
        assert d_loose.converged and d_tight.converged

    def test_iteration_cap_reports_unconverged(self, branching_kernel):
        s = 0.001 + 0.01j
        alpha = source_weights(branching_kernel, [0])
        capped = PassageTimeOptions(epsilon=1e-14, max_iterations=3)
        _, diag = passage_transform(branching_kernel, alpha, [4], s, capped)
        assert not diag.converged
        assert diag.iterations == 3

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            PassageTimeOptions(epsilon=0.0)
        with pytest.raises(ValueError):
            PassageTimeOptions(max_iterations=0)
        with pytest.raises(ValueError):
            PassageTimeOptions(consecutive=0)

    def test_bad_alpha_rejected(self, branching_kernel):
        with pytest.raises(ValueError):
            passage_transform(branching_kernel, np.ones(5), [1], 1.0)
        with pytest.raises(ValueError):
            passage_transform(branching_kernel, np.ones(3) / 3, [1], 1.0)

    def test_bad_targets_rejected(self, branching_kernel):
        alpha = source_weights(branching_kernel, [0])
        with pytest.raises(ValueError):
            passage_transform(branching_kernel, alpha, [], 1.0)
        with pytest.raises(ValueError):
            passage_transform(branching_kernel, alpha, [77], 1.0)
        with pytest.raises(ValueError):
            passage_transform_direct(branching_kernel, [99], 1.0)


class TestTransformProperties:
    def test_transform_at_zero_is_reachability_probability(self, branching_kernel):
        """L(0) = P(target is ever reached) = 1 for an irreducible SMP."""
        value = passage_transform_direct(branching_kernel, [4], 1e-12)
        assert np.allclose(value, 1.0, atol=1e-6)

    def test_magnitude_never_exceeds_one(self, branching_kernel, rng):
        alpha = source_weights(branching_kernel, [0])
        for _ in range(10):
            s = complex(rng.uniform(0, 3), rng.uniform(-10, 10))
            value, _ = passage_transform(branching_kernel, alpha, [3], s)
            assert abs(value) <= 1.0 + 1e-9

    def test_conjugate_symmetry(self, branching_kernel):
        alpha = source_weights(branching_kernel, [1])
        s = 0.7 + 3.3j
        v1, _ = passage_transform(branching_kernel, alpha, [4], s)
        v2, _ = passage_transform(branching_kernel, alpha, [4], np.conj(s))
        assert v2 == pytest.approx(np.conj(v1), rel=1e-9)
