"""Tests for the SMP kernel representation and its builder."""
from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.distributions import Erlang, Exponential, Mixture, Uniform
from repro.smp import SMPBuilder, SMPKernel


class TestBuilder:
    def test_named_states_resolve(self, two_state_kernel):
        assert two_state_kernel.n_states == 2
        assert two_state_kernel.state_index("a") == 0
        assert two_state_kernel.state_index("b") == 1
        with pytest.raises(KeyError):
            two_state_kernel.state_index("missing")

    def test_parallel_transitions_merge_into_mixture(self):
        b = SMPBuilder()
        b.add_state("x")
        b.add_state("y")
        b.add_transition("x", "y", 0.25, Exponential(1.0))
        b.add_transition("x", "y", 0.75, Erlang(2.0, 2))
        b.add_transition("y", "x", 1.0, Exponential(3.0))
        k = b.build()
        assert k.n_transitions == 2
        # The merged transition has total probability 1 and a Mixture sojourn.
        idx = np.where((k.src == 0) & (k.dst == 1))[0][0]
        assert k.probs[idx] == pytest.approx(1.0)
        dist = k.distributions[k.dist_index[idx]]
        assert isinstance(dist, Mixture)
        assert np.allclose(dist.weights, [0.25, 0.75])

    def test_normalise_option_rescales_weights(self):
        b = SMPBuilder()
        b.add_transition(0, 1, 3.0, Exponential(1.0))
        b.add_transition(0, 0, 1.0, Exponential(1.0))
        b.add_transition(1, 0, 5.0, Exponential(2.0))
        k = b.build(normalise=True)
        P = k.embedded_matrix().toarray()
        assert P[0, 1] == pytest.approx(0.75)
        assert P[0, 0] == pytest.approx(0.25)
        assert P[1, 0] == pytest.approx(1.0)

    def test_unnormalised_rows_rejected(self):
        b = SMPBuilder()
        b.add_transition(0, 1, 0.5, Exponential(1.0))
        b.add_transition(1, 0, 1.0, Exponential(1.0))
        with pytest.raises(ValueError, match="sum to 1"):
            b.build()

    def test_state_without_outgoing_transitions_rejected(self):
        b = SMPBuilder(n_states=3)
        b.add_transition(0, 1, 1.0, Exponential(1.0))
        b.add_transition(1, 0, 1.0, Exponential(1.0))
        with pytest.raises(ValueError, match="outgoing"):
            b.build()

    def test_duplicate_state_name_rejected(self):
        b = SMPBuilder()
        b.add_state("x")
        with pytest.raises(ValueError):
            b.add_state("x")

    def test_zero_probability_transitions_dropped(self):
        b = SMPBuilder()
        b.add_transition(0, 1, 1.0, Exponential(1.0))
        b.add_transition(0, 1, 0.0, Erlang(1.0, 2))
        b.add_transition(1, 0, 1.0, Exponential(1.0))
        k = b.build()
        assert k.n_transitions == 2
        assert not isinstance(k.distributions[0], Mixture)

    def test_non_distribution_rejected(self):
        b = SMPBuilder()
        with pytest.raises(TypeError):
            b.add_transition(0, 1, 1.0, "not a distribution")

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            SMPBuilder().build()


class TestKernel:
    def test_from_arrays_dedupes_distributions(self):
        d = Exponential(1.0)
        k = SMPKernel.from_arrays(
            2, [(0, 1, 1.0, d), (1, 0, 1.0, Exponential(1.0))]
        )
        assert k.n_distributions == 1

    def test_embedded_matrix_row_stochastic(self, branching_kernel):
        P = branching_kernel.embedded_matrix()
        assert isinstance(P, sparse.csr_matrix)
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_mean_sojourn_times(self, two_state_kernel):
        m = two_state_kernel.mean_sojourn_times()
        assert m[0] == pytest.approx(1.5)   # Erlang(2, 3)
        assert m[1] == pytest.approx(1.5)   # Uniform(1, 2)

    def test_u_matrix_values(self, two_state_kernel):
        s = 0.4 + 1.1j
        U = two_state_kernel.u_matrix(s).toarray()
        assert U[0, 1] == pytest.approx(Erlang(2.0, 3).lst(s))
        assert U[1, 0] == pytest.approx(Uniform(1.0, 2.0).lst(s))
        assert U[0, 0] == 0 and U[1, 1] == 0

    def test_u_matrix_at_zero_is_embedded_matrix(self, branching_kernel):
        U0 = branching_kernel.u_matrix(0.0).toarray().real
        P = branching_kernel.embedded_matrix().toarray()
        assert np.allclose(U0, P)

    def test_u_prime_zeroes_target_rows(self, branching_kernel):
        ev = branching_kernel.evaluator()
        mask = np.zeros(branching_kernel.n_states, dtype=bool)
        mask[[1, 3]] = True
        s = 0.2 + 0.9j
        U = ev.u(s).toarray()
        Up = ev.u_prime(s, mask).toarray()
        assert np.allclose(Up[mask], 0.0)
        assert np.allclose(Up[~mask], U[~mask])

    def test_sojourn_lst_is_row_sum(self, branching_kernel):
        ev = branching_kernel.evaluator()
        s = 1.3 + 0.4j
        h = ev.sojourn_lst(s)
        assert np.allclose(h, ev.u(s).toarray().sum(axis=1))

    def test_evaluator_caches_per_s(self, two_state_kernel):
        ev = two_state_kernel.evaluator()
        s = 0.5 + 2.0j
        d1 = ev._u_data(s)
        d2 = ev._u_data(s)
        assert d1 is d2  # same cached array

    def test_duplicate_transitions_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SMPKernel.from_arrays(
                2,
                [
                    (0, 1, 0.5, Exponential(1.0)),
                    (0, 1, 0.5, Erlang(1.0, 2)),
                    (1, 0, 1.0, Exponential(1.0)),
                ],
            )

    def test_invalid_indices_rejected(self):
        with pytest.raises(ValueError):
            SMPKernel.from_arrays(2, [(0, 5, 1.0, Exponential(1.0)), (1, 0, 1.0, Exponential(1.0))])

    def test_states_matching(self, branching_kernel):
        assert branching_kernel.states_matching(lambda n: n in {"s0", "s4"}) == [0, 4]

    def test_bad_state_names_length(self):
        with pytest.raises(ValueError):
            SMPKernel.from_arrays(
                2,
                [(0, 1, 1.0, Exponential(1.0)), (1, 0, 1.0, Exponential(1.0))],
                state_names=["only-one"],
            )
