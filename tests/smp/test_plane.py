"""Kernel-plane round trips: build once, attach zero-copy, evaluate identically.

The plane is the shared-memory image of a kernel's CSR projection (plus the
factored engine's per-distribution slices).  These tests pin down the three
contract points the execution stack depends on: the handle is tiny and
picklable, attaching reconstructs arrays as *views* into the buffer (no
copies), and an evaluator rebuilt from a plane computes bit-identical
transform values.
"""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.jobs import PassageTimeJob
from repro.smp import (
    KernelPlane,
    PlaneHandle,
    PlaneStore,
    kernel_content_digest,
    source_weights,
)
from tests.smp.conftest import random_kernel


@pytest.fixture
def kernel(rng):
    return random_kernel(rng, 12, density=0.3)


@pytest.fixture
def evaluator(kernel):
    return kernel.evaluator()


S_POINTS = np.array([0.5 + 1.0j, 1.5 + 2.0j, 2.0 - 0.5j, 0.1 + 7.0j])


def _job(kernel):
    return PassageTimeJob(
        kernel=kernel, alpha=source_weights(kernel, [0]), targets=[1]
    )


class TestShmPlane:
    def test_handle_is_tiny_and_picklable(self, evaluator):
        plane = KernelPlane.build(evaluator)
        try:
            payload = pickle.dumps(plane.handle())
            assert len(payload) < 512
            assert pickle.loads(payload) == plane.handle()
        finally:
            plane.unlink()

    def test_attach_is_zero_copy(self, evaluator):
        plane = KernelPlane.build(evaluator)
        try:
            attached = plane.handle().attach()
            for name, array in attached.arrays.items():
                assert not array.flags["OWNDATA"], name
            np.testing.assert_array_equal(
                attached.arrays["csr_probs"], evaluator._csr_probs
            )
            np.testing.assert_array_equal(
                attached.arrays["indptr"], evaluator._indptr
            )
            attached.close()
        finally:
            plane.unlink()

    def test_digest_round_trip(self, kernel, evaluator):
        plane = KernelPlane.build(evaluator)
        try:
            attached = plane.handle().attach()
            assert attached.digest == kernel_content_digest(kernel)
            # The reconstructed kernel reports the same content digest, so
            # JobSpec.build and checkpoint keys agree across processes.
            assert kernel_content_digest(attached.kernel) == attached.digest
            attached.close()
        finally:
            plane.unlink()

    def test_attached_evaluator_matches_original(self, kernel, evaluator):
        reference, _ = _job(kernel).evaluate_batch(S_POINTS)
        plane = KernelPlane.build(evaluator)
        try:
            attached = plane.handle().attach()
            job = _job(attached.kernel)
            job.attach_evaluator(attached.evaluator)
            values, _ = job.evaluate_batch(S_POINTS)
            np.testing.assert_allclose(values, reference, rtol=0.0, atol=1e-12)
            attached.close()
        finally:
            plane.unlink()

    def test_factored_slices_prefilled(self, kernel, evaluator):
        factored = evaluator.factored()
        factored.prewarm()
        factored.col_structure()
        plane = KernelPlane.build(evaluator, include_factored=True)
        try:
            attached = plane.handle().attach()
            assert attached.factored
            rebuilt = attached.evaluator._factored
            assert rebuilt is not None
            pair_src, pair_dist, pair_of_edge = factored._row_pairs()
            np.testing.assert_array_equal(rebuilt._row_pair_cache[0], pair_src)
            np.testing.assert_array_equal(rebuilt._row_pair_cache[1], pair_dist)
            np.testing.assert_array_equal(rebuilt._row_pair_cache[2], pair_of_edge)
            col, rebuilt_col = factored.col_structure(), rebuilt.col_structure()
            assert rebuilt_col.n_pairs == col.n_pairs
            np.testing.assert_array_equal(
                rebuilt_col.matrix.toarray(), col.matrix.toarray()
            )
            attached.close()
        finally:
            plane.unlink()

    def test_unlink_is_idempotent(self, evaluator):
        plane = KernelPlane.build(evaluator)
        plane.unlink()
        plane.unlink()
        with pytest.raises(FileNotFoundError):
            plane.handle().attach()


class TestFilePlane:
    def test_file_backing_round_trip(self, kernel, evaluator, tmp_path):
        path = tmp_path / "kernel.plane"
        plane = KernelPlane.build(evaluator, backing="file", path=path)
        assert path.exists()
        attached = plane.handle().attach()
        job = _job(attached.kernel)
        job.attach_evaluator(attached.evaluator)
        reference, _ = _job(kernel).evaluate_batch(S_POINTS)
        values, _ = job.evaluate_batch(S_POINTS)
        np.testing.assert_allclose(values, reference, rtol=0.0, atol=1e-12)
        attached.close()
        plane.unlink()
        assert not path.exists()

    def test_file_backing_requires_path(self, evaluator):
        with pytest.raises(ValueError):
            KernelPlane.build(evaluator, backing="file")

    def test_unknown_backing_rejected(self, evaluator):
        with pytest.raises(ValueError):
            KernelPlane.build(evaluator, backing="carrier-pigeon")
        with pytest.raises(ValueError):
            PlaneHandle("carrier-pigeon", "x").attach()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.plane"
        path.write_bytes(b"not a plane at all, sorry" * 4)
        with pytest.raises(ValueError, match="magic"):
            PlaneHandle("file", str(path)).attach()


class TestPlaneStore:
    def test_export_attach_by_digest(self, kernel, evaluator, tmp_path):
        store = PlaneStore(tmp_path / "planes")
        handle = store.export(evaluator)
        digest = kernel_content_digest(kernel)
        assert store.digests() == [digest]
        assert store.size_bytes() > 0
        attached = store.attach(digest)
        assert attached.digest == digest
        attached.close()
        # Idempotent: a second export reuses the existing file.
        assert store.export(evaluator) == handle

    def test_factored_export_is_a_separate_file(self, evaluator, tmp_path):
        store = PlaneStore(tmp_path / "planes")
        evaluator.factored().prewarm()
        evaluator.factored().col_structure()
        store.export(evaluator, include_factored=False)
        store.export(evaluator, include_factored=True)
        assert len(list(store.directory.glob("*.plane"))) == 2
        # csr attach prefers the csr file but falls back to the factored one.
        digest = store.digests()[0]
        store.path_for(digest, factored=False).unlink()
        attached = store.attach(digest)
        assert attached.factored
        attached.close()

    def test_missing_digest_raises(self, tmp_path):
        store = PlaneStore(tmp_path / "planes")
        with pytest.raises(FileNotFoundError):
            store.attach("0" * 64)
