"""Helpers shared by the smp test modules (the kernel fixtures live in tests/conftest.py)."""
from __future__ import annotations

import numpy as np

from repro.distributions import Deterministic, Erlang, Exponential, Uniform
from repro.smp import SMPBuilder


def random_kernel(rng: np.random.Generator, n_states: int, density: float = 0.35):
    """A random irreducible SMP used by property tests and ablations.

    A ring edge guarantees irreducibility; extra edges are sprinkled with the
    given density and each state's outgoing weights are normalised.
    """
    b = SMPBuilder()
    dists = [
        Exponential(float(rng.uniform(0.5, 4.0))),
        Erlang(float(rng.uniform(0.5, 3.0)), int(rng.integers(1, 4))),
        Uniform(float(rng.uniform(0.0, 1.0)), float(rng.uniform(1.5, 3.0))),
        Deterministic(float(rng.uniform(0.1, 2.0))),
    ]
    for i in range(n_states):
        b.add_state(f"n{i}")
    for i in range(n_states):
        successors = {(i + 1) % n_states}
        for j in range(n_states):
            if j != i and rng.random() < density:
                successors.add(j)
        weights = rng.random(len(successors)) + 0.1
        weights /= weights.sum()
        for w, j in zip(weights, sorted(successors)):
            b.add_transition(i, j, float(w), dists[int(rng.integers(0, len(dists)))])
    return b.build()
