"""Tests for embedded-DTMC steady state, source weights and SMP steady state."""
from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.distributions import Deterministic, Erlang, Exponential
from repro.smp import (
    SMPBuilder,
    dtmc_steady_state,
    smp_steady_state,
    source_weights,
    steady_state_probability,
)


class TestDtmcSteadyState:
    def test_two_state_chain(self):
        P = sparse.csr_matrix(np.array([[0.0, 1.0], [0.5, 0.5]]))
        pi = dtmc_steady_state(P)
        # pi0 = pi1 * 0.5, pi0 + pi1 = 1 -> pi = (1/3, 2/3)
        assert np.allclose(pi, [1.0 / 3.0, 2.0 / 3.0])

    def test_direct_and_power_agree(self, rng):
        n = 30
        raw = rng.random((n, n)) + 0.01
        P = sparse.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        direct = dtmc_steady_state(P, method="direct")
        power = dtmc_steady_state(P, method="power")
        assert np.allclose(direct, power, atol=1e-8)

    def test_periodic_chain_power_converges(self):
        """A 2-cycle is periodic; the damped iteration must still converge."""
        P = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        pi = dtmc_steady_state(P, method="power")
        assert np.allclose(pi, [0.5, 0.5], atol=1e-8)

    def test_stationarity_property(self, rng):
        n = 12
        raw = rng.random((n, n)) + 0.05
        P = sparse.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        pi = dtmc_steady_state(P)
        assert np.allclose(pi @ P.toarray(), pi, atol=1e-10)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_non_stochastic_rejected(self):
        P = sparse.csr_matrix(np.array([[0.5, 0.4], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            dtmc_steady_state(P)

    def test_unknown_method_rejected(self):
        P = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            dtmc_steady_state(P, method="magic")


class TestSourceWeights:
    def test_single_source_is_unit_vector(self, branching_kernel):
        alpha = source_weights(branching_kernel, [2])
        expected = np.zeros(branching_kernel.n_states)
        expected[2] = 1.0
        assert np.allclose(alpha, expected)

    def test_multiple_sources_follow_embedded_steady_state(self, branching_kernel):
        pi = dtmc_steady_state(branching_kernel.embedded_matrix())
        alpha = source_weights(branching_kernel, [0, 3])
        assert alpha.sum() == pytest.approx(1.0)
        assert alpha[0] == pytest.approx(pi[0] / (pi[0] + pi[3]))
        assert alpha[3] == pytest.approx(pi[3] / (pi[0] + pi[3]))
        assert np.all(alpha[[1, 2, 4]] == 0.0)

    def test_duplicate_sources_rejected(self, branching_kernel):
        with pytest.raises(ValueError):
            source_weights(branching_kernel, [1, 1])

    def test_out_of_range_rejected(self, branching_kernel):
        with pytest.raises(ValueError):
            source_weights(branching_kernel, [99])


class TestSmpSteadyState:
    def test_ctmc_steady_state(self, ctmc_kernel):
        # Up/down CTMC with rates 2 and 3: pi_up = 3/5, pi_down = 2/5.
        pi = smp_steady_state(ctmc_kernel)
        assert np.allclose(pi, [0.6, 0.4])
        assert steady_state_probability(ctmc_kernel, [1]) == pytest.approx(0.4)

    def test_weighted_by_mean_sojourn(self):
        """Alternating renewal process: fraction of time in each state is
        proportional to that state's mean holding time."""
        b = SMPBuilder()
        b.add_transition(0, 1, 1.0, Deterministic(3.0))
        b.add_transition(1, 0, 1.0, Erlang(2.0, 2))  # mean 1
        k = b.build()
        pi = smp_steady_state(k)
        assert np.allclose(pi, [0.75, 0.25])

    def test_probability_of_set(self, branching_kernel):
        pi = smp_steady_state(branching_kernel)
        assert steady_state_probability(branching_kernel, [1, 4]) == pytest.approx(
            pi[1] + pi[4]
        )
        assert steady_state_probability(branching_kernel, []) == 0.0
        # Duplicates in the query set must not double count.
        assert steady_state_probability(branching_kernel, [1, 1]) == pytest.approx(pi[1])

    def test_sums_to_one(self, ring_kernel):
        assert smp_steady_state(ring_kernel).sum() == pytest.approx(1.0)

    def test_exponential_smp_matches_ctmc_generator_solution(self, rng):
        """For an all-exponential SMP the steady state must match the CTMC one."""
        b = SMPBuilder()
        n = 6
        rates = rng.uniform(0.5, 3.0, size=(n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    b.add_transition(i, j, 1.0 / (n - 1), Exponential(float(rates[i, j])))
        k = b.build()
        pi = smp_steady_state(k)
        # Build the CTMC generator with the same dynamics: leaving state i, the
        # next state is uniform and the holding time is the chosen Exponential,
        # so the generator rate i->j is p_ij / E[H_ij] ... only valid when all
        # H_ij for a given i share the same mean; instead compare against a
        # long-run renewal-reward argument via the embedded chain.
        from repro.smp import dtmc_steady_state

        emb = dtmc_steady_state(k.embedded_matrix())
        expected = emb * k.mean_sojourn_times()
        expected /= expected.sum()
        assert np.allclose(pi, expected)
