"""Factored vs batch vs scalar parity of the multi-s transform engines.

The distribution-factored engine must be a drop-in replacement for the
batched per-edge-data engine, which itself matches the scalar loops: all
three apply the same truncation rule, so values agree to float associativity
(asserted at 1e-10) and iteration counts agree exactly.  Parity is checked
across every bundled model family, both ``U`` product shapes (row/passage
and column/vector, i.e. plain and target-absorbing kernels), real-dominated
Euler grids and the complex Laguerre contour, plus the degenerate shapes the
factoring must survive: a single-distribution kernel and a heavy-Mixture
kernel where almost every edge carries a distinct distribution.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Mixture,
    Uniform,
    Weibull,
)
from repro.laplace.euler import euler_s_points
from repro.laplace.laguerre import LaguerreInverter
from repro.models import (
    SCALED_CONFIGURATIONS,
    alternating_renewal_kernel,
    birth_death_kernel,
    build_voting_kernel,
    cyclic_server_kernel,
    mg1_queue_kernel,
)
from repro.smp import (
    SMPBuilder,
    SPointPolicy,
    passage_transform,
    passage_transform_batch,
    passage_transform_vector,
    passage_transform_vector_batch,
    source_weights,
    transient_transform_batch,
)
from tests.smp.conftest import random_kernel

#: pure-iterative policies, one per engine (no direct routing, no fallback)
FACTORED = SPointPolicy(
    engine="factored", predicted_iteration_limit=10**9, fallback_to_direct=False
)
BATCH = SPointPolicy(
    engine="batch", predicted_iteration_limit=10**9, fallback_to_direct=False
)

EULER_GRID = np.concatenate([euler_s_points(t) for t in (0.8, 2.5)])
LAGUERRE_GRID = LaguerreInverter().required_s_points([1.0])[:24]


def single_distribution_kernel():
    """Every transition shares one Erlang sojourn (n_dists == 1)."""
    b = SMPBuilder()
    for i in range(6):
        b.add_state(f"s{i}")
    d = Erlang(1.5, 2)
    for i in range(6):
        b.add_transition(i, (i + 1) % 6, 0.7, d)
        b.add_transition(i, (i + 2) % 6, 0.3, d)
    return b.build()


def heavy_mixture_kernel():
    """Almost every edge carries a distinct Mixture (n_dists ~ n_edges)."""
    b = SMPBuilder()
    n = 7
    for i in range(n):
        b.add_state(f"s{i}")
    for i in range(n):
        mix = Mixture(
            [Uniform(0.1 * (i + 1), 1.0 + 0.2 * i), Erlang(1.0 + 0.3 * i, 1 + i % 3)],
            [0.6, 0.4],
        )
        b.add_transition(i, (i + 1) % n, 0.8, mix)
        b.add_transition(i, (i + 3) % n, 0.2, Weibull(1.2, 0.5 + 0.1 * i))
    return b.build()


def bundled_kernels():
    voting, _ = build_voting_kernel(SCALED_CONFIGURATIONS["tiny"])
    return {
        "birth_death": birth_death_kernel(6),
        "alternating_renewal": alternating_renewal_kernel(),
        "cyclic_server": cyclic_server_kernel(),
        "mg1_queue": mg1_queue_kernel(8),
        "voting_tiny": voting,
        "single_distribution": single_distribution_kernel(),
        "heavy_mixture": heavy_mixture_kernel(),
        "deterministic_mix": _det_mix_kernel(),
    }


def _det_mix_kernel():
    b = SMPBuilder()
    for i in range(5):
        b.add_state(f"s{i}")
    b.add_transition(0, 1, 1.0, Deterministic(0.4))
    b.add_transition(1, 2, 0.5, Exponential(2.0))
    b.add_transition(1, 3, 0.5, Uniform(0.1, 0.9))
    b.add_transition(2, 4, 1.0, Erlang(2.0, 2))
    b.add_transition(3, 4, 1.0, Deterministic(0.2))
    b.add_transition(4, 0, 1.0, Exponential(1.0))
    return b.build()


KERNELS = bundled_kernels()


@pytest.mark.parametrize("grid_name,grid", [("euler", EULER_GRID), ("laguerre", LAGUERRE_GRID)])
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_passage_parity_across_engines(name, grid_name, grid):
    kernel = KERNELS[name]
    alpha = source_weights(kernel, [0])
    targets = [kernel.n_states - 1]
    fac, fac_diags = passage_transform_batch(kernel, alpha, targets, grid, policy=FACTORED)
    bat, bat_diags = passage_transform_batch(kernel, alpha, targets, grid, policy=BATCH)
    assert np.abs(fac - bat).max() < 1e-10
    for df, db in zip(fac_diags, bat_diags):
        assert df.iterations == db.iterations
        assert df.engine == "factored" and db.engine == "batch"
    # scalar oracle on a subset (the scalar loop is slow)
    for t in range(0, grid.size, 7):
        scalar, _ = passage_transform(kernel, alpha, targets, complex(grid[t]))
        assert fac[t] == pytest.approx(scalar, abs=1e-10)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_vector_parity_across_engines(name):
    """Column form: both the absorbing U' iteration and the final full-U
    product must agree between engines (this exercises u and u_prime)."""
    kernel = KERNELS[name]
    targets = [kernel.n_states - 1]
    fac, fac_diags = passage_transform_vector_batch(kernel, targets, EULER_GRID, policy=FACTORED)
    bat, bat_diags = passage_transform_vector_batch(kernel, targets, EULER_GRID, policy=BATCH)
    assert np.abs(fac - bat).max() < 1e-10
    for df, db in zip(fac_diags, bat_diags):
        assert df.iterations == db.iterations
    scalar, _ = passage_transform_vector(kernel, targets, complex(EULER_GRID[3]))
    assert np.abs(fac[3] - scalar).max() < 1e-10


@pytest.mark.parametrize("name", ["voting_tiny", "heavy_mixture", "single_distribution"])
def test_transient_parity_across_engines(name):
    kernel = KERNELS[name]
    alpha = source_weights(kernel, [0])
    targets = [kernel.n_states - 1, kernel.n_states - 2]
    fac, _ = transient_transform_batch(kernel, alpha, targets, EULER_GRID, policy=FACTORED)
    bat, _ = transient_transform_batch(kernel, alpha, targets, EULER_GRID, policy=BATCH)
    assert np.abs(fac - bat).max() < 1e-10


def test_multi_target_absorbing_parity():
    """A multi-state target set exercises the row-mask variants properly."""
    kernel = random_kernel(np.random.default_rng(11), 12)
    alpha = source_weights(kernel, [0, 1])
    targets = [5, 8, 11]
    fac, _ = passage_transform_batch(kernel, alpha, targets, EULER_GRID, policy=FACTORED)
    bat, _ = passage_transform_batch(kernel, alpha, targets, EULER_GRID, policy=BATCH)
    assert np.abs(fac - bat).max() < 1e-10


def test_factored_u_product_against_matrix():
    """The factored row/col operators reproduce dense U(s)/U'(s) products."""
    from repro.smp.factored import FactoredColOperator, FactoredRowOperator

    kernel = random_kernel(np.random.default_rng(3), 9)
    evaluator = kernel.evaluator()
    fac = evaluator.factored()
    s_block = np.array([0.7 + 0.4j, 1.3 - 2.0j, 0.2 + 5.0j])
    mask = np.zeros(kernel.n_states, dtype=bool)
    mask[[2, 6]] = True
    alpha = source_weights(kernel, [0])

    row = FactoredRowOperator(fac, s_block, mask, np.asarray(alpha, dtype=complex))
    row.start()
    for t, s in enumerate(s_block):
        expected = np.asarray(alpha @ evaluator.u(complex(s))).ravel()
        got = row._state[:, t] + 1j * row._state[:, s_block.size + t]
        assert np.abs(got - expected).max() < 1e-12
    row.step()  # one application of U'
    for t, s in enumerate(s_block):
        v0 = np.asarray(alpha @ evaluator.u(complex(s))).ravel()
        expected = v0 @ evaluator.u_prime(complex(s), mask)
        got = row._state[:, t] + 1j * row._state[:, s_block.size + t]
        assert np.abs(got - expected).max() < 1e-12

    col = FactoredColOperator(fac, s_block, mask)
    col.start()
    col.step()
    e = mask.astype(complex)
    for t, s in enumerate(s_block):
        expected = evaluator.u_prime(complex(s), mask) @ e
        got = col._term[:, t] + 1j * col._term[:, s_block.size + t]
        assert np.abs(got - expected).max() < 1e-12
    rows = col.apply_u(np.tile(e, (3, 1)), np.arange(3))
    for t, s in enumerate(s_block):
        assert np.abs(rows[t] - evaluator.u(complex(s)) @ e).max() < 1e-12


def test_blocked_grid_matches_unblocked():
    """A tiny memory budget forces many blocks; values and iteration counts
    must be bit-identical to the single-block solve."""
    kernel = KERNELS["voting_tiny"]
    alpha = source_weights(kernel, [0])
    targets = [kernel.n_states - 1]
    for engine in ("batch", "factored"):
        one = SPointPolicy(engine=engine, predicted_iteration_limit=10**9,
                           fallback_to_direct=False)
        many = SPointPolicy(engine=engine, predicted_iteration_limit=10**9,
                            fallback_to_direct=False, max_block_bytes=1 << 20)
        report: dict = {}
        v1, d1 = passage_transform_batch(kernel, alpha, targets, EULER_GRID, policy=one)
        v2, d2 = passage_transform_batch(
            kernel, alpha, targets, EULER_GRID, policy=many, report=report
        )
        assert np.array_equal(v1, v2)
        assert [d.iterations for d in d1] == [d.iterations for d in d2]
        assert report["engine"] == engine
        assert len(report["blocks"]) >= 1
        assert sum(b["points"] for b in report["blocks"]) == EULER_GRID.size
        assert all(b["seconds"] >= 0 for b in report["blocks"])


def test_perpoint_submode_matches_blockdiag():
    """Forcing the per-point sparse matvec sub-mode changes nothing."""
    kernel = KERNELS["mg1_queue"]
    alpha = source_weights(kernel, [0])
    targets = [kernel.n_states - 1]
    base = SPointPolicy(engine="batch", predicted_iteration_limit=10**9,
                        fallback_to_direct=False)
    perpoint = SPointPolicy(engine="batch", predicted_iteration_limit=10**9,
                            fallback_to_direct=False, blockdiag_max_bytes=0)
    v1, d1 = passage_transform_batch(kernel, alpha, targets, EULER_GRID, policy=base)
    v2, d2 = passage_transform_batch(kernel, alpha, targets, EULER_GRID, policy=perpoint)
    assert np.array_equal(v1, v2)
    assert [d.iterations for d in d1] == [d.iterations for d in d2]
    m1, c1 = passage_transform_vector_batch(kernel, targets, EULER_GRID, policy=base)
    m2, c2 = passage_transform_vector_batch(kernel, targets, EULER_GRID, policy=perpoint)
    assert np.array_equal(m1, m2)
    assert [d.iterations for d in c1] == [d.iterations for d in c2]


def test_u_data_batch_chunked_fill_and_out():
    """The chunked fill produces the same data as a one-shot gather, honours
    ``out=`` and never retains oversized grids in the LRU."""
    kernel = KERNELS["voting_tiny"]
    evaluator = kernel.evaluator()
    grid = np.concatenate([euler_s_points(t) for t in (0.5, 1.0, 2.0)])
    reference = evaluator.u_data_batch(grid).copy()

    chunky = kernel.evaluator()
    chunky.batch_fill_bytes = 4096  # forces many tiny fill chunks
    assert np.array_equal(chunky.u_data_batch(grid), reference)

    out = np.empty((grid.size, kernel.n_transitions), dtype=complex)
    shared = kernel.evaluator()
    result = shared.u_data_batch(grid, out=out)
    assert result is out and np.array_equal(out, reference)
    with pytest.raises(ValueError, match="shape"):
        kernel.evaluator().u_data_batch(grid, out=np.empty((1, 1), dtype=complex))
    # A caller-owned buffer must not be captured by the LRU: scribbling over
    # it after the call must not corrupt later cache hits.
    out[:] = -1.0
    assert np.array_equal(shared.u_data_batch(grid), reference)

    tiny_cache = kernel.evaluator()
    tiny_cache._batch_cache.max_entry_bytes = 8  # everything is "too big"
    first = tiny_cache.u_data_batch(grid)
    second = tiny_cache.u_data_batch(grid)
    assert first is not second and np.array_equal(first, second)


def test_transient_direct_solver_uses_batch_block_sizing():
    """solver='direct' materialises O(block·nnz) data whatever engine the
    policy resolved, so its blocks must follow the batch budget."""
    kernel = random_kernel(np.random.default_rng(2), 30, density=0.9)
    evaluator = kernel.evaluator()
    policy = SPointPolicy(max_block_bytes=1 << 20)
    assert policy.resolve_engine(evaluator) == "factored"
    alpha = source_weights(kernel, [0])
    report: dict = {}
    grid = EULER_GRID[:12]
    direct, _ = transient_transform_batch(
        kernel, alpha, [kernel.n_states - 1], grid,
        solver="direct", policy=policy, report=report,
    )
    expected_block = policy.block_points(evaluator, "batch", vector=True)
    assert all(b["points"] <= expected_block for b in report["blocks"])
    iterative, _ = transient_transform_batch(
        kernel, alpha, [kernel.n_states - 1], grid, policy=policy
    )
    assert np.abs(direct - iterative).max() < 1e-6


def test_policy_engine_selection():
    dense = random_kernel(np.random.default_rng(0), 40, density=0.9)
    sparse_kernel = KERNELS["birth_death"]
    policy = SPointPolicy()
    assert policy.resolve_engine(dense.evaluator()) == "factored"
    assert policy.resolve_engine(sparse_kernel.evaluator()) == "batch"
    # distribution cap forces batch even on dense kernels
    capped = SPointPolicy(factored_max_distributions=1)
    assert capped.resolve_engine(dense.evaluator()) == "batch"
    forced = SPointPolicy(engine="factored")
    assert forced.resolve_engine(sparse_kernel.evaluator()) == "factored"
    with pytest.raises(ValueError, match="engine"):
        SPointPolicy(engine="turbo")
    with pytest.raises(ValueError, match="max_block_bytes"):
        SPointPolicy(max_block_bytes=1)


def test_policy_block_points_respects_budget():
    kernel = KERNELS["voting_tiny"]
    evaluator = kernel.evaluator()
    policy = SPointPolicy(max_block_bytes=1 << 20)
    for engine in ("batch", "factored"):
        block = policy.block_points(evaluator, engine)
        assert block >= 1
        big = SPointPolicy(max_block_bytes=1 << 34).block_points(evaluator, engine)
        assert big > block


def test_direct_max_states_gates_lu_routing():
    """Kernels above direct_max_states never route to the LU solver: hard
    points come back truncated-unconverged instead of paying a factorisation."""
    kernel = KERNELS["birth_death"]
    alpha = source_weights(kernel, [0])
    tiny_s = np.array([1e-10 + 1e-10j])
    options_cap = None
    routed = SPointPolicy(predicted_iteration_limit=10)
    values, diags = passage_transform_batch(kernel, alpha, [3], tiny_s, options_cap, policy=routed)
    assert diags[0].solver == "direct"
    gated = SPointPolicy(predicted_iteration_limit=10, direct_max_states=1)
    from repro.smp import PassageTimeOptions

    values, diags = passage_transform_batch(
        kernel, alpha, [3], tiny_s, PassageTimeOptions(max_iterations=20), policy=gated
    )
    assert diags[0].solver == "iterative"
    assert not diags[0].converged


def test_factored_contraction_matches_batch():
    kernel = KERNELS["heavy_mixture"]
    evaluator = kernel.evaluator()
    mask = np.zeros(kernel.n_states, dtype=bool)
    mask[0] = True
    grid = EULER_GRID[:8]
    batch_contraction = evaluator.row_abs_sums(
        evaluator.u_prime_data_batch(grid, mask)
    ).max(axis=1)
    fac_contraction = evaluator.factored().contraction(grid, mask, chunk=3)
    assert np.abs(batch_contraction - fac_contraction).max() < 1e-12


def test_factored_sojourn_matches_evaluator():
    kernel = KERNELS["voting_tiny"]
    evaluator = kernel.evaluator()
    grid = EULER_GRID[:6]
    assert np.abs(
        evaluator.factored().sojourn_lst_batch(grid) - evaluator.sojourn_lst_batch(grid)
    ).max() < 1e-12


def test_factored_structures_cached():
    kernel = KERNELS["mg1_queue"]
    evaluator = kernel.evaluator()
    assert evaluator.factored() is evaluator.factored()
    fac = evaluator.factored()
    mask = np.zeros(kernel.n_states, dtype=bool)
    mask[1] = True
    assert fac.row_structure(mask) is fac.row_structure(mask)
    assert fac.col_structure() is fac.col_structure()
    assert fac.row_pair_count <= kernel.n_transitions
    assert fac.density_ratio() > 0
