"""Tests for transient state distributions (Pyke's relations, Eqs. 6-7)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.laplace import EulerInverter
from repro.smp import (
    SMPBuilder,
    smp_steady_state,
    sojourn_lsts,
    source_weights,
    transient_transform,
)


def invert_transient(kernel, sources, targets, t_points, solver="iterative"):
    alpha = source_weights(kernel, sources)
    inv = EulerInverter()

    def transform(s_values):
        return np.asarray(
            [transient_transform(kernel, alpha, targets, s, solver=solver) for s in s_values],
            dtype=complex,
        )

    return inv.invert(transform, t_points)


class TestTwoStateCTMC:
    """P(Z(t)=down | up) = a/(a+b) (1 - e^{-(a+b)t}) for rates a=2, b=3."""

    def test_occupancy_of_other_state(self, ctmc_kernel):
        t = np.array([0.05, 0.2, 0.5, 1.0, 2.0])
        expected = 0.4 * (1.0 - np.exp(-5.0 * t))
        recovered = invert_transient(ctmc_kernel, [0], [1], t)
        assert np.max(np.abs(recovered - expected)) < 1e-6

    def test_occupancy_of_own_state(self, ctmc_kernel):
        t = np.array([0.05, 0.2, 0.5, 1.0, 2.0])
        expected = 0.6 + 0.4 * np.exp(-5.0 * t)
        recovered = invert_transient(ctmc_kernel, [0], [0], t)
        assert np.max(np.abs(recovered - expected)) < 1e-6

    def test_direct_solver_agrees(self, ctmc_kernel):
        t = np.array([0.1, 0.6, 1.5])
        a = invert_transient(ctmc_kernel, [0], [1], t, solver="iterative")
        b = invert_transient(ctmc_kernel, [0], [1], t, solver="direct")
        assert np.allclose(a, b, atol=1e-8)

    def test_complement_sums_to_one(self, ctmc_kernel):
        t = np.array([0.1, 0.7, 1.8])
        p_up = invert_transient(ctmc_kernel, [0], [0], t)
        p_down = invert_transient(ctmc_kernel, [0], [1], t)
        assert np.allclose(p_up + p_down, 1.0, atol=1e-6)


class TestThreeStateCTMC:
    """Cross-check against the matrix exponential of the CTMC generator."""

    @pytest.fixture
    def chain(self):
        b = SMPBuilder()
        rates = {(0, 1): 2.0, (0, 2): 1.0, (1, 0): 1.5, (1, 2): 0.5, (2, 0): 1.0, (2, 1): 3.0}
        total = {i: sum(r for (a, _), r in rates.items() if a == i) for i in range(3)}
        for (i, j), r in rates.items():
            b.add_transition(i, j, r / total[i], Exponential(total[i]))
        generator = np.zeros((3, 3))
        for (i, j), r in rates.items():
            generator[i, j] = r
        np.fill_diagonal(generator, -generator.sum(axis=1))
        return b.build(), generator

    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_against_matrix_exponential(self, chain, target):
        from scipy.linalg import expm

        kernel, Q = chain
        t_points = np.array([0.1, 0.4, 1.0, 2.5])
        expected = np.array([expm(Q * t)[0, target] for t in t_points])
        recovered = invert_transient(kernel, [0], [target], t_points)
        assert np.max(np.abs(recovered - expected)) < 1e-6

    def test_target_set_additivity(self, chain):
        kernel, Q = chain
        t_points = np.array([0.2, 0.8, 2.0])
        combined = invert_transient(kernel, [0], [1, 2], t_points)
        separate = invert_transient(kernel, [0], [1], t_points) + invert_transient(
            kernel, [0], [2], t_points
        )
        assert np.allclose(combined, separate, atol=1e-6)

    def test_multiple_sources_weighting(self, chain):
        kernel, _ = chain
        t_points = np.array([0.3, 1.2])
        alpha = source_weights(kernel, [0, 1])
        combined = invert_transient(kernel, [0, 1], [2], t_points)
        separate = alpha[0] * invert_transient(kernel, [0], [2], t_points) + alpha[
            1
        ] * invert_transient(kernel, [1], [2], t_points)
        assert np.allclose(combined, separate, atol=1e-6)


class TestLongRunBehaviour:
    def test_transient_tends_to_steady_state(self, branching_kernel):
        pi = smp_steady_state(branching_kernel)
        targets = [3, 4]
        limit = pi[targets].sum()
        value = invert_transient(branching_kernel, [0], targets, np.array([200.0]))[0]
        assert value == pytest.approx(limit, abs=5e-4)

    def test_short_time_probability_near_indicator(self, branching_kernel):
        """At t ~ 0+ the chain is still in its initial state."""
        in_target = invert_transient(branching_kernel, [0], [0], np.array([1e-3]))[0]
        out_target = invert_transient(branching_kernel, [0], [4], np.array([1e-3]))[0]
        assert in_target == pytest.approx(1.0, abs=1e-3)
        assert out_target == pytest.approx(0.0, abs=1e-3)


class TestValidation:
    def test_sojourn_lsts_match_row_sums(self, branching_kernel):
        s = 0.9 + 2.2j
        h = sojourn_lsts(branching_kernel, s)
        U = branching_kernel.u_matrix(s).toarray()
        assert np.allclose(h, U.sum(axis=1))

    def test_zero_s_rejected(self, ctmc_kernel):
        alpha = source_weights(ctmc_kernel, [0])
        with pytest.raises(ValueError):
            transient_transform(ctmc_kernel, alpha, [1], 0.0)

    def test_bad_solver_rejected(self, ctmc_kernel):
        alpha = source_weights(ctmc_kernel, [0])
        with pytest.raises(ValueError):
            transient_transform(ctmc_kernel, alpha, [1], 1.0, solver="guess")

    def test_bad_targets_rejected(self, ctmc_kernel):
        alpha = source_weights(ctmc_kernel, [0])
        with pytest.raises(ValueError):
            transient_transform(ctmc_kernel, alpha, [9], 1.0)
