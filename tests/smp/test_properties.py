"""Hypothesis property tests on random SMP kernels."""
from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.smp import (
    dtmc_steady_state,
    passage_transform_direct,
    passage_transform_vector,
    smp_steady_state,
    source_weights,
)
from tests.smp.conftest import random_kernel


kernel_seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=3, max_value=14)
s_values = st.tuples(
    st.floats(min_value=0.05, max_value=3.0),
    st.floats(min_value=-8.0, max_value=8.0),
).map(lambda t: complex(*t))


@given(seed=kernel_seeds, n=sizes, s=s_values)
@settings(max_examples=40, deadline=None)
def test_iterative_agrees_with_direct_solver(seed, n, s):
    """Core invariant of the reproduction: Eq. (10)'s truncated sum converges
    to the solution of the linear system of Eq. (2)."""
    kernel = random_kernel(np.random.default_rng(seed), n)
    target = [seed % n]
    iterative, diag = passage_transform_vector(kernel, target, s)
    direct = passage_transform_direct(kernel, target, s)
    assert diag.converged
    assert np.allclose(iterative, direct, atol=1e-7)


@given(seed=kernel_seeds, n=sizes, s=s_values)
@settings(max_examples=40, deadline=None)
def test_passage_transform_magnitude_bounded(seed, n, s):
    """|L(s)| <= 1 on the right half plane — it is the transform of a density."""
    kernel = random_kernel(np.random.default_rng(seed), n)
    vec, _ = passage_transform_vector(kernel, [0], s)
    assert np.all(np.abs(vec) <= 1.0 + 1e-8)


@given(seed=kernel_seeds, n=sizes)
@settings(max_examples=30, deadline=None)
def test_embedded_steady_state_is_stationary(seed, n):
    kernel = random_kernel(np.random.default_rng(seed), n)
    P = kernel.embedded_matrix()
    pi = dtmc_steady_state(P)
    assert np.all(pi >= -1e-12)
    assert abs(pi.sum() - 1.0) < 1e-9
    assert np.allclose(pi @ P.toarray(), pi, atol=1e-8)


@given(seed=kernel_seeds, n=sizes)
@settings(max_examples=30, deadline=None)
def test_smp_steady_state_is_distribution(seed, n):
    kernel = random_kernel(np.random.default_rng(seed), n)
    pi = smp_steady_state(kernel)
    assert np.all(pi >= -1e-12)
    assert abs(pi.sum() - 1.0) < 1e-9


@given(seed=kernel_seeds, n=sizes)
@settings(max_examples=30, deadline=None)
def test_source_weights_supported_on_sources(seed, n):
    kernel = random_kernel(np.random.default_rng(seed), n)
    sources = sorted({0, n // 2, n - 1})
    alpha = source_weights(kernel, sources)
    assert abs(alpha.sum() - 1.0) < 1e-9
    support = np.where(alpha > 0)[0]
    assert set(support).issubset(set(sources))


@given(seed=kernel_seeds, n=sizes, s=s_values)
@settings(max_examples=30, deadline=None)
def test_reachability_probability_at_small_s(seed, n, s):
    """As s -> 0 the passage transform approaches 1 (target reached a.s.)."""
    kernel = random_kernel(np.random.default_rng(seed), n)
    vec = passage_transform_direct(kernel, [n - 1], 1e-10)
    assert np.allclose(vec, 1.0, atol=1e-5)
