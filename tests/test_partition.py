"""Tests for the state-space partitioning extension."""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import SCALED_CONFIGURATIONS, build_voting_kernel
from repro.partition import (
    bfs_locality_partition,
    contiguous_partition,
    evaluate_partition,
    greedy_balanced_partition,
    refine_partition,
    round_robin_partition,
)


@pytest.fixture(scope="module")
def voting_kernel():
    kernel, _ = build_voting_kernel(SCALED_CONFIGURATIONS["small"])
    return kernel


ALL_STRATEGIES = [
    contiguous_partition,
    round_robin_partition,
    greedy_balanced_partition,
    bfs_locality_partition,
]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda f: f.__name__)
class TestStrategyContract:
    def test_every_state_assigned_to_valid_part(self, voting_kernel, strategy):
        assignment = strategy(voting_kernel, 4)
        assert assignment.shape == (voting_kernel.n_states,)
        assert assignment.min() >= 0
        assert assignment.max() <= 3
        # every part non-empty
        assert len(np.unique(assignment)) == 4

    def test_single_part_trivial(self, voting_kernel, strategy):
        assignment = strategy(voting_kernel, 1)
        assert np.all(assignment == 0)
        quality = evaluate_partition(voting_kernel, assignment)
        assert quality.imbalance == pytest.approx(1.0)
        assert quality.edge_cut == 0

    def test_invalid_part_count(self, voting_kernel, strategy):
        with pytest.raises(ValueError):
            strategy(voting_kernel, 0)
        with pytest.raises(ValueError):
            strategy(voting_kernel, voting_kernel.n_states + 1)


class TestQualityMetrics:
    def test_greedy_balances_better_than_contiguous(self, voting_kernel):
        greedy = evaluate_partition(voting_kernel, greedy_balanced_partition(voting_kernel, 8))
        contiguous = evaluate_partition(voting_kernel, contiguous_partition(voting_kernel, 8))
        assert greedy.imbalance <= contiguous.imbalance + 1e-9
        assert greedy.imbalance < 1.2

    def test_bfs_cuts_fewer_edges_than_round_robin(self, voting_kernel):
        bfs = evaluate_partition(voting_kernel, bfs_locality_partition(voting_kernel, 8))
        rr = evaluate_partition(voting_kernel, round_robin_partition(voting_kernel, 8))
        assert bfs.edge_cut < rr.edge_cut

    def test_metrics_consistency(self, voting_kernel):
        quality = evaluate_partition(voting_kernel, round_robin_partition(voting_kernel, 4))
        assert quality.nnz_per_part.sum() == voting_kernel.n_transitions
        assert 0.0 <= quality.edge_cut_fraction <= 1.0
        assert quality.summary().startswith("parts=4")

    def test_bad_assignment_rejected(self, voting_kernel):
        with pytest.raises(ValueError):
            evaluate_partition(voting_kernel, np.zeros(3, dtype=int))
        bad = np.zeros(voting_kernel.n_states, dtype=int)
        bad[0] = -1
        with pytest.raises(ValueError):
            evaluate_partition(voting_kernel, bad)


class TestRefinement:
    def test_refinement_reduces_cut_and_respects_balance(self, voting_kernel):
        seed = bfs_locality_partition(voting_kernel, 8)
        before = evaluate_partition(voting_kernel, seed)
        refined = refine_partition(voting_kernel, seed, balance_tolerance=1.15)
        after = evaluate_partition(voting_kernel, refined)
        assert after.edge_cut <= before.edge_cut
        assert after.imbalance <= 1.15 + 0.25  # weights-based limit, nnz-based metric
        # Same number of parts, every state still assigned.
        assert set(np.unique(refined)) <= set(range(8))

    def test_refinement_improves_round_robin_substantially(self, voting_kernel):
        seed = round_robin_partition(voting_kernel, 8)
        before = evaluate_partition(voting_kernel, seed)
        after = evaluate_partition(voting_kernel, refine_partition(voting_kernel, seed))
        assert after.edge_cut < 0.9 * before.edge_cut

    def test_refinement_is_idempotent_at_fixed_point(self, voting_kernel):
        seed = bfs_locality_partition(voting_kernel, 4)
        once = refine_partition(voting_kernel, seed, max_passes=10)
        twice = refine_partition(voting_kernel, once, max_passes=10)
        assert evaluate_partition(voting_kernel, twice).edge_cut == pytest.approx(
            evaluate_partition(voting_kernel, once).edge_cut
        )

    def test_invalid_arguments(self, voting_kernel):
        seed = contiguous_partition(voting_kernel, 4)
        with pytest.raises(ValueError):
            refine_partition(voting_kernel, seed[:-1])
        with pytest.raises(ValueError):
            refine_partition(voting_kernel, seed, max_passes=-1)
        with pytest.raises(ValueError):
            refine_partition(voting_kernel, seed, balance_tolerance=0.9)

    def test_single_part_untouched(self, voting_kernel):
        seed = contiguous_partition(voting_kernel, 1)
        refined = refine_partition(voting_kernel, seed)
        assert np.array_equal(refined, seed)
