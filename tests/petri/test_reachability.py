"""Tests for reachability-graph generation and the SM-SPN -> SMP mapping."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeSolver
from repro.distributions import Convolution, Deterministic, Exponential, Uniform
from repro.petri import SMSPN, Transition, build_kernel, explore, marking_states, passage_solver, transient_solver


def simple_cycle_net(stages: int = 3) -> SMSPN:
    """A token walking around a ring of ``stages`` places."""
    net = SMSPN("ring")
    for i in range(stages):
        net.add_place(f"s{i}", 1 if i == 0 else 0)
    for i in range(stages):
        net.add_transition(
            Transition(
                name=f"step{i}",
                inputs={f"s{i}": 1},
                outputs={f"s{(i + 1) % stages}": 1},
                distribution=Uniform(0.5, 1.5) if i % 2 == 0 else Exponential(2.0),
            )
        )
    return net


class TestExplore:
    def test_ring_state_space(self):
        graph = explore(simple_cycle_net(4))
        assert graph.n_states == 4
        assert graph.n_edges == 4
        assert not graph.truncated
        assert graph.deadlocks == []
        assert graph.initial_state == 0

    def test_index_and_predicates(self):
        graph = explore(simple_cycle_net(3))
        idx = graph.index_of((0, 1, 0))
        assert graph.markings[idx] == (0, 1, 0)
        with pytest.raises(KeyError):
            graph.index_of((1, 1, 1))
        states = graph.states_where(lambda m: m["s2"] == 1)
        assert states == [graph.index_of((0, 0, 1))]

    def test_truncation_flagged(self):
        net = SMSPN("unbounded")
        net.add_place("count", 0)
        net.add_transition(
            Transition(
                name="grow",
                inputs={},
                outputs={},
                guard=lambda m: True,
                action=lambda m: {"count": m["count"] + 1},
                distribution=Exponential(1.0),
            )
        )
        graph = explore(net, max_states=10)
        assert graph.truncated
        assert graph.n_states == 10
        with pytest.raises(ValueError):
            build_kernel(graph)

    def test_deadlock_detection(self):
        net = SMSPN("dead-end")
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_transition(
            Transition(name="go", inputs={"a": 1}, outputs={"b": 1}, distribution=Exponential(1.0))
        )
        graph = explore(net)
        assert graph.deadlocks == [graph.index_of((0, 1))]
        kernel = build_kernel(graph)  # deadlock becomes a self-loop
        assert kernel.n_states == 2

    def test_transition_usage_stats(self):
        graph = explore(simple_cycle_net(3))
        usage = graph.transition_usage()
        assert usage == {"step0": 1, "step1": 1, "step2": 1}

    def test_marking_array_shape(self):
        graph = explore(simple_cycle_net(5))
        arr = graph.marking_array()
        assert arr.shape == (5, 5)
        assert np.all(arr.sum(axis=1) == 1)

    def test_progress_callback_invoked(self):
        seen = []
        net = simple_cycle_net(4)
        explore(net, on_progress=seen.append, progress_every=1)
        assert seen  # called at least once with a state count


class TestKernelMapping:
    def test_ring_passage_time_is_convolution(self):
        """Going all the way around the ring is the convolution of the three sojourns."""
        graph = explore(simple_cycle_net(3))
        kernel = build_kernel(graph)
        start = graph.index_of((1, 0, 0))
        solver = PassageTimeSolver(kernel, sources=[start], targets=[start])
        conv = Convolution([Uniform(0.5, 1.5), Exponential(2.0), Uniform(0.5, 1.5)])
        s = np.array([0.4 + 1.0j, 1.5 - 2.0j])
        for x in s:
            assert solver.transform(x) == pytest.approx(conv.lst(x), rel=1e-7)

    def test_probabilistic_choice_maps_to_branch_probabilities(self):
        net = SMSPN("branch")
        net.add_place("start", 1)
        net.add_place("left", 0)
        net.add_place("right", 0)
        net.add_transition(
            Transition(name="go_left", inputs={"start": 1}, outputs={"left": 1},
                       weight=3.0, distribution=Exponential(1.0))
        )
        net.add_transition(
            Transition(name="go_right", inputs={"start": 1}, outputs={"right": 1},
                       weight=1.0, distribution=Deterministic(2.0))
        )
        net.add_transition(
            Transition(name="back_l", inputs={"left": 1}, outputs={"start": 1},
                       distribution=Exponential(1.0))
        )
        net.add_transition(
            Transition(name="back_r", inputs={"right": 1}, outputs={"start": 1},
                       distribution=Exponential(1.0))
        )
        graph = explore(net)
        kernel = build_kernel(graph)
        P = kernel.embedded_matrix().toarray()
        i = graph.index_of((1, 0, 0))
        j_left = graph.index_of((0, 1, 0))
        j_right = graph.index_of((0, 0, 1))
        assert P[i, j_left] == pytest.approx(0.75)
        assert P[i, j_right] == pytest.approx(0.25)

    def test_helpers_build_solvers(self):
        net = simple_cycle_net(3)
        graph = explore(net)
        ps = passage_solver(graph, lambda m: m["s0"] == 1, lambda m: m["s2"] == 1)
        ts = transient_solver(graph, lambda m: m["s0"] == 1, lambda m: m["s1"] == 1)
        assert ps.targets.tolist() == [graph.index_of((0, 0, 1))]
        assert 0.0 < ts.steady_state() < 1.0
        with pytest.raises(ValueError):
            marking_states(graph, lambda m: m["s0"] == 99)

    def test_passage_solver_accepts_raw_net(self):
        net = simple_cycle_net(3)
        ps = passage_solver(net, lambda m: m["s0"] == 1, lambda m: m["s1"] == 1)
        density = ps.density([1.0])
        assert density[0] >= 0.0


class TestInternedLookups:
    """Satellite regressions: O(1) index_of and cached marking_array."""

    def test_index_of_does_not_scan_the_marking_list(self):
        """index_of must answer from the interned table, never list.index."""

        class NoScanList(list):
            def index(self, *args, **kwargs):  # pragma: no cover - trap
                raise AssertionError("index_of fell back to an O(n) list scan")

        net = simple_cycle_net(4)
        graph = explore(net)
        graph.markings = NoScanList(graph.markings)
        for i, marking in enumerate(graph.markings):
            assert graph.index_of(marking) == i
        with pytest.raises(KeyError, match="not reachable"):
            graph.index_of((99, 0, 0, 0))

    def test_index_of_lookup_table_is_built_once(self):
        net = simple_cycle_net(3)
        graph = explore(net)
        graph.index_of(graph.markings[0])
        table = graph._intern
        graph.index_of(graph.markings[-1])
        assert graph._intern is table

    def test_marking_array_is_cached(self):
        net = simple_cycle_net(3)
        graph = explore(net)
        first = graph.marking_array()
        assert graph.marking_array() is first
        assert first.dtype == np.int64
        assert first.shape == (graph.n_states, 3)
