"""Tests for vanishing-marking elimination (GSPN-style immediate transitions)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeSolver
from repro.distributions import Deterministic, Erlang, Exponential, Immediate, Uniform
from repro.petri import (
    SMSPN,
    Transition,
    build_kernel,
    eliminate_vanishing,
    explore,
    is_vanishing_distribution,
)


def routed_net(weights=(3.0, 1.0)) -> SMSPN:
    """A timed arrival followed by an immediate probabilistic routing choice.

    ``arrive`` (Erlang) puts a token into ``router``; two immediate
    transitions route it to ``left`` or ``right`` with the given weights; a
    timed transition returns it to ``idle`` from either branch.
    """
    net = SMSPN("routed")
    net.add_place("idle", 1)
    net.add_place("router", 0)
    net.add_place("left", 0)
    net.add_place("right", 0)
    net.add_transition(
        Transition(name="arrive", inputs={"idle": 1}, outputs={"router": 1},
                   distribution=Erlang(2.0, 2))
    )
    net.add_transition(
        Transition(name="route_left", inputs={"router": 1}, outputs={"left": 1},
                   weight=weights[0], distribution=Immediate())
    )
    net.add_transition(
        Transition(name="route_right", inputs={"router": 1}, outputs={"right": 1},
                   weight=weights[1], distribution=Immediate())
    )
    net.add_transition(
        Transition(name="serve_left", inputs={"left": 1}, outputs={"idle": 1},
                   distribution=Uniform(0.5, 1.5))
    )
    net.add_transition(
        Transition(name="serve_right", inputs={"right": 1}, outputs={"idle": 1},
                   distribution=Exponential(1.0))
    )
    return net


class TestVanishingDetection:
    def test_is_vanishing_distribution(self):
        assert is_vanishing_distribution(Immediate())
        assert is_vanishing_distribution(Deterministic(0.0))
        assert not is_vanishing_distribution(Deterministic(0.1))
        assert not is_vanishing_distribution(Exponential(100.0))

    def test_graph_without_immediates_is_returned_unchanged(self, ring_kernel):
        net = SMSPN("plain")
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_transition(Transition(name="go", inputs={"a": 1}, outputs={"b": 1},
                                      distribution=Exponential(1.0)))
        net.add_transition(Transition(name="back", inputs={"b": 1}, outputs={"a": 1},
                                      distribution=Exponential(1.0)))
        graph = explore(net)
        assert eliminate_vanishing(graph) is graph


class TestElimination:
    def test_vanishing_markings_removed(self):
        graph = explore(routed_net())
        reduced = eliminate_vanishing(graph)
        assert reduced.n_states == graph.n_states - 1   # the router marking vanishes
        router_markings = [m for m in reduced.markings if m[1] > 0]
        assert not router_markings
        # Probabilities out of each state still sum to one.
        kernel = build_kernel(reduced)
        P = kernel.embedded_matrix()
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_routing_probabilities_folded_into_arrival(self):
        graph = explore(routed_net(weights=(3.0, 1.0)))
        reduced = eliminate_vanishing(graph)
        kernel = build_kernel(reduced)
        idle = reduced.index_of((1, 0, 0, 0))
        left = reduced.index_of((0, 0, 1, 0))
        right = reduced.index_of((0, 0, 0, 1))
        P = kernel.embedded_matrix().toarray()
        assert P[idle, left] == pytest.approx(0.75)
        assert P[idle, right] == pytest.approx(0.25)

    def test_passage_times_preserved(self):
        """Cycle time idle -> idle equals Erlang arrival + the routed service,
        with the immediate hop contributing probability but no time."""
        graph = explore(routed_net(weights=(1.0, 1.0)))
        reduced = eliminate_vanishing(graph)
        kernel = build_kernel(reduced)
        idle = reduced.index_of((1, 0, 0, 0))
        solver = PassageTimeSolver(kernel, sources=[idle], targets=[idle])
        s = 0.4 + 1.1j
        arrival = Erlang(2.0, 2).lst(s)
        expected = arrival * (0.5 * Uniform(0.5, 1.5).lst(s) + 0.5 * Exponential(1.0).lst(s))
        assert solver.transform(s) == pytest.approx(expected, rel=1e-8)

    def test_chained_immediates_resolve_transitively(self):
        net = SMSPN("chain")
        for name in ("a", "b", "c", "d"):
            net.add_place(name, 1 if name == "a" else 0)
        net.add_transition(Transition(name="t1", inputs={"a": 1}, outputs={"b": 1},
                                      distribution=Exponential(2.0)))
        net.add_transition(Transition(name="i1", inputs={"b": 1}, outputs={"c": 1},
                                      distribution=Immediate()))
        net.add_transition(Transition(name="i2", inputs={"c": 1}, outputs={"d": 1},
                                      distribution=Immediate()))
        net.add_transition(Transition(name="t2", inputs={"d": 1}, outputs={"a": 1},
                                      distribution=Exponential(3.0)))
        reduced = eliminate_vanishing(explore(net))
        assert reduced.n_states == 2
        kernel = build_kernel(reduced)
        a = reduced.index_of((1, 0, 0, 0))
        solver = PassageTimeSolver(kernel, sources=[a], targets=[a])
        assert solver.mean() == pytest.approx(0.5 + 1.0 / 3.0, rel=1e-5)

    def test_vanishing_cycle_rejected(self):
        net = SMSPN("loop")
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_place("go", 0)
        net.add_transition(Transition(name="start", inputs={"a": 1}, outputs={"b": 1},
                                      distribution=Exponential(1.0)))
        net.add_transition(Transition(name="i1", inputs={"b": 1}, outputs={"go": 1},
                                      distribution=Immediate()))
        net.add_transition(Transition(name="i2", inputs={"go": 1}, outputs={"b": 1},
                                      distribution=Immediate()))
        with pytest.raises(ValueError, match="cycle of vanishing"):
            eliminate_vanishing(explore(net))

    def test_vanishing_initial_marking_rejected(self):
        net = SMSPN("bad-start")
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_transition(Transition(name="i", inputs={"a": 1}, outputs={"b": 1},
                                      distribution=Immediate()))
        net.add_transition(Transition(name="t", inputs={"b": 1}, outputs={"a": 1},
                                      distribution=Exponential(1.0)))
        with pytest.raises(ValueError, match="initial marking is vanishing"):
            eliminate_vanishing(explore(net))
