"""Tests for the SM-SPN net structure and firing semantics."""
from __future__ import annotations

import pytest

from repro.distributions import Deterministic, Erlang, Exponential, Uniform
from repro.petri import SMSPN, Transition


@pytest.fixture
def producer_consumer():
    """A small producer/consumer net with a priority-2 flush transition."""
    net = SMSPN("producer-consumer")
    net.add_place("buffer", 0)
    net.add_place("free", 3)
    net.add_transition(
        Transition(
            name="produce",
            inputs={"free": 1},
            outputs={"buffer": 1},
            priority=1,
            weight=2.0,
            distribution=Exponential(1.0),
        )
    )
    net.add_transition(
        Transition(
            name="consume",
            inputs={"buffer": 1},
            outputs={"free": 1},
            priority=1,
            weight=1.0,
            distribution=Uniform(0.5, 1.0),
        )
    )
    net.add_transition(
        Transition(
            name="flush",
            inputs={},
            outputs={},
            guard=lambda m: m["buffer"] >= 3,
            action=lambda m: {"buffer": 0, "free": 3},
            priority=2,
            weight=1.0,
            distribution=Deterministic(0.1),
        )
    )
    return net


class TestNetConstruction:
    def test_initial_marking(self, producer_consumer):
        assert producer_consumer.initial_marking == (0, 3)
        assert producer_consumer.place_index == {"buffer": 0, "free": 1}

    def test_duplicate_place_rejected(self):
        net = SMSPN()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_place("p")

    def test_duplicate_transition_rejected(self, producer_consumer):
        with pytest.raises(ValueError):
            producer_consumer.add_transition(
                Transition(name="produce", inputs={"free": 1}, distribution=Exponential(1.0))
            )

    def test_unknown_place_in_arc_rejected(self):
        net = SMSPN()
        net.add_place("a")
        with pytest.raises(KeyError):
            net.add_transition(
                Transition(name="t", inputs={"zzz": 1}, distribution=Exponential(1.0))
            )

    def test_transition_needs_distribution_and_enabling(self):
        with pytest.raises(ValueError):
            Transition(name="t", inputs={"a": 1}, distribution=None)
        with pytest.raises(ValueError):
            Transition(name="t", inputs={}, guard=None, distribution=Exponential(1.0))
        with pytest.raises(ValueError):
            Transition(name="", inputs={"a": 1}, distribution=Exponential(1.0))

    def test_set_initial(self, producer_consumer):
        producer_consumer.set_initial(buffer=1, free=2)
        assert producer_consumer.initial_marking == (1, 2)
        with pytest.raises(KeyError):
            producer_consumer.set_initial(nope=1)


class TestEnablingSemantics:
    def test_token_rule(self, producer_consumer):
        enabled = producer_consumer.enabled_transitions((0, 3))
        assert [t.name for t in enabled] == ["produce"]
        enabled = producer_consumer.enabled_transitions((1, 2))
        assert sorted(t.name for t in enabled) == ["consume", "produce"]

    def test_priority_preemption(self, producer_consumer):
        """When the buffer is full the priority-2 flush preempts everything."""
        enabled = producer_consumer.enabled_transitions((3, 0))
        assert [t.name for t in enabled] == ["flush"]

    def test_weights_normalise_to_probabilities(self, producer_consumer):
        choices = producer_consumer.firing_choices((1, 2))
        probs = {t.name: p for t, p, _, _ in choices}
        assert probs["produce"] == pytest.approx(2.0 / 3.0)
        assert probs["consume"] == pytest.approx(1.0 / 3.0)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_firing_updates_marking(self, producer_consumer):
        choices = {t.name: m for t, _, m, _ in producer_consumer.firing_choices((1, 2))}
        assert choices["produce"] == (2, 1)
        assert choices["consume"] == (0, 3)

    def test_action_overrides_arcs(self, producer_consumer):
        choices = producer_consumer.firing_choices((3, 0))
        assert len(choices) == 1
        _, prob, marking, dist = choices[0]
        assert prob == 1.0
        assert marking == (0, 3)
        assert dist == Deterministic(0.1)

    def test_marking_dependent_attributes(self):
        net = SMSPN()
        net.add_place("q", 2)
        net.add_transition(
            Transition(
                name="serve",
                inputs={"q": 1},
                outputs={},
                weight=lambda m: float(m["q"]),
                priority=lambda m: 1 if m["q"] > 1 else 0,
                distribution=lambda m: Erlang(1.0, max(m["q"], 1)),
            )
        )
        view = net.view((2,))
        t = net.transitions[0]
        assert t.weight_in(view) == 2.0
        assert t.priority_in(view) == 1
        assert t.distribution_in(view) == Erlang(1.0, 2)

    def test_negative_marking_rejected(self):
        net = SMSPN()
        net.add_place("p", 1)
        net.add_transition(
            Transition(
                name="bad",
                inputs={"p": 1},
                outputs={},
                guard=lambda m: True,
                action=lambda m: {"p": m["p"] - 2},
                distribution=Exponential(1.0),
            )
        )
        with pytest.raises(ValueError):
            net.firing_choices((1,))

    def test_no_positive_weight_rejected(self):
        net = SMSPN()
        net.add_place("p", 1)
        net.add_transition(
            Transition(
                name="zero",
                inputs={"p": 1},
                outputs={"p": 1},
                weight=0.0,
                distribution=Exponential(1.0),
            )
        )
        with pytest.raises(ValueError):
            net.firing_choices((1,))

    def test_marking_view_mapping_interface(self, producer_consumer):
        view = producer_consumer.view((2, 1))
        assert view["buffer"] == 2 and view["free"] == 1
        assert dict(view) == {"buffer": 2, "free": 1}
        assert len(view) == 2
        assert view.as_dict() == {"buffer": 2, "free": 1}
        with pytest.raises(ValueError):
            producer_consumer.view((1, 2, 3))
