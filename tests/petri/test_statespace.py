"""Equivalence suite: the vectorized explorer vs. the legacy explorer.

For every bundled model the array-backed :func:`explore_vectorized` must
produce *exactly* the state space of the per-marking :func:`explore` — same
state count, same canonical state order, same edge multiset, same deadlocks,
same truncation behaviour — and the kernels built from both must agree on
``U(s)`` to 1e-12 at sampled s-points.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential, Immediate, Uniform
from repro.dnamaca import load_model
from repro.models import SCALED_CONFIGURATIONS, build_voting_net, voting_spec_text
from repro.models.queues import web_server_net
from repro.petri import (
    SMSPN,
    StateSpace,
    Transition,
    build_kernel,
    eliminate_vanishing,
    explore,
    explore_vectorized,
)

S_POINTS = (0.5 + 0.0j, 1.0 + 1.0j, 3.0 - 2.0j)


def deadlock_net() -> SMSPN:
    """A net that runs into a dead marking (drained token)."""
    net = SMSPN("drain")
    net.add_place("a", 2)
    net.add_place("b", 0)
    net.add_transition(
        Transition(name="go", inputs={"a": 1}, outputs={"b": 1}, distribution=Exponential(1.0))
    )
    return net


def routed_net() -> SMSPN:
    """Timed arrival + immediate routing (exercises vanishing elimination)."""
    net = SMSPN("routed")
    net.add_place("idle", 1)
    net.add_place("router", 0)
    net.add_place("left", 0)
    net.add_place("right", 0)
    net.add_transition(
        Transition(name="arrive", inputs={"idle": 1}, outputs={"router": 1},
                   distribution=Erlang(2.0, 2))
    )
    net.add_transition(
        Transition(name="route_left", inputs={"router": 1}, outputs={"left": 1},
                   weight=3.0, distribution=Immediate())
    )
    net.add_transition(
        Transition(name="route_right", inputs={"router": 1}, outputs={"right": 1},
                   weight=1.0, distribution=Immediate())
    )
    net.add_transition(
        Transition(name="serve_left", inputs={"left": 1}, outputs={"idle": 1},
                   distribution=Uniform(0.5, 1.5))
    )
    net.add_transition(
        Transition(name="serve_right", inputs={"right": 1}, outputs={"idle": 1},
                   distribution=Exponential(1.0))
    )
    return net


def bundled_models():
    """(label, net factory) for every bundled model family."""
    yield "voting-tiny", lambda: build_voting_net(SCALED_CONFIGURATIONS["tiny"])
    yield "voting-small", lambda: build_voting_net(SCALED_CONFIGURATIONS["small"])
    yield (
        "voting-dnamaca-tiny",
        lambda: load_model(voting_spec_text(SCALED_CONFIGURATIONS["tiny"]), name="voting-spec"),
    )
    yield "web-server", web_server_net          # opaque-lambda fallback path
    yield "deadlock", deadlock_net
    yield "routed-immediate", routed_net


def edge_multiset(graph):
    return sorted(
        (src, dst, name, round(prob, 13), dist)
        for src, dst, prob, dist, name in graph.edges
    )


def assert_same_space(legacy, space: StateSpace):
    assert space.n_states == legacy.n_states
    assert space.n_edges == legacy.n_edges
    assert np.array_equal(space.marking_array(), legacy.marking_array())
    assert [int(d) for d in space.deadlocks] == list(legacy.deadlocks)
    assert space.truncated == legacy.truncated
    assert space.initial_state == legacy.initial_state
    assert edge_multiset(space) == edge_multiset(legacy)


def assert_same_kernel(legacy_kernel, vector_kernel, tol=1e-12):
    assert vector_kernel.n_states == legacy_kernel.n_states
    assert vector_kernel.n_transitions == legacy_kernel.n_transitions
    assert vector_kernel.state_names == legacy_kernel.state_names
    for s in S_POINTS:
        difference = legacy_kernel.u_matrix(s) - vector_kernel.u_matrix(s)
        assert abs(difference).max() <= tol


@pytest.mark.parametrize("label,factory", list(bundled_models()), ids=lambda v: v if isinstance(v, str) else "")
def test_vectorized_explorer_matches_legacy(label, factory):
    net = factory()
    legacy = explore(net)
    space = explore_vectorized(net)
    assert isinstance(space, StateSpace)
    assert_same_space(legacy, space)
    assert_same_kernel(build_kernel(legacy), build_kernel(space))


@pytest.mark.parametrize("cap", [1, 10, 40])
def test_truncation_parity(cap):
    net = build_voting_net(SCALED_CONFIGURATIONS["tiny"])
    legacy = explore(net, max_states=cap)
    space = explore_vectorized(net, max_states=cap)
    assert legacy.truncated and space.truncated
    assert_same_space(legacy, space)
    # Kernel construction parity: frontier states whose every edge was dropped
    # make normalisation impossible — both paths must agree on success or on
    # the failure.
    try:
        legacy_kernel = build_kernel(legacy, allow_truncated=True)
    except ValueError:
        with pytest.raises(ValueError):
            build_kernel(space, allow_truncated=True)
    else:
        assert_same_kernel(legacy_kernel, build_kernel(space, allow_truncated=True))


def test_truncated_kernel_refused_without_opt_in():
    net = build_voting_net(SCALED_CONFIGURATIONS["tiny"])
    space = explore_vectorized(net, max_states=10)
    with pytest.raises(ValueError, match="truncated"):
        build_kernel(space)


def test_deadlock_parity_and_self_loops():
    net = deadlock_net()
    legacy = explore(net)
    space = explore_vectorized(net)
    assert_same_space(legacy, space)
    assert len(space.deadlocks) == 1
    assert_same_kernel(build_kernel(legacy), build_kernel(space))


def test_vanishing_elimination_matches_legacy():
    net = routed_net()
    legacy = eliminate_vanishing(explore(net))
    space = eliminate_vanishing(explore_vectorized(net))
    assert isinstance(space, StateSpace)
    assert_same_space(legacy, space)
    assert_same_kernel(build_kernel(legacy), build_kernel(space))
    # The router marking is gone and probabilities still fold to 3:1.
    idle = space.index_of((1, 0, 0, 0))
    left = space.index_of((0, 0, 1, 0))
    P = build_kernel(space).embedded_matrix().toarray()
    assert P[idle, left] == pytest.approx(0.75)


def test_vanishing_cycle_detected_in_array_domain():
    net = SMSPN("zeno")
    net.add_place("a", 1)
    net.add_place("b", 0)
    net.add_place("c", 0)
    net.add_transition(
        Transition(name="start", inputs={"a": 1}, outputs={"b": 1},
                   distribution=Exponential(1.0))
    )
    net.add_transition(
        Transition(name="i1", inputs={"b": 1}, outputs={"c": 1}, distribution=Immediate())
    )
    net.add_transition(
        Transition(name="i2", inputs={"c": 1}, outputs={"b": 1}, distribution=Immediate())
    )
    with pytest.raises(ValueError, match="cycle of vanishing markings"):
        eliminate_vanishing(explore_vectorized(net))


def test_unpackable_markings_use_dict_interning_with_same_result():
    """Nets whose markings exceed the 63-bit packing budget stay correct."""
    net = SMSPN("wide")
    n = 8
    for i in range(n):
        net.add_place(f"q{i}", 300)   # 300 needs 9 bits; 8 * 9 = 72 > 63
    for i in range(n):
        net.add_transition(
            Transition(
                name=f"t{i}",
                inputs={f"q{i}": 1},
                outputs={f"q{(i + 1) % n}": 1},
                distribution=Exponential(1.0),
            )
        )
    legacy = explore(net, max_states=400)
    space = explore_vectorized(net, max_states=400)
    assert space._index is not None          # byte-dict fallback engaged
    assert_same_space(legacy, space)
    assert space.index_of(space.marking_matrix[123]) == 123


def _fault_net(**transition_kwargs) -> SMSPN:
    net = SMSPN("faulting")
    net.add_place("a", 0)
    net.add_place("b", 1)
    net.add_transition(
        Transition(name="t", distribution=Exponential(1.0), **transition_kwargs)
    )
    return net


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(inputs={"b": 1}, outputs={"a": 1}, weight="1 / a"),
        dict(inputs={"b": 1}, action={"a": "1 / a"}),
        dict(inputs={"b": 1}, outputs={"a": 1}, guard="1 / a > 1"),
        dict(inputs={"b": 1}, outputs={"a": 1}, priority="1 / a"),
    ],
    ids=["weight", "action", "guard", "priority"],
)
def test_arithmetic_faults_in_declarative_attributes_match_legacy(kwargs):
    """Expressions dividing by a zero token count raise exactly like the
    scalar path — never a silently divergent state space (the vector path
    detects the fault and re-evaluates those rows per-state)."""
    with pytest.raises(ZeroDivisionError):
        explore(_fault_net(**kwargs))
    with pytest.raises(ZeroDivisionError):
        explore_vectorized(_fault_net(**kwargs))


def test_declarative_attributes_evaluate_only_where_enabled(monkeypatch):
    """A fault in an arc-disabled row must neither raise nor demote the wave
    to the per-row scalar fallback (the scalar path never sees that row)."""

    def build():
        net = SMSPN("masked")
        net.add_place("p1", 1)
        net.add_place("p2", 0)
        net.add_transition(
            Transition(name="go", inputs={"p1": 1}, outputs={"p2": 1},
                       weight="6 / p1", distribution=Exponential(1.0))
        )
        net.add_transition(
            Transition(name="back", inputs={"p2": 1}, outputs={"p1": 1},
                       distribution=Exponential(2.0))
        )
        return net

    legacy = explore(build())
    # If the vectorized path fell back to scalar evaluation anywhere, this
    # trap would fire.
    monkeypatch.setattr(
        Transition, "weight_in",
        lambda self, view: (_ for _ in ()).throw(AssertionError("scalar fallback used")),
    )
    space = explore_vectorized(build())
    assert_same_space(legacy, space)


def test_state_space_equality_does_not_crash():
    net = build_voting_net(SCALED_CONFIGURATIONS["tiny"])
    space = explore_vectorized(net)
    assert space == space
    assert space != explore_vectorized(net)   # identity semantics, no ValueError


def test_lazy_branch_division_matches_legacy():
    """A division guarded by the if-branch is legal in the scalar path; the
    vectorized fallback must reproduce that (lazy) semantics, not fault."""
    net = _fault_net(
        inputs={"b": 1}, outputs={"a": 1}, weight="(1 / a if a > 0 else 2)"
    )
    legacy = explore(net)
    space = explore_vectorized(net)
    assert_same_space(legacy, space)


def test_interner_repacks_when_token_counts_grow():
    """Marking counts that outgrow the initial bit budget trigger a repack."""
    net = SMSPN("doubling")
    net.add_place("a", 1)
    net.add_place("b", 0)
    net.add_transition(
        Transition(
            name="double",
            guard="a < 1000",
            action={"a": "a * 2", "b": "b + 1"},
            distribution=Exponential(1.0),
        )
    )
    legacy = explore(net)
    space = explore_vectorized(net)
    assert_same_space(legacy, space)
    assert int(space.marking_matrix[:, 0].max()) == 1024


class TestStateSpaceInterface:
    def test_o1_index_of_and_unknown_marking(self):
        space = explore_vectorized(build_voting_net(SCALED_CONFIGURATIONS["tiny"]))
        for state in (0, space.n_states // 2, space.n_states - 1):
            assert space.index_of(space.marking_matrix[state]) == state
        with pytest.raises(KeyError, match="not reachable"):
            space.index_of((99,) * space.marking_matrix.shape[1])

    def test_marking_array_is_the_backing_store(self):
        space = explore_vectorized(build_voting_net(SCALED_CONFIGURATIONS["tiny"]))
        assert space.marking_array() is space.marking_matrix
        # ... and does not pin the oversized exploration growth buffer.
        assert space.marking_matrix.base is None

    def test_states_where_matches_states_matching(self):
        params = SCALED_CONFIGURATIONS["tiny"]
        space = explore_vectorized(build_voting_net(params))
        cc = params.voters
        by_loop = space.states_where(lambda m: m["p2"] == cc)
        by_vector = space.states_matching("p2 == CC", {"CC": cc})
        assert by_loop == by_vector.tolist()

    def test_transition_usage_matches_legacy(self):
        net = build_voting_net(SCALED_CONFIGURATIONS["tiny"])
        assert explore_vectorized(net).transition_usage() == explore(net).transition_usage()

    def test_edge_columns_are_soa(self):
        space = explore_vectorized(build_voting_net(SCALED_CONFIGURATIONS["tiny"]))
        assert space.edge_src.dtype == np.int64
        assert space.edge_dst.dtype == np.int64
        assert space.edge_prob.dtype == np.float64
        assert space.edge_dist.dtype == np.int32
        assert space.edge_trans.dtype == np.int32
        # unique-distribution table deduplicated at exploration time
        assert len(space.distributions) == len(set(space.distributions))

    def test_kernel_is_picklable_with_marking_names(self):
        """Spawn-start multiprocessing ships kernels to workers — the lazy
        marking-name factory must survive pickling."""
        import pickle

        kernel = build_kernel(explore_vectorized(build_voting_net(SCALED_CONFIGURATIONS["tiny"])))
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.state_names == kernel.state_names
        assert clone.state_names[0].startswith("(")

    def test_round_trip_to_reachability_graph(self):
        net = build_voting_net(SCALED_CONFIGURATIONS["tiny"])
        space = explore_vectorized(net)
        graph = space.to_reachability_graph()
        assert_same_space(graph, space)
