"""Hypothesis property tests over randomly generated SM-SPNs.

These check structural invariants of the reachability/kernel pipeline that
must hold for *any* well-formed net, not just the hand-built models.
"""
from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distributions import Deterministic, Erlang, Exponential, Uniform
from repro.petri import SMSPN, Transition, build_kernel, explore

DISTS = [Exponential(1.0), Erlang(2.0, 2), Uniform(0.2, 1.2), Deterministic(0.7)]


@st.composite
def random_nets(draw):
    """A small random net of token-conserving transfer transitions.

    Every transition moves one token from one place to another, so the total
    token count is invariant and the state space is finite by construction.
    """
    n_places = draw(st.integers(min_value=2, max_value=4))
    tokens = draw(st.integers(min_value=1, max_value=3))
    net = SMSPN("random")
    for p in range(n_places):
        net.add_place(f"p{p}", tokens if p == 0 else 0)
    # A ring of transfers guarantees every token can keep moving (no deadlock),
    # extra random transfers add branching.
    pairs = {(i, (i + 1) % n_places) for i in range(n_places)}
    n_extra = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_extra):
        i = draw(st.integers(min_value=0, max_value=n_places - 1))
        j = draw(st.integers(min_value=0, max_value=n_places - 1))
        if i != j:
            pairs.add((i, j))
    for index, (i, j) in enumerate(sorted(pairs)):
        weight = draw(st.floats(min_value=0.1, max_value=5.0))
        dist = DISTS[draw(st.integers(min_value=0, max_value=len(DISTS) - 1))]
        net.add_transition(
            Transition(
                name=f"t{index}",
                inputs={f"p{i}": 1},
                outputs={f"p{j}": 1},
                weight=weight,
                distribution=dist,
            )
        )
    return net, tokens


@given(random_nets())
@settings(max_examples=40, deadline=None)
def test_reachable_markings_conserve_tokens(case):
    net, tokens = case
    graph = explore(net, max_states=500)
    assert graph.n_states >= 1
    totals = graph.marking_array().sum(axis=1)
    assert np.all(totals == tokens)


@given(random_nets())
@settings(max_examples=40, deadline=None)
def test_kernel_is_row_stochastic_and_connected_enough(case):
    net, _ = case
    graph = explore(net, max_states=500)
    kernel = build_kernel(graph)
    P = kernel.embedded_matrix()
    row_sums = np.asarray(P.sum(axis=1)).ravel()
    assert np.allclose(row_sums, 1.0)
    # Firing probabilities out of each explored marking sum to one as well.
    for state in range(graph.n_states):
        choices = net.firing_choices(graph.markings[state])
        if choices:
            assert sum(p for _, p, _, _ in choices) == 1.0 or abs(
                sum(p for _, p, _, _ in choices) - 1.0
            ) < 1e-9


@given(random_nets(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_simulated_choice_frequencies_match_probabilities(case, seed):
    """The simulator's branch selection follows the SM-SPN probabilities."""
    net, _ = case
    marking = net.initial_marking
    choices = net.firing_choices(marking)
    if len(choices) < 2:
        return
    from repro.simulation import PetriSimulator

    simulator = PetriSimulator(net)
    rng = np.random.default_rng(seed)
    counts = {tuple(m): 0 for _, _, m, _ in choices}
    n_draws = 400
    for _ in range(n_draws):
        next_marking, _ = simulator._step(marking, rng)
        counts[tuple(next_marking)] = counts.get(tuple(next_marking), 0) + 1
    for _, probability, next_marking, _ in choices:
        observed = counts[tuple(next_marking)] / n_draws
        # Different transitions can lead to the same next marking, so the
        # observed frequency may exceed a single branch's probability; it must
        # never be significantly below it.
        assert observed >= probability - 4.5 * np.sqrt(probability * (1 - probability) / n_draws) - 1e-9
