"""Tests for the direct SM-SPN simulator (no state-space generation)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    SCALED_CONFIGURATIONS,
    all_voted_predicate,
    build_voting_graph,
    build_voting_net,
    initial_marking_predicate,
    voters_done_predicate,
)
from repro.petri import SMSPN, Transition, passage_solver, transient_solver
from repro.distributions import Exponential, Uniform
from repro.simulation import PetriSimulator, empirical_cdf


@pytest.fixture(scope="module")
def tiny_params():
    return SCALED_CONFIGURATIONS["tiny"]


@pytest.fixture(scope="module")
def tiny_net(tiny_params):
    return build_voting_net(tiny_params)


@pytest.fixture(scope="module")
def tiny_graph(tiny_params):
    return build_voting_graph(tiny_params)


class TestPetriSimulator:
    def test_passage_times_match_state_space_simulation(self, tiny_net, tiny_params, tiny_graph):
        """Simulating the net directly and analysing the generated SMP must
        describe the same random variable (cross-validation of Fig. 4 style)."""
        simulator = PetriSimulator(tiny_net)
        samples = simulator.sample_passage_times(
            all_voted_predicate(tiny_params), n_samples=1500, rng=7
        )
        solver = passage_solver(
            tiny_graph, initial_marking_predicate(tiny_params), all_voted_predicate(tiny_params)
        )
        ts = np.quantile(samples, [0.25, 0.5, 0.75])
        analytic = solver.cdf(ts)
        simulated = empirical_cdf(samples, ts)
        assert np.max(np.abs(analytic - simulated)) < 0.05
        # The mean is not compared: the rare bulk-repair branch has a 5000s
        # Erlang component (Fig. 3), so the sample mean of 1500 replications
        # has enormous variance — exactly the rare-event weakness of
        # simulation that the paper's Fig. 6 discussion points out.

    def test_transient_matches_analytic(self, tiny_net, tiny_params, tiny_graph):
        simulator = PetriSimulator(tiny_net)
        t_points = np.array([2.0, 6.0, 15.0])
        simulated = simulator.sample_transient(
            voters_done_predicate(2), t_points, n_samples=2000, rng=11
        )
        solver = transient_solver(
            tiny_graph, initial_marking_predicate(tiny_params), voters_done_predicate(2)
        )
        analytic = solver.probability(t_points)
        assert np.max(np.abs(simulated - analytic)) < 0.05

    def test_deadlock_detected(self):
        net = SMSPN("dead")
        net.add_place("a", 1)
        net.add_place("b", 0)
        net.add_transition(
            Transition(name="go", inputs={"a": 1}, outputs={"b": 1}, distribution=Exponential(1.0))
        )
        simulator = PetriSimulator(net)
        with pytest.raises(RuntimeError, match="deadlock"):
            simulator.sample_passage_times(lambda m: False, n_samples=1, rng=0)

    def test_max_firings_guard(self, tiny_net, tiny_params):
        simulator = PetriSimulator(tiny_net)
        with pytest.raises(RuntimeError, match="did not reach"):
            simulator.sample_passage_times(
                lambda m: False, n_samples=1, rng=0, max_firings=50
            )

    def test_custom_initial_marking(self):
        net = SMSPN("walk")
        net.add_place("here", 1)
        net.add_place("there", 0)
        net.add_transition(
            Transition(name="go", inputs={"here": 1}, outputs={"there": 1},
                       distribution=Uniform(1.0, 2.0))
        )
        net.add_transition(
            Transition(name="back", inputs={"there": 1}, outputs={"here": 1},
                       distribution=Uniform(1.0, 2.0))
        )
        simulator = PetriSimulator(net)
        samples = simulator.sample_passage_times(
            lambda m: m["here"] == 1,
            n_samples=200,
            rng=3,
            initial_marking=(0, 1),
        )
        assert np.all((samples >= 1.0) & (samples <= 2.0))

    def test_marking_cache_reused(self, tiny_net, tiny_params):
        simulator = PetriSimulator(tiny_net)
        simulator.sample_passage_times(all_voted_predicate(tiny_params), n_samples=20, rng=5)
        assert len(simulator._choice_cache) > 0
        uncached = PetriSimulator(tiny_net, cache_markings=False)
        uncached.sample_passage_times(all_voted_predicate(tiny_params), n_samples=5, rng=5)
        assert len(uncached._choice_cache) == 0
