"""Tests for the SMP trajectory simulator and the estimators."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import PassageTimeSolver, TransientSolver
from repro.distributions import Convolution, Erlang, Exponential, Uniform
from repro.simulation import (
    PassageTimeSample,
    TrajectorySampler,
    density_histogram,
    empirical_cdf,
    quantile_estimate,
    simulate_passage_times,
    simulate_transient,
)


class TestTrajectorySampler:
    def test_step_respects_transition_structure(self, branching_kernel, rng):
        sampler = TrajectorySampler(branching_kernel)
        for _ in range(50):
            nxt, sojourn = sampler.step(0, rng)
            assert nxt in (1, 2)
            assert sojourn >= 0.0
        # State 4 has a single successor.
        assert all(sampler.step(4, rng)[0] == 0 for _ in range(10))

    def test_initial_state_follows_alpha(self, branching_kernel, rng):
        sampler = TrajectorySampler(branching_kernel)
        alpha = np.array([0.0, 0.25, 0.75, 0.0, 0.0])
        draws = [sampler.sample_initial(alpha, rng) for _ in range(2000)]
        counts = np.bincount(draws, minlength=5) / len(draws)
        assert counts[2] == pytest.approx(0.75, abs=0.05)
        assert counts[0] == counts[3] == counts[4] == 0


class TestPassageTimeSimulation:
    def test_single_hop_matches_sojourn_distribution(self, two_state_kernel, rng):
        samples = simulate_passage_times(
            two_state_kernel, [0], [1], n_samples=4000, rng=rng
        )
        erlang = Erlang(2.0, 3)
        assert samples.mean() == pytest.approx(erlang.mean(), rel=0.05)
        assert samples.var() == pytest.approx(erlang.variance(), rel=0.15)

    def test_cycle_time_includes_both_sojourns(self, two_state_kernel, rng):
        samples = simulate_passage_times(
            two_state_kernel, [0], [0], n_samples=3000, rng=rng
        )
        cycle = Convolution([Erlang(2.0, 3), Uniform(1.0, 2.0)])
        assert samples.mean() == pytest.approx(cycle.mean(), rel=0.05)
        assert samples.min() > 1.0  # the uniform leg alone takes at least 1

    def test_agreement_with_analytic_density(self, branching_kernel, rng):
        """Simulation vs. the analytic pipeline — the validation of Figs. 4/6."""
        solver = PassageTimeSolver(branching_kernel, sources=[0], targets=[4])
        samples = simulate_passage_times(branching_kernel, [0], [4], n_samples=6000, rng=rng)
        ts = np.quantile(samples, [0.2, 0.5, 0.8])
        analytic_cdf = solver.cdf(ts)
        simulated_cdf = empirical_cdf(samples, ts)
        assert np.max(np.abs(analytic_cdf - simulated_cdf)) < 0.03

    def test_invalid_arguments(self, two_state_kernel):
        with pytest.raises(ValueError):
            simulate_passage_times(two_state_kernel, [0], [1], n_samples=0)
        with pytest.raises(ValueError):
            simulate_passage_times(two_state_kernel, [0], [5])
        with pytest.raises(ValueError):
            simulate_passage_times(two_state_kernel, [0], [1], alpha=np.ones(3))

    def test_max_transitions_guard(self, two_state_kernel):
        with pytest.raises(RuntimeError):
            simulate_passage_times(
                two_state_kernel, [0], [1], n_samples=1, max_transitions=0
            )


class TestTransientSimulation:
    def test_two_state_ctmc_occupancy(self, ctmc_kernel, rng):
        t_points = np.array([0.1, 0.4, 1.0, 2.5])
        estimate = simulate_transient(ctmc_kernel, [0], [1], t_points, n_samples=6000, rng=rng)
        expected = 0.4 * (1.0 - np.exp(-5.0 * t_points))
        assert np.max(np.abs(estimate - expected)) < 0.03

    def test_agreement_with_analytic_transient(self, branching_kernel, rng):
        t_points = np.array([0.3, 1.0, 3.0])
        solver = TransientSolver(branching_kernel, sources=[0], targets=[3, 4])
        analytic = solver.probability(t_points)
        simulated = simulate_transient(
            branching_kernel, [0], [3, 4], t_points, n_samples=6000, rng=rng
        )
        assert np.max(np.abs(analytic - simulated)) < 0.03

    def test_time_zero_occupancy_is_initial_state(self, ctmc_kernel, rng):
        est = simulate_transient(ctmc_kernel, [0], [0], [0.0], n_samples=500, rng=rng)
        assert est[0] == 1.0

    def test_empty_t_points(self, ctmc_kernel, rng):
        assert simulate_transient(ctmc_kernel, [0], [1], [], rng=rng).size == 0

    def test_negative_t_rejected(self, ctmc_kernel, rng):
        with pytest.raises(ValueError):
            simulate_transient(ctmc_kernel, [0], [1], [-1.0], rng=rng)


class TestEstimators:
    def test_density_histogram_integrates_to_one(self, rng):
        samples = rng.gamma(3.0, 2.0, size=20_000)
        centres, density, stderr = density_histogram(samples, bins=50)
        widths = centres[1] - centres[0]
        assert np.sum(density * widths) == pytest.approx(1.0, abs=1e-6)
        assert np.all(stderr >= 0)

    def test_density_histogram_matches_known_pdf(self, rng):
        d = Exponential(1.5)
        samples = d.sample(rng, size=50_000)
        centres, density, _ = density_histogram(samples, bins=30, t_range=(0.0, 3.0))
        assert np.max(np.abs(density - d.pdf(centres))) < 0.08

    def test_empirical_cdf_and_quantiles(self, rng):
        samples = rng.exponential(2.0, size=30_000)
        ts = np.array([0.5, 1.0, 3.0])
        expected = 1.0 - np.exp(-ts / 2.0)
        assert np.max(np.abs(empirical_cdf(samples, ts) - expected)) < 0.02
        assert quantile_estimate(samples, 0.5) == pytest.approx(2.0 * np.log(2.0), rel=0.05)
        with pytest.raises(ValueError):
            quantile_estimate(samples, 1.5)

    def test_passage_time_sample_wrapper(self, rng):
        samples = rng.normal(10.0, 1.0, size=5000).clip(min=0)
        wrapped = PassageTimeSample(samples)
        lo, hi = wrapped.mean_confidence_interval()
        assert lo < 10.0 < hi
        assert wrapped.n == 5000
        assert wrapped.quantile(0.5) == pytest.approx(10.0, abs=0.1)
        with pytest.raises(ValueError):
            PassageTimeSample(np.array([]))

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            density_histogram(np.array([]))
