"""Counters, gauges and histograms with Prometheus text exposition.

One :class:`MetricsRegistry` per process (:func:`get_metrics`) is the single
source of pipeline statistics: the solver layer feeds it at *block/batch*
granularity (never per matvec), the multiprocessing backend merges each pool
worker's registry delta back through the :class:`~repro.distributed.queue.SBlock`
result path (:meth:`MetricsRegistry.diff` / :meth:`MetricsRegistry.absorb`),
and the service renders it at ``GET /metrics`` in the Prometheus text
exposition format.

This module also owns the one per-worker stats merge path
(:func:`merge_worker_stats`, formerly duplicated bookkeeping across the
pipeline, the api engines and the service scheduler) and the registry-backed
global view (:func:`worker_stats_snapshot`).

Everything here is stdlib-only and thread-safe.
"""
from __future__ import annotations

import json
import os
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "merge_worker_stats",
    "worker_stats_snapshot",
    "note_solve_block",
    "note_job_transition",
    "note_block_retry",
    "note_corrupt_artifact",
    "observe_job_seconds",
    "record_worker_block",
    "effective_cores",
]

#: default histogram bounds for second-valued observations (block solves,
#: request latencies): 1 ms .. 10 min
SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

#: default histogram bounds for iteration counts per s-point
ITERATIONS_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0,
)


def effective_cores() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _Metric:
    """Shared label handling; subclasses define the value semantics."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _items(self) -> list[tuple[tuple, object]]:
        with self._lock:
            return list(self._values.items())


class Counter(_Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Gauge(_Metric):
    """A value that can go up and down (queue depth, busy fraction)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=SECONDS_BUCKETS):
        super().__init__(name, help, labelnames)
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")

    def _slot(self, key: tuple) -> dict:
        slot = self._values.get(key)
        if slot is None:
            slot = self._values[key] = {
                "buckets": [0] * (len(self.bounds) + 1),  # +1 for +Inf
                "sum": 0.0,
                "count": 0,
            }
        return slot

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        key = self._key(labels)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            slot = self._slot(key)
            slot["buckets"][index] += 1
            slot["sum"] += value
            slot["count"] += 1

    def snapshot_of(self, **labels) -> dict:
        key = self._key(labels)
        with self._lock:
            slot = self._values.get(key)
            return json.loads(json.dumps(slot)) if slot else \
                {"buckets": [0] * (len(self.bounds) + 1), "sum": 0.0, "count": 0}


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name -> metric mapping with exposition, snapshot and merge support."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------ creation
    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, labelnames, **kwargs)
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if tuple(labelnames) != metric.labelnames:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, got {tuple(labelnames)}"
            )
        return metric

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=SECONDS_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> dict:
        """JSON-serialisable view: the one stats surface every layer shares.

        Label sets are keyed by the JSON array of their label values, so the
        snapshot round-trips losslessly through :meth:`absorb`.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out = {}
        for metric in metrics:
            entry: dict = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "values": {},
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            for key, value in metric._items():
                label_key = json.dumps(list(key))
                if isinstance(metric, Histogram):
                    entry["values"][label_key] = {
                        "buckets": list(value["buckets"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                else:
                    entry["values"][label_key] = value
            out[metric.name] = entry
        return out

    def diff(self, before: dict) -> dict:
        """The change since ``before`` (an earlier :meth:`snapshot`).

        Counters and histograms subtract; gauges keep their current value.
        Used by pool workers to ship per-block metric deltas to the master.
        """
        current = self.snapshot()
        delta: dict = {}
        for name, entry in current.items():
            prior = before.get(name, {"values": {}})
            values: dict = {}
            for label_key, value in entry["values"].items():
                old = prior["values"].get(label_key)
                if entry["type"] == "counter":
                    changed = value - (old or 0.0)
                    if changed:
                        values[label_key] = changed
                elif entry["type"] == "gauge":
                    if old is None or old != value:
                        values[label_key] = value
                else:  # histogram
                    if old is None:
                        changed = dict(value)
                    else:
                        changed = {
                            "buckets": [
                                c - p for c, p in zip(value["buckets"], old["buckets"])
                            ],
                            "sum": value["sum"] - old["sum"],
                            "count": value["count"] - old["count"],
                        }
                    if changed["count"]:
                        values[label_key] = changed
            if values:
                delta[name] = {**entry, "values": values}
        return delta

    def absorb(self, delta: dict | None) -> None:
        """Merge a snapshot/diff from another process into this registry."""
        for name, entry in (delta or {}).items():
            kind = entry.get("type", "counter")
            labelnames = tuple(entry.get("labels", ()))
            if kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), labelnames,
                    buckets=entry.get("bounds", SECONDS_BUCKETS),
                )
            else:
                metric = self._get_or_create(
                    _METRIC_KINDS[kind], name, entry.get("help", ""), labelnames
                )
            for label_key, value in entry["values"].items():
                key = tuple(json.loads(label_key))
                with metric._lock:
                    if kind == "counter":
                        metric._values[key] = metric._values.get(key, 0.0) + value
                    elif kind == "gauge":
                        metric._values[key] = float(value)
                    else:
                        slot = metric._slot(key)
                        buckets = value["buckets"]
                        if len(buckets) != len(slot["buckets"]):
                            raise ValueError(
                                f"histogram {name!r} bucket layout mismatch"
                            )
                        slot["buckets"] = [
                            a + b for a, b in zip(slot["buckets"], buckets)
                        ]
                        slot["sum"] += value["sum"]
                        slot["count"] += value["count"]

    # ---------------------------------------------------------- exposition
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (``GET /metrics`` body)."""
        lines: list[str] = []
        for name, entry in sorted(self.snapshot().items()):
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['type']}")
            labelnames = entry["labels"]
            for label_key, value in sorted(entry["values"].items()):
                labelvalues = json.loads(label_key)
                rendered = _render_labels(labelnames, labelvalues)
                if entry["type"] == "histogram":
                    cumulative = 0
                    for bound, count in zip(entry["bounds"], value["buckets"]):
                        cumulative += count
                        le = _render_labels(labelnames + ["le"],
                                            labelvalues + [_format_bound(bound)])
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += value["buckets"][-1]
                    le = _render_labels(labelnames + ["le"], labelvalues + ["+Inf"])
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(f"{name}_sum{rendered} {_format_value(value['sum'])}")
                    lines.append(f"{name}_count{rendered} {value['count']}")
                else:
                    lines.append(f"{name}{rendered} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def _render_labels(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape_label(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_bound(bound: float) -> str:
    return repr(bound) if bound != int(bound) else str(int(bound)) + ".0"


def _format_value(value: float) -> str:
    value = float(value)
    return str(int(value)) if value == int(value) else repr(value)


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _METRICS


# ---------------------------------------------------------------------------
# Shared per-worker stats plumbing (the ONE merge path).
# ---------------------------------------------------------------------------


def merge_worker_stats(into: dict, update: dict | None) -> dict:
    """Accumulate per-worker ``{"blocks", "points", "busy_seconds"}`` counters.

    The single merge implementation behind every per-request / per-run view
    of worker activity (pipeline statistics, api engine statistics, query
    statistics): the same worker appearing in several evaluation rounds
    sums, new workers are added.  The process-global view lives in the
    metrics registry (:func:`record_worker_block` /
    :func:`worker_stats_snapshot`) and is fed exactly once per completed
    block by the dispatching backend.
    """
    for worker, entry in (update or {}).items():
        slot = into.setdefault(
            worker, {"blocks": 0, "points": 0, "busy_seconds": 0.0}
        )
        slot["blocks"] += entry.get("blocks", 0)
        slot["points"] += entry.get("points", 0)
        slot["busy_seconds"] = round(
            slot["busy_seconds"] + entry.get("busy_seconds", 0.0), 6
        )
    return into


def record_worker_block(
    worker, points: int, seconds: float, registry: MetricsRegistry | None = None
) -> None:
    """Feed one completed s-block into the registry's per-worker counters."""
    registry = registry or _METRICS
    label = str(worker)
    registry.counter(
        "repro_worker_blocks_total", "s-blocks completed per worker", ("worker",)
    ).inc(1, worker=label)
    registry.counter(
        "repro_worker_points_total", "s-points served per worker", ("worker",)
    ).inc(points, worker=label)
    registry.counter(
        "repro_worker_busy_seconds_total", "busy wall-clock per worker", ("worker",)
    ).inc(seconds, worker=label)


def worker_stats_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """Registry-backed ``{worker: {blocks, points, busy_seconds}}`` view."""
    registry = registry or _METRICS
    out: dict[str, dict] = {}
    for metric_name, field in (
        ("repro_worker_blocks_total", "blocks"),
        ("repro_worker_points_total", "points"),
        ("repro_worker_busy_seconds_total", "busy_seconds"),
    ):
        metric = registry.get(metric_name)
        if metric is None:
            continue
        for key, value in metric._items():
            slot = out.setdefault(
                key[0], {"blocks": 0, "points": 0, "busy_seconds": 0.0}
            )
            slot[field] = round(value, 6) if field == "busy_seconds" else int(value)
    return out


def note_solve_block(
    *,
    points: int,
    seconds: float,
    iterations: int = 0,
    direct_solves: int = 0,
    unconverged: int = 0,
    iteration_counts=None,
    engine: str | None = None,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one completed solve block (the instrumentation granularity).

    Called once per memory-budgeted s-block by the batched/factored solver
    loops and by the direct-LU path — never per matvec or per iteration —
    in whichever process ran the block; pool workers' increments are merged
    back into the master registry through the block result path.
    """
    registry = registry or _METRICS
    registry.counter(
        "repro_points_evaluated_total", "transform s-points evaluated"
    ).inc(points)
    registry.counter(
        "repro_solve_iterations_total", "iterative-solve iterations across all points"
    ).inc(iterations)
    if direct_solves:
        registry.counter(
            "repro_direct_solves_total", "sparse-LU direct solves"
        ).inc(direct_solves)
    if unconverged:
        registry.counter(
            "repro_unconverged_points_total",
            "points returned truncated at the iteration cap",
        ).inc(unconverged)
    registry.histogram(
        "repro_block_seconds", "wall-clock per solve block", ()
    ).observe(seconds)
    if engine:
        registry.counter(
            "repro_solve_blocks_total", "solve blocks per evaluation engine",
            ("engine",),
        ).inc(1, engine=engine)
    for count in iteration_counts or ():
        registry.histogram(
            "repro_iterations_per_s_point", "iterations needed per s-point",
            (), buckets=ITERATIONS_BUCKETS,
        ).observe(count)


# ---------------------------------------------------------------------------
# Async-job lifecycle series (fed by repro.jobs.store).
# ---------------------------------------------------------------------------


def note_job_transition(
    state: str, tenant: str, registry: MetricsRegistry | None = None
) -> None:
    """Count one job-lifecycle transition into ``state`` for ``tenant``."""
    registry = registry or _METRICS
    registry.counter(
        "repro_jobs_total", "async-job lifecycle transitions by state",
        ("state", "tenant"),
    ).inc(1, state=state, tenant=tenant)


def observe_job_seconds(
    kind: str, seconds: float, registry: MetricsRegistry | None = None
) -> None:
    """Record the running -> terminal wall-clock of one async job."""
    registry = registry or _METRICS
    registry.histogram(
        "repro_job_seconds", "async-job execution wall-clock", ("kind",)
    ).observe(seconds, kind=kind)


# ---------------------------------------------------------------------------
# Failure-domain series (fed by the fault defences: checksummed artifacts,
# pool rebuilds, the hung-worker watchdog).
# ---------------------------------------------------------------------------


def note_block_retry(
    reason: str, blocks: int = 1, registry: MetricsRegistry | None = None
) -> None:
    """Count s-blocks resubmitted after a pool break (``crashed`` / ``hung``)."""
    registry = registry or _METRICS
    registry.counter(
        "repro_block_retries_total",
        "s-blocks resubmitted after a worker-pool break, by break reason",
        ("reason",),
    ).inc(blocks, reason=reason)


def note_corrupt_artifact(
    kind: str, registry: MetricsRegistry | None = None
) -> None:
    """Count one quarantined on-disk artifact (``checkpoint`` / ``plane``)."""
    registry = registry or _METRICS
    registry.counter(
        "repro_corrupt_artifacts_total",
        "artifacts that failed their integrity check and were quarantined",
        ("kind",),
    ).inc(1, kind=kind)
