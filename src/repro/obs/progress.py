"""Live solve progress fed by per-block completions.

A :class:`ProgressReporter` is created per evaluation run, told the total
work up front (``add_total``) and fed once per completed s-block
(``advance``).  It derives blocks done/total, points/s and an ETA, and
fans out to optional listeners: the CLI attaches a stderr renderer
(:func:`stderr_renderer`), the service registers reporters in a
:class:`ProgressBoard` keyed by model digest so ``GET /v1/progress/{digest}``
can show in-flight evaluations, and future async-job APIs can attach their
own hooks via :meth:`ProgressReporter.subscribe`.

Everything is stdlib-only, thread-safe, and free when unused: backends
accept ``progress=None`` and skip the calls.
"""
from __future__ import annotations

import sys
import threading
import time

__all__ = ["ProgressReporter", "ProgressBoard", "stderr_renderer"]


class ProgressReporter:
    """Tracks one evaluation run at s-block granularity."""

    def __init__(self, label: str = "", clock=time.monotonic):
        self.label = label
        self._clock = clock
        self._lock = threading.Lock()
        self._listeners: list = []
        self._started = clock()
        self._finished_at: float | None = None
        self.total_blocks = 0
        self.total_points = 0
        self.done_blocks = 0
        self.done_points = 0

    # ------------------------------------------------------------- feeding
    def add_total(self, blocks: int, points: int = 0) -> None:
        """Announce upcoming work (called before dispatch; additive)."""
        with self._lock:
            self.total_blocks += blocks
            self.total_points += points
        self._emit()

    def advance(self, blocks: int = 1, points: int = 0) -> None:
        """Record completed work (called once per finished s-block)."""
        with self._lock:
            self.done_blocks += blocks
            self.done_points += points
        self._emit()

    def finish(self) -> None:
        with self._lock:
            if self._finished_at is None:
                self._finished_at = self._clock()
        self._emit(final=True)

    # ------------------------------------------------------------- reading
    def snapshot(self) -> dict:
        """JSON-ready view: the service progress endpoint's payload."""
        with self._lock:
            now = self._finished_at or self._clock()
            elapsed = max(now - self._started, 1e-9)
            points_per_s = self.done_points / elapsed
            remaining = max(self.total_points - self.done_points, 0)
            if self._finished_at is not None:
                eta = 0.0
            elif points_per_s > 0 and self.total_points:
                eta = remaining / points_per_s
            else:
                eta = None
            return {
                "label": self.label,
                "blocks_done": self.done_blocks,
                "blocks_total": self.total_blocks,
                "points_done": self.done_points,
                "points_total": self.total_points,
                "elapsed_seconds": round(elapsed, 3),
                "points_per_second": round(points_per_s, 3),
                "eta_seconds": None if eta is None else round(eta, 3),
                "finished": self._finished_at is not None,
            }

    # ----------------------------------------------------------- listeners
    def subscribe(self, listener) -> "ProgressReporter":
        """Attach ``listener(snapshot_dict, final: bool)``; returns self."""
        with self._lock:
            self._listeners.append(listener)
        return self

    def _emit(self, final: bool = False) -> None:
        with self._lock:
            listeners = list(self._listeners)
        if not listeners:
            return
        snap = self.snapshot()
        for listener in listeners:
            try:
                listener(snap, final)
            except Exception:  # pragma: no cover - listeners must not break solves
                pass


class ProgressBoard:
    """The service-owned index of in-flight reporters, keyed by digest.

    Finished runs linger (bounded) so a client polling just after
    completion still sees the terminal snapshot.
    """

    def __init__(self, keep_finished: int = 32):
        self._lock = threading.Lock()
        self._active: dict[str, list[ProgressReporter]] = {}
        self._finished: list[tuple[str, dict]] = []
        self._keep = keep_finished

    def start(self, digest: str, label: str = "") -> ProgressReporter:
        reporter = ProgressReporter(label=label or digest)
        with self._lock:
            self._active.setdefault(digest, []).append(reporter)
        return reporter

    def done(self, digest: str, reporter: ProgressReporter) -> None:
        reporter.finish()
        with self._lock:
            live = self._active.get(digest, [])
            if reporter in live:
                live.remove(reporter)
            if not live:
                self._active.pop(digest, None)
            self._finished.append((digest, reporter.snapshot()))
            del self._finished[:-self._keep]

    def view(self, digest: str) -> dict:
        """The ``GET /v1/progress/{digest}`` payload."""
        with self._lock:
            active = [r.snapshot() for r in self._active.get(digest, [])]
            recent = [snap for d, snap in self._finished if d == digest]
        return {"digest": digest, "active": active, "recent": recent[-5:]}

    def overview(self) -> dict:
        with self._lock:
            return {
                "active": {
                    digest: [r.snapshot() for r in reporters]
                    for digest, reporters in self._active.items()
                },
                "recent": [
                    {"digest": d, **snap} for d, snap in self._finished[-5:]
                ],
            }


def stderr_renderer(stream=None, min_interval: float = 0.1):
    """A reporter listener painting a one-line progress bar on stderr.

    ``# progress: 12/32 blocks · 96/256 points · 41.2 pts/s · eta 3.9s``
    Repaints in place (carriage return) on a TTY, at most every
    ``min_interval`` seconds; always paints the final line with a newline.
    """
    stream = stream or sys.stderr
    state = {"last": 0.0, "painted": False}
    is_tty = bool(getattr(stream, "isatty", lambda: False)())

    def _listener(snap: dict, final: bool) -> None:
        now = time.monotonic()
        if not final and now - state["last"] < min_interval:
            return
        state["last"] = now
        eta = snap["eta_seconds"]
        line = (
            f"# progress: {snap['blocks_done']}/{snap['blocks_total']} blocks"
            f" · {snap['points_done']}/{snap['points_total']} points"
            f" · {snap['points_per_second']:.1f} pts/s"
        )
        if final:
            line += f" · done in {snap['elapsed_seconds']:.1f}s"
        elif eta is not None:
            line += f" · eta {eta:.1f}s"
        if is_tty and not final:
            stream.write("\r" + line.ljust(78))
            state["painted"] = True
        else:
            if is_tty and state["painted"]:
                stream.write("\r")
                state["painted"] = False
            stream.write(line + "\n")
        stream.flush()

    return _listener
