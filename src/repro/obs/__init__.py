"""repro.obs — dependency-free observability: tracing, metrics, progress.

Three planes, one package, zero third-party imports (and no imports from
the rest of ``repro`` — the solver/service layers depend on *this*, never
the reverse):

- :mod:`repro.obs.trace` — ``Span``/``Tracer`` with a disabled-by-default
  no-op path, cross-process span merge, JSON + Chrome/Perfetto export.
- :mod:`repro.obs.metrics` — counters/gauges/histograms, snapshot/diff/
  absorb for pool workers, Prometheus text exposition, and the single
  per-worker stats merge path.
- :mod:`repro.obs.progress` — per-block ``ProgressReporter``, the service
  ``ProgressBoard``, and the CLI stderr renderer.
"""
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    effective_cores,
    get_metrics,
    merge_worker_stats,
    note_solve_block,
    record_worker_block,
    worker_stats_snapshot,
)
from repro.obs.progress import ProgressBoard, ProgressReporter, stderr_renderer
from repro.obs.trace import Span, Tracer, get_tracer, span

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "merge_worker_stats",
    "worker_stats_snapshot",
    "note_solve_block",
    "record_worker_block",
    "effective_cores",
    "ProgressReporter",
    "ProgressBoard",
    "stderr_renderer",
]
