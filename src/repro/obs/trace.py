"""Spans and the process-wide tracer.

A :class:`Span` is one timed region of the pipeline — a state-space
exploration, a kernel-plane export, one s-block solve inside a pool worker,
a numerical inversion — recorded with wall and CPU time, free-form
attributes and a parent id, so the finished spans form a tree across
threads *and* processes.

The tracer is **disabled by default and compiles to a no-op**: ``span()``
on a disabled tracer returns a shared singleton whose ``__enter__`` /
``__exit__`` do nothing, so instrumented code paths cost one attribute
check.  Enable it (``get_tracer().enable()`` or ``semimarkov ... --trace
out.json``) and spans are recorded; pool workers run their own tracer and
their finished spans travel back to the master through the existing
:class:`~repro.distributed.queue.SBlock` result path (see
:func:`Tracer.drain` / :func:`Tracer.absorb`).

Export formats: a plain JSON span list (:meth:`Tracer.to_json`) and the
Chrome trace-event format (:meth:`Tracer.to_chrome_trace`) loadable in
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.
"""
from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["Span", "Tracer", "get_tracer", "span"]


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: a context manager that records itself on exit.

    Attributes may be attached at creation (``tracer.span(name, key=val)``)
    or later via :meth:`set`; everything must be JSON-serialisable because
    spans cross process boundaries as plain dicts.
    """

    __slots__ = (
        "tracer", "name", "attributes", "span_id", "parent_id",
        "_wall", "_perf", "_cpu",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict):
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._wall = 0.0
        self._perf = 0.0
        self._cpu = 0.0

    def set(self, **attributes) -> "Span":
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id = self.tracer._push(self)
        self._wall = time.time()
        self._perf = time.perf_counter()
        self._cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._perf
        cpu = time.process_time() - self._cpu
        if exc_type is not None:
            self.attributes.setdefault("error", repr(exc))
        self.tracer._pop(self, duration, cpu)
        return False


class Tracer:
    """Records finished spans; process-wide via :func:`get_tracer`.

    Thread-safe: each thread keeps its own open-span stack (for parent
    links), finished spans land in one shared list.
    """

    def __init__(self):
        self._enabled = False
        self._lock = threading.Lock()
        self._finished: list[dict] = []
        self._local = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------- control
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "Tracer":
        self._enabled = True
        return self

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    # ------------------------------------------------------------- tracing
    def span(self, name: str, **attributes):
        """A context manager timing one region (no-op while disabled)."""
        if not self._enabled:
            return _NOOP_SPAN
        return Span(self, name, attributes)

    def _push(self, span: Span) -> tuple[str, str | None]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            self._next_id += 1
            span_id = f"{os.getpid()}.{self._next_id}"
        parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        return span_id, parent_id

    def _pop(self, span: Span, duration: float, cpu: float) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - misnested exit
            stack.remove(span)
        record = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "start": span._wall,
            "duration": round(duration, 9),
            "cpu": round(cpu, 9),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "attributes": span.attributes,
        }
        with self._lock:
            self._finished.append(record)

    # ------------------------------------------------------------ transfer
    def spans(self) -> list[dict]:
        """A copy of every finished span recorded so far."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[dict]:
        """Remove and return the finished spans (worker -> master shipping)."""
        with self._lock:
            drained, self._finished = self._finished, []
        return drained

    def absorb(self, spans) -> None:
        """Merge spans recorded elsewhere (a pool worker) into this tracer."""
        if not spans:
            return
        with self._lock:
            self._finished.extend(dict(s) for s in spans)

    # -------------------------------------------------------------- export
    def to_json(self) -> str:
        """The span list as a JSON array (schema: the record dicts above)."""
        return json.dumps(self.spans(), indent=2)

    def to_chrome_trace(self) -> dict:
        """Chrome/Perfetto trace-event JSON: complete ("ph": "X") events."""
        events = []
        for s in self.spans():
            args = dict(s["attributes"])
            args["cpu_seconds"] = s["cpu"]
            if s["parent"]:
                args["parent"] = s["parent"]
            events.append({
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": s["start"] * 1e6,
                "dur": max(s["duration"], 1e-7) * 1e6,
                "pid": s["pid"],
                "tid": s["tid"],
                "id": s["id"],
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write the Perfetto-loadable trace file; returns the span count."""
        trace = self.to_chrome_trace()
        with open(path, "w") as f:
            json.dump(trace, f)
        return len(trace["traceEvents"])


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def span(name: str, **attributes):
    """Shorthand for ``get_tracer().span(name, **attributes)``."""
    return _TRACER.span(name, **attributes)
