r"""The voting system written in the semi-Markov DNAmaca language.

This is the textual counterpart of :func:`repro.models.voting.build_voting_net`
— the same model expressed the way the paper specifies it (its Fig. 3 shows
transition ``t5`` of exactly this form).  ``voting_spec_text`` instantiates
the template for a given configuration; :func:`repro.dnamaca.load_model`
turns it into an SM-SPN.

Note the marking-dependent firing distribution of ``t2``: the registration
delay is an Erlang whose phase count is the number of currently operational
central voting units, written ``erlangLT(4.0, max(p5, 1), s)``.
"""
from __future__ import annotations

from .voting import VotingParameters

__all__ = ["VOTING_SPEC_TEMPLATE", "voting_spec_text"]

VOTING_SPEC_TEMPLATE = r"""
% Distributed voting system (Bradley/Dingle/Harrison/Knottenbelt, IPDPS 2003)
% CC voters, MM polling units, NN central voting units.
\constant{CC}{__CC__}
\constant{MM}{__MM__}
\constant{NN}{__NN__}

\model{
  \place{p1}{CC}   % voters waiting to vote
  \place{p2}{0}    % voters that have voted
  \place{p3}{MM}   % idle polling units
  \place{p4}{0}    % busy polling units
  \place{p5}{NN}   % operational central voting units
  \place{p6}{0}    % failed central voting units
  \place{p7}{0}    % failed polling units

  \transition{t1}{
    \condition{p1 > 0 && p3 > 0}
    \action{
      next->p1 = p1 - 1;
      next->p3 = p3 - 1;
      next->p4 = p4 + 1;
    }
    \weight{8.0}
    \priority{1}
    \sojourntimeLT{ return uniformLT(0.2, 1.0, s); }
  }

  \transition{t2}{
    \condition{p4 > 0 && p5 > 0}
    \action{
      next->p4 = p4 - 1;
      next->p2 = p2 + 1;
      next->p3 = p3 + 1;
    }
    \weight{8.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(4.0, max(p5, 1), s); }
  }

  \transition{t3}{
    \condition{p3 > 0}
    \action{
      next->p3 = p3 - 1;
      next->p7 = p7 + 1;
    }
    \weight{0.2}
    \priority{1}
    \sojourntimeLT{ return expLT(0.5, s); }
  }

  \transition{t3b}{
    \condition{p4 > 0}
    \action{
      next->p4 = p4 - 1;
      next->p7 = p7 + 1;
      next->p1 = p1 + 1;
    }
    \weight{0.2}
    \priority{1}
    \sojourntimeLT{ return expLT(0.5, s); }
  }

  \transition{t4}{
    \condition{p5 > 0}
    \action{
      next->p5 = p5 - 1;
      next->p6 = p6 + 1;
    }
    \weight{0.1}
    \priority{1}
    \sojourntimeLT{ return expLT(0.5, s); }
  }

  \transition{t5}{
    \condition{p7 > MM-1}
    \action{
      next->p3 = p3 + MM;
      next->p7 = p7 - MM;
    }
    \weight{1.0}
    \priority{2}
    \sojourntimeLT{
      return (0.8 * uniformLT(1.5,10,s)
            + 0.2 * erlangLT(0.001,5,s));
    }
  }

  \transition{t6}{
    \condition{p6 > NN-1}
    \action{
      next->p5 = p5 + NN;
      next->p6 = p6 - NN;
    }
    \weight{1.0}
    \priority{2}
    \sojourntimeLT{
      return (0.8 * uniformLT(1.5,10,s)
            + 0.2 * erlangLT(0.001,5,s));
    }
  }

  \transition{t9}{
    \condition{p2 > CC-1}
    \action{
      next->p1 = p1 + CC;
      next->p2 = p2 - CC;
    }
    \weight{1.0}
    \priority{2}
    \sojourntimeLT{ return uniformLT(2.0, 6.0, s); }
  }

  \transition{t7}{
    \condition{p7 > 0 && p7 < MM}
    \action{
      next->p7 = p7 - 1;
      next->p3 = p3 + 1;
    }
    \weight{1.5}
    \priority{1}
    \sojourntimeLT{ return erlangLT(1.0, 2, s); }
  }

  \transition{t8}{
    \condition{p6 > 0 && p6 < NN}
    \action{
      next->p6 = p6 - 1;
      next->p5 = p5 + 1;
    }
    \weight{1.5}
    \priority{1}
    \sojourntimeLT{ return erlangLT(1.0, 2, s); }
  }
}
"""


def voting_spec_text(params: VotingParameters) -> str:
    """The DNAmaca specification text for one voting-system configuration."""
    return (
        VOTING_SPEC_TEMPLATE.replace("__CC__", str(params.voters))
        .replace("__MM__", str(params.polling_units))
        .replace("__NN__", str(params.central_units))
    )
