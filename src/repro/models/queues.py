"""Queueing-flavoured example models exercising general service distributions.

The paper motivates SMPs with quality-of-service quantiles for distributed
systems; these two models provide realistic example workloads beyond the
voting system: a finite-buffer M/G/1-style queue and a small web-server
cluster with failures.
"""
from __future__ import annotations

from ..distributions import Deterministic, Distribution, Erlang, Exponential, Mixture, Uniform
from ..petri.net import SMSPN, Transition
from ..smp.builder import SMPBuilder
from ..smp.kernel import SMPKernel

__all__ = ["mg1_queue_kernel", "web_server_net"]


def mg1_queue_kernel(
    capacity: int = 10,
    *,
    arrival_rate: float = 0.8,
    service: Distribution | None = None,
) -> SMPKernel:
    """A finite-capacity single-server queue with general service times.

    The state is the number of jobs present (0..capacity).  The embedded
    semi-Markov description observes the queue at arrival/departure epochs:
    in an empty queue the sojourn is the exponential inter-arrival time; in a
    busy queue the sojourn is a *competition* approximated by the probabilistic
    SM-SPN semantics — with probability ``p_arrival`` the next event is an
    arrival (sojourn = residual inter-arrival), otherwise a departure
    (sojourn = service).  This is the standard SMP approximation used when a
    race between a general and an exponential delay must be expressed in the
    weight/distribution formalism of SM-SPNs.
    """
    if capacity < 2:
        raise ValueError("capacity must be at least 2")
    service = service or Uniform(0.5, 1.5)
    mean_service = service.mean()
    mean_arrival = 1.0 / arrival_rate
    # Probability the next event is an arrival while a job is in service.
    p_arrival = mean_service / (mean_service + mean_arrival)

    b = SMPBuilder()
    for n in range(capacity + 1):
        b.add_state(f"jobs{n}")
    b.add_transition(0, 1, 1.0, Exponential(arrival_rate))
    for n in range(1, capacity + 1):
        if n < capacity:
            b.add_transition(n, n + 1, p_arrival, Exponential(arrival_rate))
            b.add_transition(n, n - 1, 1.0 - p_arrival, service)
        else:
            b.add_transition(n, n - 1, 1.0, service)
    return b.build()


def web_server_net(
    servers: int = 3,
    queue_capacity: int = 5,
    *,
    arrival: Distribution | None = None,
    service: Distribution | None = None,
) -> SMSPN:
    """A small web-server cluster SM-SPN with request buffering and crashes.

    Places: ``queue`` (buffered requests), ``free``/``busy`` servers,
    ``done`` (completed requests, capped by recycling) and ``failed`` servers.
    The model exercises priorities (restart preempts normal work when the
    whole cluster is down), marking-dependent weights and general service
    distributions — a second, independent SM-SPN workload besides the voting
    system.
    """
    arrival = arrival or Exponential(2.0)
    service = service or Mixture([Uniform(0.1, 0.4), Erlang(2.0, 3)], [0.7, 0.3])
    crash = Exponential(0.02)
    reboot = Erlang(0.5, 2)
    cluster_restart = Deterministic(10.0)

    net = SMSPN(name=f"web-server[{servers} servers]")
    net.add_place("queue", 0)
    net.add_place("free", servers)
    net.add_place("busy", 0)
    net.add_place("failed", 0)

    net.add_transition(
        Transition(
            name="arrive",
            inputs={},
            outputs={},
            guard=lambda m: m["queue"] < queue_capacity,
            action=lambda m: {"queue": m["queue"] + 1},
            priority=1,
            distribution=arrival,
        )
    )
    net.add_transition(
        Transition(
            name="start_service",
            inputs={"queue": 1, "free": 1},
            outputs={"busy": 1},
            priority=1,
            distribution=Deterministic(0.01),
        )
    )
    net.add_transition(
        Transition(
            name="finish",
            inputs={"busy": 1},
            outputs={"free": 1},
            priority=1,
            distribution=service,
        )
    )
    net.add_transition(
        Transition(
            name="crash_free",
            inputs={"free": 1},
            outputs={"failed": 1},
            priority=1,
            distribution=crash,
        )
    )
    net.add_transition(
        Transition(
            name="crash_busy",
            inputs={"busy": 1},
            outputs={"failed": 1, "queue": 1},
            guard=lambda m: m["queue"] < queue_capacity,
            priority=1,
            distribution=crash,
        )
    )
    net.add_transition(
        Transition(
            name="reboot",
            inputs={"failed": 1},
            outputs={"free": 1},
            guard=lambda m: m["failed"] < servers,
            priority=1,
            distribution=reboot,
        )
    )
    net.add_transition(
        Transition(
            name="cluster_restart",
            inputs={},
            outputs={},
            guard=lambda m: m["failed"] >= servers,
            action=lambda m: {"failed": 0, "free": servers},
            priority=2,
            distribution=cluster_restart,
        )
    )
    return net
