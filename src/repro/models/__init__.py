"""Ready-made models: the paper's distributed voting system plus smaller
analytic models used in examples, tests and ablations."""
from .voting import (
    VotingParameters,
    VOTING_CONFIGURATIONS,
    SCALED_CONFIGURATIONS,
    build_voting_net,
    build_voting_graph,
    build_voting_kernel,
    all_voted_predicate,
    failure_mode_predicate,
    initial_marking_predicate,
    voters_done_predicate,
    fully_operational_predicate,
)
from .voting_spec import VOTING_SPEC_TEMPLATE, voting_spec_text
from .simple import (
    alternating_renewal_kernel,
    birth_death_kernel,
    cyclic_server_kernel,
)
from .queues import mg1_queue_kernel, web_server_net

__all__ = [
    "VotingParameters",
    "VOTING_CONFIGURATIONS",
    "SCALED_CONFIGURATIONS",
    "build_voting_net",
    "build_voting_graph",
    "build_voting_kernel",
    "all_voted_predicate",
    "failure_mode_predicate",
    "initial_marking_predicate",
    "voters_done_predicate",
    "fully_operational_predicate",
    "VOTING_SPEC_TEMPLATE",
    "voting_spec_text",
    "alternating_renewal_kernel",
    "birth_death_kernel",
    "cyclic_server_kernel",
    "mg1_queue_kernel",
    "web_server_net",
]
