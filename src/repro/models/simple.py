"""Small analytic SMP models with known passage-time answers.

These models are used throughout the test suite and the ablation benchmarks:
their passage-time densities have closed forms, so they pin down the accuracy
of the whole pipeline end to end.
"""
from __future__ import annotations


from ..distributions import Deterministic, Distribution, Erlang, Exponential, Uniform
from ..smp.builder import SMPBuilder
from ..smp.kernel import SMPKernel

__all__ = [
    "alternating_renewal_kernel",
    "birth_death_kernel",
    "cyclic_server_kernel",
]


def alternating_renewal_kernel(
    up_time: Distribution | None = None, down_time: Distribution | None = None
) -> SMPKernel:
    """A two-state alternating renewal process (machine up / machine down).

    The passage time from ``up`` to ``down`` is exactly the up-time
    distribution; the cycle time ``up -> up`` is the convolution of both.
    """
    up_time = up_time or Erlang(2.0, 3)
    down_time = down_time or Uniform(1.0, 2.0)
    b = SMPBuilder()
    b.add_state("up")
    b.add_state("down")
    b.add_transition("up", "down", 1.0, up_time)
    b.add_transition("down", "up", 1.0, down_time)
    return b.build()


def birth_death_kernel(
    n_states: int = 5,
    *,
    birth_rate: float = 1.0,
    death_rate: float = 1.5,
) -> SMPKernel:
    """A birth–death CTMC expressed as an SMP (exponential sojourns).

    State ``i`` holds ``i`` customers; births occur at ``birth_rate`` and
    deaths at ``death_rate``.  Because every holding time is exponential this
    doubles as a regression check against classical Markov-chain results.
    """
    if n_states < 2:
        raise ValueError("need at least two states")
    b = SMPBuilder()
    for i in range(n_states):
        b.add_state(f"n{i}")
    for i in range(n_states):
        rates = {}
        if i + 1 < n_states:
            rates[i + 1] = birth_rate
        if i - 1 >= 0:
            rates[i - 1] = death_rate
        total = sum(rates.values())
        for j, rate in rates.items():
            b.add_transition(i, j, rate / total, Exponential(total))
    return b.build()


def cyclic_server_kernel(
    stations: int = 4, *, service: Distribution | None = None, walk: Distribution | None = None
) -> SMPKernel:
    """A polling/cyclic-server model: the server serves each station then walks on.

    States alternate ``serve_k`` / ``walk_k`` around ``stations`` stations.
    The passage time from ``serve_0`` back to ``serve_0`` is the convolution
    of all service and walk times — a convenient deterministic + general
    mixed model with a known cycle-time transform.
    """
    if stations < 2:
        raise ValueError("need at least two stations")
    service = service or Uniform(0.5, 1.5)
    walk = walk or Deterministic(0.25)
    b = SMPBuilder()
    for k in range(stations):
        b.add_state(f"serve_{k}")
        b.add_state(f"walk_{k}")
    for k in range(stations):
        nxt = (k + 1) % stations
        b.add_transition(f"serve_{k}", f"walk_{k}", 1.0, service)
        b.add_transition(f"walk_{k}", f"serve_{nxt}", 1.0, walk)
    return b.build()
