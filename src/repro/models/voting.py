"""The distributed voting system of Section 5.2, as a semi-Markov SPN.

The net follows the textual description of the paper (Fig. 1/2): voting
agents queue to vote (place ``p1``), are processed by a limited pool of
polling units (idle in ``p3``, busy in ``p4``), and each processed vote is
registered with every currently operational central voting unit (``p5``)
before the agent is marked as having voted (``p2``).  Polling units and
central voting units fail (``p7`` / ``p6``) and self-recover; a complete
failure of either pool triggers a high-priority bulk repair (transition
``t5`` for polling units — the transition whose DNAmaca definition the paper
reproduces in Fig. 3 — and ``t6`` for central units).

The exact graphical net of the paper's Fig. 2 is not recoverable from the
text, so absolute state-space sizes differ from Table 1; the model preserves
every behavioural feature the paper describes (see DESIGN.md, substitutions).

Parameters
----------
``CC`` voters, ``MM`` polling units, ``NN`` central voting units — the three
knobs of Table 1.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..distributions import Erlang, Exponential, Mixture, Uniform
from ..petri.net import SMSPN, MarkingView, Transition
from ..petri.reachability import ReachabilityGraph, build_kernel, explore
from ..smp.kernel import SMPKernel

__all__ = [
    "VotingParameters",
    "VOTING_CONFIGURATIONS",
    "SCALED_CONFIGURATIONS",
    "build_voting_net",
    "build_voting_graph",
    "build_voting_kernel",
    "all_voted_predicate",
    "voters_done_predicate",
    "failure_mode_predicate",
    "fully_operational_predicate",
    "initial_marking_predicate",
]


@dataclass(frozen=True)
class VotingParameters:
    """One row of Table 1: voters, polling units and central voting units."""

    voters: int          # CC
    polling_units: int   # MM
    central_units: int   # NN
    paper_states: int | None = None

    def __post_init__(self):
        if min(self.voters, self.polling_units, self.central_units) < 1:
            raise ValueError("CC, MM and NN must all be at least 1")

    @property
    def label(self) -> str:
        return f"CC={self.voters}, MM={self.polling_units}, NN={self.central_units}"


#: The six configurations of Table 1 together with the state counts the paper
#: reports for its (unpublished) net.
VOTING_CONFIGURATIONS: dict[int, VotingParameters] = {
    0: VotingParameters(18, 6, 3, paper_states=2_061),
    1: VotingParameters(60, 25, 4, paper_states=106_540),
    2: VotingParameters(100, 30, 4, paper_states=249_760),
    3: VotingParameters(125, 40, 4, paper_states=541_280),
    4: VotingParameters(150, 40, 5, paper_states=778_850),
    5: VotingParameters(175, 45, 5, paper_states=1_140_050),
}

#: Reduced configurations with the same structure, used where pure-Python
#: state-space generation of the full Table 1 rows would dominate run time
#: (tests, examples and the default benchmark settings).
SCALED_CONFIGURATIONS: dict[str, VotingParameters] = {
    "tiny": VotingParameters(4, 2, 2),
    "small": VotingParameters(8, 3, 2),
    "medium": VotingParameters(18, 6, 3),      # system 0 of the paper
    "large": VotingParameters(40, 10, 3),
}


# Firing-time distributions (time unit: seconds) and firing weights.
#
# The paper publishes only t5's firing distribution (Fig. 3); the remaining
# choices below use the same kinds of distribution (uniform voting/collection
# delays, Erlang registration and recovery, a mixed bulk repair).  Because
# SM-SPN semantics select the firing transition *probabilistically by weight*
# (not by racing the firing distributions), the weights encode how likely each
# kind of event is to happen next: voting activity dominates, unit failures
# are rare, self-recovery is in between.  This keeps the model in the regime
# the paper describes — frequent voting, occasional failures, complete
# failures rare enough that the simulator struggles to observe them (Fig. 6).
_VOTE_DELAY = Uniform(0.2, 1.0)


def _registration_delay(m: MarkingView):
    # The polling unit contacts every operational central voting unit in turn,
    # so the registration time is an Erlang with one phase per operational unit.
    operational = max(int(m["p5"]), 1)
    return Erlang(4.0, operational)


_POLLING_FAILURE = Exponential(0.5)    # time for a fault to manifest once selected
_CENTRAL_FAILURE = Exponential(0.5)
_SELF_RECOVERY = Erlang(1.0, 2)
# Fig. 3: the bulk repair is usually a technician visit (uniform 1.5-10s)
# but occasionally a long procurement delay (Erlang(0.001, 5)).
_BULK_REPAIR = Mixture([Uniform(1.5, 10.0), Erlang(0.001, 5)], [0.8, 0.2])

#: Relative firing weights of the competing activities.
_WEIGHTS = {
    "vote": 8.0,
    "register": 8.0,
    "polling_failure": 0.2,
    "central_failure": 0.1,
    "self_recovery": 1.5,
}


def build_voting_net(params: VotingParameters) -> SMSPN:
    """Construct the SM-SPN of the voting system for one configuration.

    Guards, actions and the marking-dependent registration delay are given in
    *declarative* form (expression strings over places and the ``CC``/``MM``/
    ``NN`` constants, plus ``distribution_depends``), so the vectorized
    explorer expands whole frontiers of this net as batched NumPy operations
    — the semantics are identical to the previous lambda-based definitions.
    """
    cc, mm, nn = params.voters, params.polling_units, params.central_units
    consts = {"CC": float(cc), "MM": float(mm), "NN": float(nn)}
    net = SMSPN(name=f"voting[{params.label}]")
    net.add_place("p1", cc)   # voters still to vote
    net.add_place("p2", 0)    # voters that have voted
    net.add_place("p3", mm)   # idle polling units
    net.add_place("p4", 0)    # busy polling units (one voter being processed)
    net.add_place("p5", nn)   # operational central voting units
    net.add_place("p6", 0)    # failed central voting units
    net.add_place("p7", 0)    # failed polling units

    # t1: a waiting voter is picked up by an idle polling unit.
    net.add_transition(
        Transition(
            name="t1",
            inputs={"p1": 1, "p3": 1},
            outputs={"p4": 1},
            priority=1,
            weight=_WEIGHTS["vote"],
            distribution=_VOTE_DELAY,
        )
    )
    # t2: the vote is registered with all operational central units (p5 is
    # only *read* — the units stay operational); the voter is done and the
    # polling unit returns to the idle pool.
    net.add_transition(
        Transition(
            name="t2",
            inputs={"p4": 1},
            outputs={"p2": 1, "p3": 1},
            guard="p5 >= 1",
            priority=1,
            weight=_WEIGHTS["register"],
            distribution=_registration_delay,
            distribution_depends=("p5",),
        )
    )
    # t3: an idle polling unit fails.
    net.add_transition(
        Transition(
            name="t3",
            inputs={"p3": 1},
            outputs={"p7": 1},
            priority=1,
            weight=_WEIGHTS["polling_failure"],
            distribution=_POLLING_FAILURE,
        )
    )
    # t3b: a busy polling unit fails; the voter it was serving rejoins the queue.
    net.add_transition(
        Transition(
            name="t3b",
            inputs={"p4": 1},
            outputs={"p7": 1, "p1": 1},
            priority=1,
            weight=_WEIGHTS["polling_failure"],
            distribution=_POLLING_FAILURE,
        )
    )
    # t4: a central voting unit fails.
    net.add_transition(
        Transition(
            name="t4",
            inputs={"p5": 1},
            outputs={"p6": 1},
            priority=1,
            weight=_WEIGHTS["central_failure"],
            distribution=_CENTRAL_FAILURE,
        )
    )
    # t5: every polling unit has failed -> high-priority bulk repair
    # (the transition of Fig. 3: moves MM tokens p7 -> p3).
    net.add_transition(
        Transition(
            name="t5",
            inputs={},
            outputs={},
            guard="p7 > MM - 1",
            action={"p3": "p3 + MM", "p7": "p7 - MM"},
            priority=2,
            weight=1.0,
            distribution=_BULK_REPAIR,
            constants=consts,
        )
    )
    # t6: every central voting unit has failed -> high-priority bulk repair.
    net.add_transition(
        Transition(
            name="t6",
            inputs={},
            outputs={},
            guard="p6 > NN - 1",
            action={"p5": "p5 + NN", "p6": "p6 - NN"},
            priority=2,
            weight=1.0,
            distribution=_BULK_REPAIR,
            constants=consts,
        )
    )
    # t9: once every voter has been processed a new election round begins and
    # the voter population re-enters the queue.  This keeps the SMP
    # irreducible (so steady-state quantities and the Fig. 7 transient limit
    # are non-trivial) and models the recurring elections the paper's
    # throughput measure implies.  It fires at priority 2 so that the round
    # change is not delayed behind failure events.
    net.add_transition(
        Transition(
            name="t9",
            inputs={},
            outputs={},
            guard="p2 >= CC",
            action={"p1": "p1 + CC", "p2": "p2 - CC"},
            priority=2,
            weight=1.0,
            distribution=Uniform(2.0, 6.0),
            constants=consts,
        )
    )
    # t7 / t8: partial failures self-recover one unit at a time.
    net.add_transition(
        Transition(
            name="t7",
            inputs={"p7": 1},
            outputs={"p3": 1},
            guard="p7 < MM",
            priority=1,
            weight=_WEIGHTS["self_recovery"],
            distribution=_SELF_RECOVERY,
            constants=consts,
        )
    )
    net.add_transition(
        Transition(
            name="t8",
            inputs={"p6": 1},
            outputs={"p5": 1},
            guard="p6 < NN",
            priority=1,
            weight=_WEIGHTS["self_recovery"],
            distribution=_SELF_RECOVERY,
            constants=consts,
        )
    )
    return net


def build_voting_graph(params: VotingParameters, **explore_options) -> ReachabilityGraph:
    """Reachability graph of the voting SM-SPN."""
    return explore(build_voting_net(params), **explore_options)


def build_voting_kernel(params: VotingParameters, **explore_options) -> tuple[SMPKernel, ReachabilityGraph]:
    """State space + SMP kernel of the voting system in one call."""
    graph = build_voting_graph(params, **explore_options)
    return build_kernel(graph), graph


# ---------------------------------------------------------------------------
# Marking predicates for the measures reported in the paper's Section 5.3.
# ---------------------------------------------------------------------------


def initial_marking_predicate(params: VotingParameters):
    """The fully-operational initial marking (all voters waiting)."""
    cc, mm, nn = params.voters, params.polling_units, params.central_units

    def predicate(m: MarkingView) -> bool:
        return (
            m["p1"] == cc
            and m["p2"] == 0
            and m["p3"] == mm
            and m["p4"] == 0
            and m["p5"] == nn
            and m["p6"] == 0
            and m["p7"] == 0
        )

    return predicate


def all_voted_predicate(params: VotingParameters):
    """Markings in which every voter has been processed (``p2 == CC``)."""
    cc = params.voters
    return lambda m: m["p2"] == cc


def voters_done_predicate(count: int):
    """Markings in which at least ``count`` voters have voted (``p2 >= count``)."""
    return lambda m: m["p2"] >= count


def failure_mode_predicate(params: VotingParameters):
    """Markings in which all polling units or all central units have failed."""
    mm, nn = params.polling_units, params.central_units
    return lambda m: m["p7"] >= mm or m["p6"] >= nn


def fully_operational_predicate(params: VotingParameters):
    """Markings with no failed units at all (any voting progress)."""
    return lambda m: m["p6"] == 0 and m["p7"] == 0
