"""Monte-Carlo simulation of a semi-Markov kernel."""
from __future__ import annotations

import numpy as np

from ..smp.embedded import source_weights
from ..smp.kernel import SMPKernel
from ..utils.rng import as_generator

__all__ = ["TrajectorySampler", "simulate_passage_times", "simulate_transient"]


class TrajectorySampler:
    """Samples trajectories of an SMP kernel state by state.

    The kernel's transitions are re-indexed per source state once at
    construction (destination array, cumulative branch probabilities and the
    sojourn distribution of each branch) so that each simulated transition is
    a single binary search plus one distribution sample.
    """

    def __init__(self, kernel: SMPKernel):
        self.kernel = kernel
        order = np.argsort(kernel.src, kind="stable")
        src_sorted = kernel.src[order]
        self._dst = kernel.dst[order]
        self._dist_index = kernel.dist_index[order]
        probs = kernel.probs[order]
        counts = np.bincount(src_sorted, minlength=kernel.n_states)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        # Per-state cumulative probabilities (normalised defensively).
        self._cum = np.empty_like(probs)
        for state in range(kernel.n_states):
            lo, hi = self._offsets[state], self._offsets[state + 1]
            if hi > lo:
                block = probs[lo:hi]
                self._cum[lo:hi] = np.cumsum(block) / block.sum()
        self._dists = kernel.distributions

    def step(self, state: int, rng: np.random.Generator) -> tuple[int, float]:
        """One transition from ``state``: returns ``(next_state, sojourn)``."""
        lo, hi = self._offsets[state], self._offsets[state + 1]
        if hi == lo:
            raise RuntimeError(f"state {state} has no outgoing transitions")
        u = rng.random()
        branch = lo + int(np.searchsorted(self._cum[lo:hi], u, side="left"))
        branch = min(branch, hi - 1)
        sojourn = float(np.asarray(self._dists[self._dist_index[branch]].sample(rng)))
        return int(self._dst[branch]), sojourn

    def sample_initial(self, alpha: np.ndarray, rng: np.random.Generator) -> int:
        return int(rng.choice(self.kernel.n_states, p=alpha))


def _resolve_alpha(kernel: SMPKernel, sources, alpha) -> np.ndarray:
    if alpha is not None:
        alpha = np.asarray(alpha, dtype=float)
        if alpha.shape != (kernel.n_states,):
            raise ValueError("alpha must have one weight per state")
        return alpha / alpha.sum()
    return source_weights(kernel, sources)


def simulate_passage_times(
    kernel: SMPKernel,
    sources,
    targets,
    *,
    n_samples: int = 10_000,
    rng=None,
    alpha: np.ndarray | None = None,
    max_transitions: int = 1_000_000,
) -> np.ndarray:
    """Sample first-passage times from ``sources`` into ``targets``.

    Each replication starts in a source state drawn from ``alpha`` (Eq. 5
    weighting by default), walks the embedded chain sampling sojourn times,
    and stops the first time a target state is *entered* (so a source that is
    also a target yields a cycle time, matching the analytic convention).
    """
    rng = as_generator(rng)
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    sampler = TrajectorySampler(kernel)
    alpha = _resolve_alpha(kernel, sources, alpha)
    targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
    if targets.size == 0 or targets.min() < 0 or targets.max() >= kernel.n_states:
        raise ValueError("invalid target states")
    target_mask = np.zeros(kernel.n_states, dtype=bool)
    target_mask[targets] = True

    out = np.empty(n_samples, dtype=float)
    for i in range(n_samples):
        state = sampler.sample_initial(alpha, rng)
        elapsed = 0.0
        for _ in range(max_transitions):
            state, sojourn = sampler.step(state, rng)
            elapsed += sojourn
            if target_mask[state]:
                break
        else:
            raise RuntimeError(
                f"replication {i} did not reach the target set within "
                f"{max_transitions} transitions"
            )
        out[i] = elapsed
    return out


def simulate_transient(
    kernel: SMPKernel,
    sources,
    targets,
    t_points,
    *,
    n_samples: int = 10_000,
    rng=None,
    alpha: np.ndarray | None = None,
) -> np.ndarray:
    """Estimate ``P(Z(t) in targets)`` for each t by Monte-Carlo occupancy.

    Each replication simulates one trajectory up to ``max(t_points)`` and
    scores, for every requested time point, whether the state occupied at that
    instant belongs to the target set.
    """
    rng = as_generator(rng)
    t_points = np.asarray(list(t_points), dtype=float)
    if t_points.size == 0:
        return np.empty(0)
    if np.any(t_points < 0):
        raise ValueError("t_points must be non-negative")
    order = np.argsort(t_points)
    horizon = float(t_points.max())

    sampler = TrajectorySampler(kernel)
    alpha = _resolve_alpha(kernel, sources, alpha)
    targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
    target_mask = np.zeros(kernel.n_states, dtype=bool)
    target_mask[targets] = True

    hits = np.zeros(t_points.shape, dtype=float)
    for _ in range(n_samples):
        state = sampler.sample_initial(alpha, rng)
        clock = 0.0
        pointer = 0
        ordered = order
        while pointer < len(ordered):
            next_state, sojourn = sampler.step(state, rng)
            departure = clock + sojourn
            # The chain occupies `state` on [clock, departure).
            while pointer < len(ordered) and t_points[ordered[pointer]] < departure:
                if target_mask[state]:
                    hits[ordered[pointer]] += 1.0
                pointer += 1
            clock = departure
            state = next_state
            if clock > horizon:
                break
        # Any remaining t-points fall in the sojourn of the current state.
        while pointer < len(ordered):
            if target_mask[state]:
                hits[ordered[pointer]] += 1.0
            pointer += 1
    return hits / n_samples
