"""Discrete-event simulation of SMPs and SM-SPNs.

The paper validates its analytic passage-time densities against a simulator
driven by the same high-level model (Figs. 4 and 6).  This package plays that
role here:

* :func:`simulate_passage_times` / :func:`simulate_transient` operate on an
  :class:`~repro.smp.SMPKernel`,
* :class:`PetriSimulator` walks an SM-SPN directly (no state-space
  generation), which is how large configurations are validated,
* :mod:`repro.simulation.estimators` turns raw samples into density /
  CDF / quantile estimates with confidence intervals.
"""
from .smp_sim import simulate_passage_times, simulate_transient, TrajectorySampler
from .petri_sim import PetriSimulator
from .estimators import (
    PassageTimeSample,
    density_histogram,
    empirical_cdf,
    quantile_estimate,
)

__all__ = [
    "simulate_passage_times",
    "simulate_transient",
    "TrajectorySampler",
    "PetriSimulator",
    "PassageTimeSample",
    "density_histogram",
    "empirical_cdf",
    "quantile_estimate",
]
