"""Estimators turning raw passage-time samples into densities, CDFs and quantiles."""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["density_histogram", "empirical_cdf", "quantile_estimate", "PassageTimeSample"]


def density_histogram(
    samples: np.ndarray,
    *,
    bins: int | np.ndarray = 40,
    t_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Histogram density estimate with per-bin standard errors.

    Returns ``(bin_centres, density, standard_error)``.  The standard error
    follows the binomial variance of the bin counts, which is what the paper's
    simulation error bars represent.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples provided")
    counts, edges = np.histogram(samples, bins=bins, range=t_range)
    widths = np.diff(edges)
    centres = 0.5 * (edges[:-1] + edges[1:])
    n = samples.size
    p_hat = counts / n
    density = p_hat / widths
    stderr = np.sqrt(np.maximum(p_hat * (1.0 - p_hat), 0.0) / n) / widths
    return centres, density, stderr


def empirical_cdf(samples: np.ndarray, t_points) -> np.ndarray:
    """``P(T <= t)`` estimated from samples at each requested t."""
    samples = np.sort(np.asarray(samples, dtype=float))
    t_points = np.asarray(list(t_points), dtype=float)
    return np.searchsorted(samples, t_points, side="right") / samples.size


def quantile_estimate(samples: np.ndarray, q: float) -> float:
    """The empirical ``q``-quantile of the samples."""
    if not 0.0 < q < 1.0:
        raise ValueError("q must lie strictly between 0 and 1")
    return float(np.quantile(np.asarray(samples, dtype=float), q))


@dataclass
class PassageTimeSample:
    """A bundle of passage-time samples with the estimators attached."""

    samples: np.ndarray

    def __post_init__(self):
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.size == 0:
            raise ValueError("no samples provided")

    @property
    def n(self) -> int:
        return int(self.samples.size)

    def mean(self) -> float:
        return float(self.samples.mean())

    def mean_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        half = z * self.samples.std(ddof=1) / np.sqrt(self.n)
        centre = self.mean()
        return centre - half, centre + half

    def density(self, **kwargs):
        return density_histogram(self.samples, **kwargs)

    def cdf(self, t_points) -> np.ndarray:
        return empirical_cdf(self.samples, t_points)

    def quantile(self, q: float) -> float:
        return quantile_estimate(self.samples, q)
