"""Direct simulation of an SM-SPN (no state-space generation required).

For very large configurations the reachability graph may be expensive to
build; the paper's simulator works from the same high-level model, so this
one does too: it repeatedly asks the net for its priority-enabled firing
choices, selects one by weight, samples the firing delay and moves on.
Firing-choice computations are memoised per marking, so repeated visits are
cheap.
"""
from __future__ import annotations

from bisect import bisect_left
from typing import Callable

import numpy as np

from ..petri.net import SMSPN, MarkingView
from ..utils.rng import as_generator

__all__ = ["PetriSimulator"]


class PetriSimulator:
    """Monte-Carlo simulator for SM-SPN models."""

    def __init__(self, net: SMSPN, *, cache_markings: bool = True):
        self.net = net
        self._cache_enabled = cache_markings
        self._choice_cache: dict[tuple[int, ...], list] = {}

    # ------------------------------------------------------------ internals
    def _choices(self, marking: tuple[int, ...]):
        if self._cache_enabled and marking in self._choice_cache:
            return self._choice_cache[marking]
        raw = self.net.firing_choices(marking)
        if not raw:
            raise RuntimeError(f"deadlock reached at marking {marking}")
        probs = np.asarray([p for _, p, _, _ in raw])
        nexts = [m for _, _, m, _ in raw]
        dists = [d for _, _, _, d in raw]
        prepared = (np.cumsum(probs) / probs.sum(), nexts, dists)
        if self._cache_enabled:
            self._choice_cache[marking] = prepared
        return prepared

    def _step(self, marking: tuple[int, ...], rng) -> tuple[tuple[int, ...], float]:
        cum, nexts, dists = self._choices(marking)
        branch = int(np.searchsorted(cum, rng.random(), side="left"))
        branch = min(branch, len(nexts) - 1)
        delay = float(np.asarray(dists[branch].sample(rng)))
        return nexts[branch], delay

    def _predicate(self, predicate: Callable[[MarkingView], bool]):
        index = self.net.place_index
        return lambda marking: predicate(MarkingView(marking, index))

    # ------------------------------------------------------------------ API
    def sample_passage_times(
        self,
        target_predicate: Callable[[MarkingView], bool],
        *,
        n_samples: int = 5_000,
        rng=None,
        initial_marking: tuple[int, ...] | None = None,
        max_firings: int = 1_000_000,
    ) -> np.ndarray:
        """First-passage times from the initial marking into the predicate set."""
        rng = as_generator(rng)
        is_target = self._predicate(target_predicate)
        start = tuple(initial_marking) if initial_marking is not None else self.net.initial_marking

        # Rare-event passages fire millions of transitions per run, so the
        # replication loop works on interned integer state ids with plain
        # Python scalars: markings, firing choices and the target predicate
        # are resolved once per distinct marking, and random draws (branch
        # uniforms, firing delays) are taken from block-sampled buffers
        # instead of one generator call per firing.  The tables live only for
        # this call; persistent memoisation stays in ``_choice_cache``.
        state_of: dict[tuple[int, ...], int] = {}
        markings: list[tuple[int, ...]] = []
        cum_rows: list[list[float] | None] = []
        succ_rows: list[list[int] | None] = []
        dist_rows: list[list[int] | None] = []
        target_flags: list[bool] = []

        samplers: dict[object, int] = {}
        sampler_dists: list = []
        delay_bufs: list[list[float]] = []
        delay_pos: list[int] = []

        def intern(marking: tuple[int, ...]) -> int:
            sid = state_of.get(marking)
            if sid is None:
                sid = len(markings)
                state_of[marking] = sid
                markings.append(marking)
                cum_rows.append(None)
                succ_rows.append(None)
                dist_rows.append(None)
                target_flags.append(bool(is_target(marking)))
            return sid

        def prepare(sid: int) -> None:
            cum, nexts, dists = self._choices(markings[sid])
            cum_rows[sid] = list(map(float, cum))
            succ_rows[sid] = [intern(m) for m in nexts]
            row = []
            for dist in dists:
                di = samplers.get(dist)
                if di is None:
                    di = len(sampler_dists)
                    samplers[dist] = di
                    sampler_dists.append(dist)
                    delay_bufs.append([])
                    delay_pos.append(0)
                row.append(di)
            dist_rows[sid] = row

        start_id = intern(start)
        uniform_buf: list[float] = []
        uniform_pos = 0

        out = np.empty(n_samples, dtype=float)
        for i in range(n_samples):
            sid = start_id
            elapsed = 0.0
            for _ in range(max_firings):
                cum = cum_rows[sid]
                if cum is None:
                    prepare(sid)
                    cum = cum_rows[sid]
                if uniform_pos == len(uniform_buf):
                    uniform_buf = rng.random(4096).tolist()
                    uniform_pos = 0
                branch = bisect_left(cum, uniform_buf[uniform_pos])
                uniform_pos += 1
                if branch >= len(cum):
                    branch = len(cum) - 1
                di = dist_rows[sid][branch]
                pos = delay_pos[di]
                buf = delay_bufs[di]
                if pos == len(buf):
                    buf = np.ravel(
                        np.asarray(sampler_dists[di].sample(rng, size=1024), dtype=float)
                    ).tolist()
                    delay_bufs[di] = buf
                    pos = 0
                delay_pos[di] = pos + 1
                elapsed += buf[pos]
                sid = succ_rows[sid][branch]
                if target_flags[sid]:
                    break
            else:
                raise RuntimeError(
                    f"replication {i} did not reach the target markings within {max_firings} firings"
                )
            out[i] = elapsed
        return out

    def sample_transient(
        self,
        target_predicate: Callable[[MarkingView], bool],
        t_points,
        *,
        n_samples: int = 5_000,
        rng=None,
        initial_marking: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Monte-Carlo estimate of ``P(marking(t) satisfies predicate)``."""
        rng = as_generator(rng)
        t_points = np.asarray(list(t_points), dtype=float)
        order = np.argsort(t_points)
        horizon = float(t_points.max()) if t_points.size else 0.0
        is_target = self._predicate(target_predicate)
        start = tuple(initial_marking) if initial_marking is not None else self.net.initial_marking

        hits = np.zeros(t_points.shape, dtype=float)
        for _ in range(n_samples):
            marking = start
            clock = 0.0
            pointer = 0
            while pointer < len(order):
                next_marking, delay = self._step(marking, rng)
                departure = clock + delay
                while pointer < len(order) and t_points[order[pointer]] < departure:
                    if is_target(marking):
                        hits[order[pointer]] += 1.0
                    pointer += 1
                clock = departure
                marking = next_marking
                if clock > horizon:
                    break
        return hits / n_samples
