"""Direct simulation of an SM-SPN (no state-space generation required).

For very large configurations the reachability graph may be expensive to
build; the paper's simulator works from the same high-level model, so this
one does too: it repeatedly asks the net for its priority-enabled firing
choices, selects one by weight, samples the firing delay and moves on.
Firing-choice computations are memoised per marking, so repeated visits are
cheap.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from ..petri.net import SMSPN, MarkingView
from ..utils.rng import as_generator

__all__ = ["PetriSimulator"]


class PetriSimulator:
    """Monte-Carlo simulator for SM-SPN models."""

    def __init__(self, net: SMSPN, *, cache_markings: bool = True):
        self.net = net
        self._cache_enabled = cache_markings
        self._choice_cache: dict[tuple[int, ...], list] = {}

    # ------------------------------------------------------------ internals
    def _choices(self, marking: tuple[int, ...]):
        if self._cache_enabled and marking in self._choice_cache:
            return self._choice_cache[marking]
        raw = self.net.firing_choices(marking)
        if not raw:
            raise RuntimeError(f"deadlock reached at marking {marking}")
        probs = np.asarray([p for _, p, _, _ in raw])
        nexts = [m for _, _, m, _ in raw]
        dists = [d for _, _, _, d in raw]
        prepared = (np.cumsum(probs) / probs.sum(), nexts, dists)
        if self._cache_enabled:
            self._choice_cache[marking] = prepared
        return prepared

    def _step(self, marking: tuple[int, ...], rng) -> tuple[tuple[int, ...], float]:
        cum, nexts, dists = self._choices(marking)
        branch = int(np.searchsorted(cum, rng.random(), side="left"))
        branch = min(branch, len(nexts) - 1)
        delay = float(np.asarray(dists[branch].sample(rng)))
        return nexts[branch], delay

    def _predicate(self, predicate: Callable[[MarkingView], bool]):
        index = self.net.place_index
        return lambda marking: predicate(MarkingView(marking, index))

    # ------------------------------------------------------------------ API
    def sample_passage_times(
        self,
        target_predicate: Callable[[MarkingView], bool],
        *,
        n_samples: int = 5_000,
        rng=None,
        initial_marking: tuple[int, ...] | None = None,
        max_firings: int = 1_000_000,
    ) -> np.ndarray:
        """First-passage times from the initial marking into the predicate set."""
        rng = as_generator(rng)
        is_target = self._predicate(target_predicate)
        start = tuple(initial_marking) if initial_marking is not None else self.net.initial_marking
        out = np.empty(n_samples, dtype=float)
        for i in range(n_samples):
            marking = start
            elapsed = 0.0
            for _ in range(max_firings):
                marking, delay = self._step(marking, rng)
                elapsed += delay
                if is_target(marking):
                    break
            else:
                raise RuntimeError(
                    f"replication {i} did not reach the target markings within {max_firings} firings"
                )
            out[i] = elapsed
        return out

    def sample_transient(
        self,
        target_predicate: Callable[[MarkingView], bool],
        t_points,
        *,
        n_samples: int = 5_000,
        rng=None,
        initial_marking: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Monte-Carlo estimate of ``P(marking(t) satisfies predicate)``."""
        rng = as_generator(rng)
        t_points = np.asarray(list(t_points), dtype=float)
        order = np.argsort(t_points)
        horizon = float(t_points.max()) if t_points.size else 0.0
        is_target = self._predicate(target_predicate)
        start = tuple(initial_marking) if initial_marking is not None else self.net.initial_marking

        hits = np.zeros(t_points.shape, dtype=float)
        for _ in range(n_samples):
            marking = start
            clock = 0.0
            pointer = 0
            while pointer < len(order):
                next_marking, delay = self._step(marking, rng)
                departure = clock + delay
                while pointer < len(order) and t_points[order[pointer]] < departure:
                    if is_target(marking):
                        hits[order[pointer]] += 1.0
                    pointer += 1
                clock = departure
                marking = next_marking
                if clock > horizon:
                    break
        return hits / n_samples
