"""Abstract syntax of a parsed DNAmaca model specification."""
from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PlaceSpec", "TransitionSpec", "ModelSpec"]


@dataclass
class PlaceSpec:
    """``\\place{name}{initial tokens}`` — the initial count is an expression
    over the declared constants."""

    name: str
    initial_expression: str


@dataclass
class TransitionSpec:
    """One ``\\transition{name}{...}`` block.

    ``condition`` / ``weight`` / ``priority`` are expression strings over the
    place names and constants, ``action`` is a list of
    ``(place, expression)`` assignments taken from the ``next->place = expr;``
    statements, and ``sojourn_lt`` is the body of ``\\sojourntimeLT`` (without
    the ``return`` / trailing ``;``).
    """

    name: str
    condition: str | None = None
    action: list[tuple[str, str]] = field(default_factory=list)
    weight: str = "1.0"
    priority: str = "0"
    sojourn_lt: str | None = None


@dataclass
class ModelSpec:
    """A complete parsed model: constants, places and transitions."""

    name: str = "model"
    constants: dict[str, float] = field(default_factory=dict)
    places: list[PlaceSpec] = field(default_factory=list)
    transitions: list[TransitionSpec] = field(default_factory=list)

    def place_names(self) -> list[str]:
        return [p.name for p in self.places]
