"""Parsing of DNAmaca specification text into a :class:`ModelSpec`."""
from __future__ import annotations

import re

from .ast import ModelSpec, PlaceSpec, TransitionSpec
from .lexer import Block, DNAmacaSyntaxError, tokenize_blocks

__all__ = ["parse_model", "DNAmacaSyntaxError"]

_ACTION_STATEMENT = re.compile(
    r"next\s*->\s*(?P<place>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*(?P<expr>[^;]+);"
)
_NUMBER = re.compile(r"^[-+]?\d+(\.\d+)?([eE][-+]?\d+)?$")


def _parse_constant(block: Block, model: ModelSpec) -> None:
    if len(block.args) != 2:
        raise DNAmacaSyntaxError(
            f"\\constant on line {block.line} needs exactly two arguments: name and value"
        )
    name, raw_value = block.args[0].strip(), block.args[1].strip()
    if not name.isidentifier():
        raise DNAmacaSyntaxError(f"invalid constant name {name!r} on line {block.line}")
    if not _NUMBER.match(raw_value):
        raise DNAmacaSyntaxError(
            f"constant {name!r} on line {block.line} must be a numeric literal, got {raw_value!r}"
        )
    model.constants[name] = float(raw_value)


def _parse_place(block: Block, model: ModelSpec) -> None:
    if len(block.args) not in (1, 2):
        raise DNAmacaSyntaxError(
            f"\\place on line {block.line} takes a name and an optional initial-count expression"
        )
    name = block.args[0].strip()
    if not name.isidentifier():
        raise DNAmacaSyntaxError(f"invalid place name {name!r} on line {block.line}")
    if any(p.name == name for p in model.places):
        raise DNAmacaSyntaxError(f"duplicate place {name!r} on line {block.line}")
    initial = block.args[1].strip() if len(block.args) == 2 and block.args[1].strip() else "0"
    model.places.append(PlaceSpec(name=name, initial_expression=initial))


def _parse_transition(block: Block, model: ModelSpec) -> None:
    if len(block.args) != 2:
        raise DNAmacaSyntaxError(
            f"\\transition on line {block.line} needs a name and a body block"
        )
    name = block.args[0].strip()
    if any(t.name == name for t in model.transitions):
        raise DNAmacaSyntaxError(f"duplicate transition {name!r} on line {block.line}")
    spec = TransitionSpec(name=name)
    for sub in tokenize_blocks(block.args[1]):
        if sub.name == "condition":
            spec.condition = sub.body.strip()
        elif sub.name == "action":
            matches = list(_ACTION_STATEMENT.finditer(sub.body))
            leftover = _ACTION_STATEMENT.sub("", sub.body).strip()
            if leftover:
                raise DNAmacaSyntaxError(
                    f"unrecognised text in \\action of {name!r}: {leftover!r} "
                    "(expected 'next->place = expression;' statements)"
                )
            if not matches:
                raise DNAmacaSyntaxError(f"\\action of {name!r} contains no statements")
            spec.action = [(m.group("place"), m.group("expr").strip()) for m in matches]
        elif sub.name == "weight":
            spec.weight = sub.body.strip()
        elif sub.name == "priority":
            spec.priority = sub.body.strip()
        elif sub.name in ("sojourntimeLT", "sojourntimelt"):
            spec.sojourn_lt = sub.body.strip()
        else:
            raise DNAmacaSyntaxError(
                f"unknown clause \\{sub.name} in transition {name!r} (line {sub.line})"
            )
    if spec.sojourn_lt is None:
        raise DNAmacaSyntaxError(f"transition {name!r} is missing \\sojourntimeLT")
    if spec.condition is None and not spec.action:
        raise DNAmacaSyntaxError(
            f"transition {name!r} needs a \\condition and/or \\action to define its behaviour"
        )
    model.transitions.append(spec)


def parse_model(text: str, *, name: str = "model") -> ModelSpec:
    """Parse a complete specification into a :class:`ModelSpec`.

    The accepted top-level commands are ``\\constant{NAME}{value}``,
    ``\\model{...}`` (whose body holds places and transitions) and, for
    convenience, bare ``\\place`` / ``\\transition`` blocks outside a
    ``\\model`` wrapper.
    """
    model = ModelSpec(name=name)
    for block in tokenize_blocks(text):
        if block.name == "constant":
            _parse_constant(block, model)
        elif block.name == "model":
            for inner in tokenize_blocks(block.body):
                if inner.name == "place":
                    _parse_place(inner, model)
                elif inner.name == "transition":
                    _parse_transition(inner, model)
                elif inner.name == "constant":
                    _parse_constant(inner, model)
                else:
                    raise DNAmacaSyntaxError(
                        f"unknown clause \\{inner.name} inside \\model (line {inner.line})"
                    )
        elif block.name == "place":
            _parse_place(block, model)
        elif block.name == "transition":
            _parse_transition(block, model)
        else:
            raise DNAmacaSyntaxError(f"unknown top-level command \\{block.name} (line {block.line})")

    if not model.places:
        raise DNAmacaSyntaxError("the specification declares no places")
    if not model.transitions:
        raise DNAmacaSyntaxError("the specification declares no transitions")
    return model
