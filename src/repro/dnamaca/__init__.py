"""A semi-Markov extension of the DNAmaca specification language.

The paper describes its models textually in "an extended semi-Markovian
version of the high-level DNAmaca Markov chain specification language" and
shows one transition of the voting system (Fig. 3):

.. code-block:: text

    \\transition{t5}{
      \\condition{p7 > MM-1}
      \\action{
        next->p3 = p3 + MM;
        next->p7 = p7 - MM;
      }
      \\weight{1.0}
      \\priority{2}
      \\sojourntimeLT{
        return (0.8 * uniformLT(1.5,10,s)
              + 0.2 * erlangLT(0.001,5,s));
      }
    }

This package parses that syntax (plus ``\\constant`` and ``\\place``
declarations for the model header) and compiles it into an
:class:`repro.petri.SMSPN`, from which the usual reachability / passage-time
pipeline takes over.  See :data:`repro.models.voting_spec.VOTING_SPEC_TEMPLATE`
for a complete model written in the language.
"""
from .lexer import Block, tokenize_blocks, strip_comments
from .ast import ModelSpec, PlaceSpec, TransitionSpec
from .parser import parse_model
from .expressions import (
    ExpressionError,
    SafeExpression,
    marking_predicate,
    parse_lt_expression,
    parse_overrides,
)
from .compiler import compile_model, load_model

__all__ = [
    "Block",
    "tokenize_blocks",
    "strip_comments",
    "ModelSpec",
    "PlaceSpec",
    "TransitionSpec",
    "parse_model",
    "SafeExpression",
    "marking_predicate",
    "parse_lt_expression",
    "parse_overrides",
    "ExpressionError",
    "compile_model",
    "load_model",
]
