"""Compilation of a parsed :class:`ModelSpec` into an executable SM-SPN."""
from __future__ import annotations

from ..petri.net import SMSPN, MarkingView, Transition
from .ast import ModelSpec, TransitionSpec
from .expressions import ExpressionError, SafeExpression, parse_lt_expression
from .parser import parse_model

__all__ = ["compile_model", "load_model"]


def _environment(view: MarkingView, constants: dict[str, float]) -> dict[str, float]:
    env = dict(constants)
    env.update(view.as_dict())
    return env


def _check_names(expr: SafeExpression, known: set[str], context: str) -> None:
    unknown = expr.names() - known
    if unknown:
        raise ExpressionError(
            f"{context} references unknown name(s) {sorted(unknown)}; "
            "known names are the declared places and constants"
        )


def _compile_transition(
    spec: TransitionSpec, constants: dict[str, float], places: set[str]
) -> Transition:
    known = places | set(constants)

    guard_expr = SafeExpression(spec.condition) if spec.condition else None
    if guard_expr is not None:
        _check_names(guard_expr, known, f"\\condition of {spec.name!r}")
    weight_expr = SafeExpression(spec.weight)
    _check_names(weight_expr, known, f"\\weight of {spec.name!r}")
    priority_expr = SafeExpression(spec.priority)
    _check_names(priority_expr, known, f"\\priority of {spec.name!r}")
    action_exprs = [(place, SafeExpression(expr)) for place, expr in spec.action]
    for place, expr in action_exprs:
        if place not in places:
            raise ExpressionError(f"\\action of {spec.name!r} writes unknown place {place!r}")
        _check_names(expr, known, f"\\action of {spec.name!r}")
    lt_expr = parse_lt_expression(spec.sojourn_lt)

    # Guard / action / weight / priority go to the Transition as *expression
    # strings* (the declarative form): the per-marking explorer evaluates them
    # through the same SafeExpression machinery as before, and the vectorized
    # explorer compiles them to batched NumPy evaluations over marking-matrix
    # columns.
    marking_places = lt_expr.names() & places
    if marking_places:
        # Marking-dependent firing distribution: built per distinct
        # combination of the places it reads (declared via
        # ``distribution_depends``).
        def distribution(view: MarkingView):
            return lt_expr.build(_environment(view, constants))

        depends: tuple[str, ...] | None = tuple(sorted(marking_places))
    else:
        distribution = lt_expr.build(dict(constants))
        depends = None

    return Transition(
        name=spec.name,
        inputs={},  # enabling is fully captured by the guard
        outputs={},
        guard=spec.condition if spec.condition else "1",
        action={place: source for place, source in spec.action} or None,
        priority=spec.priority,
        weight=spec.weight,
        distribution=distribution,
        constants=constants,
        distribution_depends=depends,
    )


def compile_model(spec: ModelSpec) -> SMSPN:
    """Build an :class:`~repro.petri.SMSPN` from a parsed specification."""
    net = SMSPN(name=spec.name)
    place_names = set(spec.place_names())
    constants = dict(spec.constants)

    for place in spec.places:
        initial_expr = SafeExpression(place.initial_expression)
        unknown = initial_expr.names() - set(constants)
        if unknown:
            raise ExpressionError(
                f"initial marking of place {place.name!r} references unknown name(s) "
                f"{sorted(unknown)} (only constants may appear there)"
            )
        tokens = int(round(initial_expr.evaluate(constants)))
        net.add_place(place.name, tokens)

    for t_spec in spec.transitions:
        net.add_transition(_compile_transition(t_spec, constants, place_names))
    return net


def load_model(text: str, *, name: str = "model", overrides: dict[str, float] | None = None) -> SMSPN:
    """Parse and compile a specification in one step.

    ``overrides`` replaces constant values after parsing — convenient for
    sweeping model parameters (e.g. the voting system's ``CC``/``MM``/``NN``)
    from one specification template.
    """
    spec = parse_model(text, name=name)
    if overrides:
        unknown = set(overrides) - set(spec.constants)
        if unknown:
            raise KeyError(f"overrides for undeclared constants: {sorted(unknown)}")
        spec.constants.update({k: float(v) for k, v in overrides.items()})
    return compile_model(spec)
