r"""Low-level tokenisation of DNAmaca-style ``\command{...}{...}`` blocks."""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Block", "strip_comments", "tokenize_blocks"]


@dataclass
class Block:
    """One ``\name{arg0}{arg1}...`` construct with raw (un-parsed) arguments."""

    name: str
    args: list[str]
    line: int

    @property
    def body(self) -> str:
        """The last argument — by convention the block's body."""
        return self.args[-1] if self.args else ""


class DNAmacaSyntaxError(ValueError):
    """Raised when the specification text cannot be tokenised or parsed."""


def strip_comments(text: str) -> str:
    """Remove ``%`` line comments (the comment marker used by DNAmaca files)."""
    lines = []
    for line in text.splitlines():
        cut = line.find("%")
        lines.append(line if cut < 0 else line[:cut])
    return "\n".join(lines)


def _matching_brace(text: str, start: int, line: int) -> int:
    """Index just past the ``}`` matching the ``{`` at ``start``."""
    depth = 0
    for pos in range(start, len(text)):
        ch = text[pos]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return pos + 1
    raise DNAmacaSyntaxError(f"unbalanced braces in block starting on line {line}")


def tokenize_blocks(text: str) -> list[Block]:
    r"""Split ``text`` into top-level ``\name{...}{...}`` blocks.

    Nested blocks are left inside their parent's raw argument strings; callers
    re-run the tokenizer on a block body to descend one level.
    """
    text = strip_comments(text)
    blocks: list[Block] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch != "\\":
            raise DNAmacaSyntaxError(
                f"unexpected character {ch!r} at line {text.count(chr(10), 0, pos) + 1}; "
                "expected a \\command"
            )
        line = text.count("\n", 0, pos) + 1
        name_start = pos + 1
        name_end = name_start
        while name_end < length and (text[name_end].isalnum() or text[name_end] == "_"):
            name_end += 1
        name = text[name_start:name_end]
        if not name:
            raise DNAmacaSyntaxError(f"missing command name after '\\' on line {line}")
        pos = name_end
        args: list[str] = []
        while True:
            while pos < length and text[pos] in " \t":
                pos += 1
            if pos >= length or text[pos] != "{":
                break
            end = _matching_brace(text, pos, line)
            args.append(text[pos + 1 : end - 1])
            pos = end
        if not args:
            raise DNAmacaSyntaxError(f"command \\{name} on line {line} has no {{...}} arguments")
        blocks.append(Block(name=name, args=args, line=line))
    return blocks
