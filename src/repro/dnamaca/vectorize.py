"""Vectorized evaluation of marking expressions over NumPy column arrays.

The per-state predicate path (:func:`~repro.dnamaca.expressions.marking_predicate`)
builds a :class:`MarkingView` and walks the expression AST once *per state* —
fine for a thousand markings, a wall at a million.  This module compiles the
same whitelisted AST (:class:`~repro.dnamaca.expressions.SafeExpression`) into
a single NumPy evaluation over the columns of a marking matrix, so
``states_where`` / ``resolve_state_sets`` and the vectorized state-space
explorer answer in one pass.

Semantics match the scalar interpreter with three documented exceptions, all
irrelevant for token-count predicates:

* ``and`` / ``or`` / ``if-else`` evaluate *all* operands (no short-circuit);
  arithmetic faults in branches that scalar evaluation would have skipped are
  suppressed via ``np.errstate`` and produce values that the untaken branch
  discards.  (:meth:`VectorizedExpression.evaluate_checked` raises on such
  faults instead, letting the explorer fall back to exact scalar semantics.)
* Integer division by zero yields 0 (NumPy) under :meth:`evaluate` instead
  of raising (``evaluate_checked`` raises).
* Integer arithmetic is int64: expressions whose intermediates exceed
  2^63 - 1 (e.g. ``p1 ** 10`` with hundreds of tokens) wrap around, where
  the scalar interpreter computes exact Python integers.
"""
from __future__ import annotations

import ast
from functools import reduce
from typing import Mapping

import numpy as np

# The operator tables are shared with the scalar interpreter so the
# whitelist and this evaluator cannot drift apart.
from .expressions import _BIN_OPS, _CMP_OPS, ExpressionError, SafeExpression

__all__ = ["VectorizedExpression", "vector_marking_predicate"]


def _as_bool(value):
    return np.asarray(value, dtype=bool)


def _trunc_int(value):
    """Vectorized counterpart of Python's ``int()``: truncate toward zero."""
    arr = np.asarray(value)
    if arr.dtype.kind in "iub":
        return arr
    return np.trunc(arr).astype(np.int64)


def _elementwise_min(*args):
    if len(args) < 2:
        raise ExpressionError("min/max need at least two arguments")
    return reduce(np.minimum, args)


def _elementwise_max(*args):
    if len(args) < 2:
        raise ExpressionError("min/max need at least two arguments")
    return reduce(np.maximum, args)


_VECTOR_FUNCTIONS = {
    "min": _elementwise_min,
    "max": _elementwise_max,
    "abs": np.abs,
    "int": _trunc_int,
    "floor": _trunc_int,
}


class VectorizedExpression:
    """A :class:`SafeExpression` evaluated over columns in one NumPy pass.

    ``evaluate`` takes an environment mapping names to scalars *or* aligned
    1-D arrays and returns the broadcast result (a scalar when every
    referenced name is scalar).
    """

    def __init__(self, expression: SafeExpression | str):
        self._expr = (
            expression if isinstance(expression, SafeExpression) else SafeExpression(expression)
        )

    @property
    def source(self) -> str:
        return self._expr.source

    def names(self) -> set[str]:
        return self._expr.names()

    def evaluate(self, env: Mapping[str, object]):
        with np.errstate(all="ignore"):
            return self._eval(self._expr.tree, env)

    def evaluate_checked(self, env: Mapping[str, object]):
        """Like :meth:`evaluate`, but arithmetic faults raise.

        Raises :class:`FloatingPointError` on division by zero or invalid
        operations instead of silently producing inf/NaN.  Callers that need
        exact scalar semantics (lazy branch evaluation) catch it and fall
        back to the per-state interpreter.
        """
        with np.errstate(divide="raise", invalid="raise"):
            return self._eval(self._expr.tree, env)

    __call__ = evaluate

    def _eval(self, node: ast.AST, env: Mapping[str, object]):
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in _VECTOR_FUNCTIONS:
                return _VECTOR_FUNCTIONS[node.id]
            try:
                return env[node.id]
            except KeyError:
                raise ExpressionError(
                    f"unknown name {node.id!r} in expression {self.source!r}"
                ) from None
        if isinstance(node, ast.BinOp):
            return _BIN_OPS[type(node.op)](
                self._eval(node.left, env), self._eval(node.right, env)
            )
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return np.logical_not(_as_bool(self._eval(node.operand, env)))
            value = self._eval(node.operand, env)
            return -value if isinstance(node.op, ast.USub) else +value
        if isinstance(node, ast.BoolOp):
            values = [_as_bool(self._eval(v, env)) for v in node.values]
            combine = np.logical_and if isinstance(node.op, ast.And) else np.logical_or
            return reduce(combine, values)
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            result = None
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                term = _as_bool(_CMP_OPS[type(op)](left, right))
                result = term if result is None else np.logical_and(result, term)
                left = right
            return result
        if isinstance(node, ast.Call):
            func = _VECTOR_FUNCTIONS[node.func.id]  # validated by SafeExpression
            return func(*[self._eval(a, env) for a in node.args])
        if isinstance(node, ast.IfExp):
            test = _as_bool(self._eval(node.test, env))
            return np.where(test, self._eval(node.body, env), self._eval(node.orelse, env))
        raise ExpressionError(f"unexpected node {type(node).__name__}")  # pragma: no cover


def vector_marking_predicate(
    expression: str | SafeExpression, constants: Mapping[str, float] | None = None
):
    """Compile a condition-style expression into a *columnar* marking predicate.

    The returned callable takes an ``(n_states, n_places)`` marking matrix and
    a ``{place: column}`` index and returns a boolean mask over states — the
    one-pass counterpart of
    :func:`repro.dnamaca.expressions.marking_predicate`.  Place columns shadow
    constants of the same name, exactly like the scalar path.
    """
    compiled = VectorizedExpression(expression)
    bound = dict(constants or {})

    def predicate(markings: np.ndarray, place_index: Mapping[str, int]) -> np.ndarray:
        markings = np.asarray(markings)
        env: dict[str, object] = dict(bound)
        for name, column in place_index.items():
            env[name] = markings[:, column]
        try:
            result = np.asarray(compiled.evaluate_checked(env))
        except FloatingPointError:
            # Arithmetic fault somewhere in the matrix: re-evaluate per state
            # with the scalar interpreter, which lazily skips untaken
            # branches and raises (ZeroDivisionError, ...) exactly where the
            # per-state path always did — never a silently wrong state set.
            scalar = compiled._expr
            items = list(place_index.items())
            out = np.empty(markings.shape[0], dtype=bool)
            for i in range(markings.shape[0]):
                row_env: dict[str, object] = dict(bound)
                for name, column in items:
                    row_env[name] = int(markings[i, column])
                out[i] = bool(scalar.evaluate(row_env))
            return out
        if result.ndim == 0:
            result = np.broadcast_to(result, (markings.shape[0],))
        return result.astype(bool)

    return predicate
