"""Safe evaluation of DNAmaca expressions.

Two kinds of expression appear in a specification:

* *marking expressions* — conditions, weights, priorities, action right-hand
  sides and initial-marking counts.  These are arithmetic/boolean expressions
  over place names and constants (``p7 > MM - 1``).  They are parsed once with
  :mod:`ast` against a strict whitelist and evaluated against a mapping.
* *Laplace-transform expressions* — the body of ``\\sojourntimeLT``, e.g.
  ``0.8 * uniformLT(1.5, 10, s) + 0.2 * erlangLT(0.001, 5, s)``.  Rather than
  treating these as opaque functions of ``s`` (which would preclude sampling
  for the validating simulator and mean-sojourn computations), the expression
  is interpreted *symbolically* into a :class:`~repro.distributions.Distribution`:
  weighted sums become mixtures, products of transform calls become
  convolutions.  Distribution parameters may reference places and constants,
  which is how marking-dependent firing distributions are written.
"""
from __future__ import annotations

import ast
import operator
from typing import Callable, Mapping

from ..distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Gamma,
    Immediate,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    Weibull,
)

__all__ = [
    "SafeExpression",
    "marking_predicate",
    "parse_lt_expression",
    "parse_overrides",
    "ExpressionError",
]


class ExpressionError(ValueError):
    """Raised for malformed or disallowed expressions."""


_BIN_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}
_CMP_OPS = {
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
}
_UNARY_OPS = {ast.USub: operator.neg, ast.UAdd: operator.pos, ast.Not: operator.not_}

_ALLOWED_FUNCTIONS = {"min": min, "max": max, "abs": abs, "int": int, "floor": int}


def _c_to_python(text: str) -> str:
    """Translate the C-flavoured operators of DNAmaca to Python equivalents."""
    out = text.replace("&&", " and ").replace("||", " or ")
    # '!' only when it is not part of '!='.
    chars = []
    for idx, ch in enumerate(out):
        if ch == "!" and (idx + 1 >= len(out) or out[idx + 1] != "="):
            chars.append(" not ")
        else:
            chars.append(ch)
    return "".join(chars)


class SafeExpression:
    """A whitelisted arithmetic/boolean expression over named variables."""

    def __init__(self, source: str):
        self.source = source.strip()
        if not self.source:
            raise ExpressionError("empty expression")
        try:
            # strip(): a leading '!' translates to ' not ...', and a leading
            # space would otherwise parse as an indentation error.
            self._tree = ast.parse(_c_to_python(self.source).strip(), mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"cannot parse expression {source!r}: {exc}") from None
        self._validate(self._tree.body)

    # ----------------------------------------------------------- validation
    def _validate(self, node: ast.AST) -> None:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float, bool)):
                raise ExpressionError(f"literal {node.value!r} is not allowed")
            return
        if isinstance(node, ast.Name):
            return
        if isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
            self._validate(node.left)
            self._validate(node.right)
            return
        if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARY_OPS:
            self._validate(node.operand)
            return
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._validate(value)
            return
        if isinstance(node, ast.Compare):
            self._validate(node.left)
            for op, comparator in zip(node.ops, node.comparators):
                if type(op) not in _CMP_OPS:
                    raise ExpressionError(f"comparison {ast.dump(op)} is not allowed")
                self._validate(comparator)
            return
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCTIONS:
                raise ExpressionError("only min/max/abs/int/floor calls are allowed here")
            if node.keywords:
                raise ExpressionError("keyword arguments are not allowed")
            for arg in node.args:
                self._validate(arg)
            return
        if isinstance(node, ast.IfExp):
            self._validate(node.test)
            self._validate(node.body)
            self._validate(node.orelse)
            return
        raise ExpressionError(
            f"construct {type(node).__name__} is not allowed in expression {self.source!r}"
        )

    # ----------------------------------------------------------- evaluation
    @property
    def tree(self) -> ast.AST:
        """The validated expression AST (used by the vectorized evaluator)."""
        return self._tree.body

    def names(self) -> set[str]:
        """All variable names referenced by the expression."""
        return {
            n.id
            for n in ast.walk(self._tree)
            if isinstance(n, ast.Name) and n.id not in _ALLOWED_FUNCTIONS
        }

    def evaluate(self, variables: Mapping[str, float]):
        return self._eval(self._tree.body, variables)

    __call__ = evaluate

    def _eval(self, node: ast.AST, env: Mapping[str, float]):
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in _ALLOWED_FUNCTIONS:
                return _ALLOWED_FUNCTIONS[node.id]
            try:
                return env[node.id]
            except KeyError:
                raise ExpressionError(
                    f"unknown name {node.id!r} in expression {self.source!r}"
                ) from None
        if isinstance(node, ast.BinOp):
            return _BIN_OPS[type(node.op)](self._eval(node.left, env), self._eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            return _UNARY_OPS[type(node.op)](self._eval(node.operand, env))
        if isinstance(node, ast.BoolOp):
            values = [self._eval(v, env) for v in node.values]
            return all(values) if isinstance(node.op, ast.And) else any(values)
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                if not _CMP_OPS[type(op)](left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.Call):
            func = _ALLOWED_FUNCTIONS[node.func.id]  # validated earlier
            return func(*[self._eval(a, env) for a in node.args])
        if isinstance(node, ast.IfExp):
            return (
                self._eval(node.body, env)
                if self._eval(node.test, env)
                else self._eval(node.orelse, env)
            )
        raise ExpressionError(f"unexpected node {type(node).__name__}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Laplace-transform expressions -> Distribution factories
# ---------------------------------------------------------------------------


class _LTTerm:
    """A (coefficient, Distribution) pair used while folding an LT expression."""

    __slots__ = ("coefficient", "distribution")

    def __init__(self, coefficient: float, distribution: Distribution):
        self.coefficient = float(coefficient)
        self.distribution = distribution


def _lt_factories(env: Mapping[str, float]) -> dict[str, Callable[..., Distribution]]:
    """The transform constructors available inside ``\\sojourntimeLT`` bodies.

    Every factory takes the distribution parameters followed by the Laplace
    variable ``s`` (ignored — the symbolic interpretation keeps the whole
    distribution object instead of one sample of its transform).
    """

    def _num(x):
        if isinstance(x, _LTTerm):
            raise ExpressionError("distribution-valued arguments are not allowed here")
        return float(x)

    return {
        "uniformLT": lambda a, b, s=None: Uniform(_num(a), _num(b)),
        "erlangLT": lambda lam, n, s=None: Erlang(_num(lam), int(round(_num(n)))),
        "expLT": lambda lam, s=None: Exponential(_num(lam)),
        "exponentialLT": lambda lam, s=None: Exponential(_num(lam)),
        "gammaLT": lambda shape, rate, s=None: Gamma(_num(shape), _num(rate)),
        "detLT": lambda d, s=None: Deterministic(_num(d)),
        "deterministicLT": lambda d, s=None: Deterministic(_num(d)),
        "immediateLT": lambda s=None: Immediate(),
        "weibullLT": lambda shape, scale, s=None: Weibull(_num(shape), _num(scale)),
        "lognormalLT": lambda mu, sigma, s=None: LogNormal(_num(mu), _num(sigma)),
        "paretoLT": lambda alpha, xm, s=None: Pareto(_num(alpha), _num(xm)),
    }


class _LTExpression:
    """Symbolic interpreter for sojourn-time transform expressions."""

    def __init__(self, source: str):
        body = source.strip()
        if body.startswith("return"):
            body = body[len("return") :]
        body = body.strip().rstrip(";").strip()
        if not body:
            raise ExpressionError("empty \\sojourntimeLT body")
        self.source = body
        try:
            self._tree = ast.parse(body, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"cannot parse LT expression {source!r}: {exc}") from None

    def names(self) -> set[str]:
        """Non-function names the expression reads (places and constants).

        The Laplace variable ``s`` and names in call position (the ``*LT``
        factories, ``min``/``max``/...) are excluded, so intersecting the
        result with the declared places tells whether the distribution is
        marking-dependent — and on exactly which places.
        """
        func_names = {
            n.func.id
            for n in ast.walk(self._tree)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
        }
        all_names = {n.id for n in ast.walk(self._tree) if isinstance(n, ast.Name)}
        return all_names - func_names - {"s"}

    def build(self, env: Mapping[str, float]) -> Distribution:
        factories = _lt_factories(env)
        value = self._eval(self._tree.body, env, factories)
        return self._to_distribution(value)

    # ------------------------------------------------------------ internals
    @staticmethod
    def _to_distribution(value) -> Distribution:
        if isinstance(value, Distribution):
            return value
        if isinstance(value, _LTTerm):
            terms = [value]
        elif isinstance(value, list):
            terms = value
        else:
            raise ExpressionError(
                "an LT expression must combine *LT(...) calls, not bare numbers"
            )
        total = sum(t.coefficient for t in terms)
        if total <= 0:
            raise ExpressionError("LT expression weights must sum to a positive value")
        if abs(total - 1.0) > 1e-6:
            raise ExpressionError(
                f"LT expression branch weights sum to {total:.6g}; they must sum to 1"
            )
        if len(terms) == 1:
            return terms[0].distribution
        return Mixture([t.distribution for t in terms], [t.coefficient for t in terms])

    def _eval(self, node: ast.AST, env, factories):
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float)):
                raise ExpressionError(f"literal {node.value!r} is not allowed")
            return float(node.value)
        if isinstance(node, ast.Name):
            if node.id == "s":
                return "s"
            if node.id in env:
                return float(env[node.id])
            raise ExpressionError(f"unknown name {node.id!r} in LT expression")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            value = self._eval(node.operand, env, factories)
            if isinstance(node.op, ast.UAdd):
                return value
            if isinstance(value, (int, float)):
                return -value
            raise ExpressionError("cannot negate a distribution term")
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _ALLOWED_FUNCTIONS:
                args = [self._eval(a, env, factories) for a in node.args]
                if any(isinstance(a, (_LTTerm, list)) or a == "s" for a in args):
                    raise ExpressionError(
                        f"{node.func.id} expects numeric arguments in an LT expression"
                    )
                return float(_ALLOWED_FUNCTIONS[node.func.id](*args))
            if not isinstance(node.func, ast.Name) or node.func.id not in factories:
                known = ", ".join(sorted(factories))
                raise ExpressionError(
                    f"unknown transform function in LT expression; known functions: {known}"
                )
            args = [self._eval(a, env, factories) for a in node.args]
            args = [a for a in args if not (isinstance(a, str) and a == "s")]
            return _LTTerm(1.0, factories[node.func.id](*args))
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, factories)
            right = self._eval(node.right, env, factories)
            if isinstance(node.op, ast.Add):
                return self._combine_add(left, right)
            if isinstance(node.op, ast.Mult):
                return self._combine_mul(left, right)
            if isinstance(node.op, (ast.Sub, ast.Div, ast.Pow)) and isinstance(
                left, (int, float)
            ) and isinstance(right, (int, float)):
                return _BIN_OPS[type(node.op)](left, right)
            raise ExpressionError(
                "only '+' of weighted terms and '*' (weighting / convolution) may combine "
                "transform calls"
            )
        raise ExpressionError(
            f"construct {type(node).__name__} is not allowed in an LT expression"
        )

    @staticmethod
    def _combine_add(left, right):
        def as_terms(v):
            if isinstance(v, _LTTerm):
                return [v]
            if isinstance(v, list):
                return v
            raise ExpressionError("cannot add a bare number to a transform expression")

        return as_terms(left) + as_terms(right)

    @staticmethod
    def _combine_mul(left, right):
        from ..distributions import Convolution

        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return left * right
        if isinstance(left, (int, float)) and isinstance(right, _LTTerm):
            return _LTTerm(left * right.coefficient, right.distribution)
        if isinstance(right, (int, float)) and isinstance(left, _LTTerm):
            return _LTTerm(right * left.coefficient, left.distribution)
        if isinstance(left, _LTTerm) and isinstance(right, _LTTerm):
            return _LTTerm(
                left.coefficient * right.coefficient,
                Convolution([left.distribution, right.distribution]),
            )
        if isinstance(left, (int, float)) and isinstance(right, list):
            return [_LTTerm(left * t.coefficient, t.distribution) for t in right]
        if isinstance(right, (int, float)) and isinstance(left, list):
            return [_LTTerm(right * t.coefficient, t.distribution) for t in left]
        raise ExpressionError("unsupported '*' combination in LT expression")


def parse_lt_expression(source: str) -> _LTExpression:
    """Parse a ``\\sojourntimeLT`` body into a reusable distribution factory."""
    return _LTExpression(source)


def parse_overrides(overrides) -> dict[str, float]:
    """Validate constant overrides into a ``{name: float}`` mapping.

    Accepts the three shapes overrides arrive in — ``None``, a mapping (the
    service's JSON payloads), or ``NAME=VALUE`` strings (the CLI's repeatable
    ``--set`` flag; a single string is treated as one pair).  This is the one
    place override parsing and validation lives; the CLI, the API facade and
    the analysis service all route through it, so a typo produces the same
    :class:`ExpressionError` everywhere, naming the offending entry.
    """
    if overrides is None:
        return {}

    def _checked(name, value, shown) -> tuple[str, float]:
        if not isinstance(name, str) or not name.strip():
            raise ExpressionError(
                f"constant override {shown!r} needs a non-empty constant name"
            )
        name = name.strip()
        if not name.isidentifier():
            raise ExpressionError(
                f"constant override {shown!r}: {name!r} is not a valid constant name"
            )
        try:
            return name, float(value)
        except (TypeError, ValueError):
            raise ExpressionError(
                f"constant override {shown!r}: value {value!r} is not a number"
            ) from None

    out: dict[str, float] = {}
    if isinstance(overrides, Mapping):
        for name, value in overrides.items():
            name, value = _checked(name, value, f"{name}={value!r}")
            out[name] = value
        return out
    if isinstance(overrides, str):
        overrides = [overrides]
    for item in overrides:
        if not isinstance(item, str) or "=" not in item:
            raise ExpressionError(
                f"constant override must have the form NAME=VALUE, got {item!r}"
            )
        name, _, value = item.partition("=")
        name, value = _checked(name, value.strip(), item)
        out[name] = value
    return out


def marking_predicate(expression: str, constants: Mapping[str, float] | None = None):
    """Compile a condition-style expression into a marking predicate.

    The returned callable accepts a :class:`repro.petri.MarkingView` and
    evaluates ``expression`` (the ``\\condition`` language: place names,
    declared constants, comparisons, ``&&`` / ``||``) over the marking plus
    ``constants``.  Used by the CLI and the analysis service to turn
    ``--source`` / ``--target`` predicates into state sets.
    """
    compiled = SafeExpression(expression)
    bound = dict(constants or {})

    def predicate(view) -> bool:
        env = dict(bound)
        env.update(view.as_dict())
        return bool(compiled.evaluate(env))

    return predicate
