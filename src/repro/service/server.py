"""Stdlib-only HTTP JSON transport for the analysis service.

Routes (JSON request/response bodies unless noted):

======  ========================  ==============================================
POST    ``/v1/models``            register a spec; returns its digest and build
                                  info
POST    ``/v1/passage``           passage-time density / CDF / quantile query
POST    ``/v1/transient``         transient state-distribution query
GET     ``/v1/stats``             registry / cache / scheduler counters plus
                                  version + build info
GET     ``/v1/progress/{digest}`` in-flight / recent evaluations for one model
GET     ``/v1/health``            liveness probe
GET     ``/metrics``              Prometheus text exposition (``text/plain``)
======  ========================  ==============================================

Built on :class:`http.server.ThreadingHTTPServer` so concurrent requests map
onto threads — which is exactly the shape the coalescing scheduler expects.

Every request emits one structured log line on the ``repro.service`` logger
(method, path, model digest, status, milliseconds, points evaluated); wire a
handler/level with ``semimarkov serve --log-level info``.
"""
from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs.metrics import get_metrics
from .service import AnalysisService, ServiceError, ValidationError

__all__ = ["create_server", "AnalysisHTTPServer"]

_MAX_BODY_BYTES = 16 * 1024 * 1024

logger = logging.getLogger("repro.service")


class AnalysisHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: AnalysisService, *, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _ServiceHandler)


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: AnalysisHTTPServer

    # ------------------------------------------------------------- plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # The stdlib per-request line is replaced by the structured line
        # emitted in _log_request; keep the stdlib one only in verbose mode.
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        self._note_outcome(status, payload)
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str) -> None:
        self._note_outcome(status, None)
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message, "status": status})

    def _note_outcome(self, status: int, payload: dict | None) -> None:
        self._status = status
        if isinstance(payload, dict):
            digest = payload.get("model") or payload.get("digest")
            if digest:
                self._digest = str(digest)
            stats = payload.get("statistics")
            if isinstance(stats, dict):
                self._points = int(stats.get("s_points_computed", 0))

    def _log_request(self, method: str, path: str, started: float) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        status = getattr(self, "_status", 0)
        logger.info(
            "method=%s path=%s digest=%s status=%d ms=%.1f points=%d",
            method, path, getattr(self, "_digest", "-"), status,
            elapsed_ms, getattr(self, "_points", 0),
        )
        registry = get_metrics()
        registry.counter(
            "repro_requests_total", "HTTP requests by path and status",
            ("path", "status"),
        ).inc(1, path=path, status=status)
        registry.histogram(
            "repro_request_seconds", "HTTP request latency", ("path",),
        ).observe(elapsed_ms / 1000.0, path=path)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValidationError("request needs a JSON body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError("request body too large")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        return payload

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if path == "/v1/stats":
                self._reply(200, self.server.service.stats())
            elif path == "/v1/health":
                self._reply(200, {"status": "ok"})
            elif path == "/metrics":
                self._reply_text(200, self.server.service.metrics_text())
            elif path.startswith("/v1/progress/"):
                digest = path.rsplit("/", 1)[1]
                self._reply(200, self.server.service.progress(digest))
            else:
                self._error(404, f"unknown endpoint {self.path!r}")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"internal error: {exc}")
        finally:
            self._log_request("GET", path, started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        path = self.path.split("?", 1)[0].rstrip("/")
        service = self.server.service
        try:
            payload = self._read_json()
            if path == "/v1/models":
                self._reply(200, service.register_model(
                    payload.get("spec", ""),
                    name=payload.get("name"),
                    overrides=payload.get("overrides"),
                    max_states=payload.get("max_states"),
                ))
            elif path == "/v1/passage":
                self._reply(200, service.passage(**self._measure_kwargs(
                    payload,
                    include_cdf=bool(payload.get("cdf", True)),
                    quantile=payload.get("quantile"),
                )))
            elif path == "/v1/transient":
                self._reply(200, service.transient(**self._measure_kwargs(
                    payload,
                    include_steady_state=bool(payload.get("steady_state", True)),
                )))
            else:
                self._error(404, f"unknown endpoint {self.path!r}")
        except ServiceError as exc:
            self._error(exc.status, str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"internal error: {exc}")
        finally:
            self._log_request("POST", path, started)

    @staticmethod
    def _measure_kwargs(payload: dict, **extra) -> dict:
        kwargs = dict(
            model=payload.get("model"),
            spec=payload.get("spec"),
            overrides=payload.get("overrides"),
            max_states=payload.get("max_states"),
            source=payload.get("source"),
            target=payload.get("target"),
            t_points=payload.get("t_points") or [],
            solver=payload.get("solver", "iterative"),
            inversion=payload.get("inversion", "euler"),
            epsilon=payload.get("epsilon", 1e-8),
        )
        kwargs.update(extra)
        return kwargs


def create_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8400,
    *,
    quiet: bool = True,
) -> AnalysisHTTPServer:
    """Bind the service to an address (``port=0`` picks a free port)."""
    return AnalysisHTTPServer((host, port), service, quiet=quiet)
