"""Stdlib-only HTTP JSON transport for the analysis service.

Routes (JSON request/response bodies unless noted):

======  ========================  ==============================================
POST    ``/v1/models``            register a spec; returns its digest and build
                                  info
GET     ``/v1/models``            models visible to the requesting tenant
POST    ``/v1/passage``           passage-time density / CDF / quantile query;
                                  ``"async": true`` enqueues a job (``202``)
POST    ``/v1/transient``         transient state-distribution query; also
                                  accepts ``"async": true``
GET     ``/v1/jobs``              the requesting tenant's jobs, newest first
GET     ``/v1/jobs/{id}``         one job's state / progress / result
DELETE  ``/v1/jobs/{id}``         cancel a queued or running job
GET     ``/v1/stats``             registry / cache / scheduler / job counters
                                  plus version + build info
GET     ``/v1/progress/{digest}`` in-flight / recent evaluations for one model
GET     ``/v1/health``            liveness probe
GET     ``/metrics``              Prometheus text exposition (``text/plain``)
======  ========================  ==============================================

Built on :class:`http.server.ThreadingHTTPServer` so concurrent requests map
onto threads — which is exactly the shape the coalescing scheduler expects.

Tenancy: every request resolves its tenant from the ``X-Repro-Tenant``
header (``default`` when absent) through a single admission hook — name
validation, then the tenant's token-bucket rate limit — before any route
logic runs.  Known paths hit with an unsupported method get ``405`` with an
``Allow`` header; unknown ``/v1/*`` paths get a structured JSON ``404``.

Every request emits one structured log line on the ``repro.service`` logger
(method, path, model digest, tenant, status, milliseconds, points
evaluated); wire a handler/level with ``semimarkov serve --log-level info``.
"""
from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import faults
from ..jobs import DEFAULT_TENANT, TenantError, validate_tenant
from ..obs.metrics import get_metrics
from .service import (
    AnalysisService,
    ServiceError,
    ServiceUnavailable,
    ValidationError,
    measure_kwargs,
)

__all__ = ["create_server", "AnalysisHTTPServer"]

_MAX_BODY_BYTES = 16 * 1024 * 1024

#: the tenant header name (case-insensitive per HTTP)
TENANT_HEADER = "X-Repro-Tenant"

#: exact path -> methods it answers; used for routing *and* 405 Allow headers
_EXACT_ROUTES = {
    "/v1/models": ("GET", "POST"),
    "/v1/passage": ("POST",),
    "/v1/transient": ("POST",),
    "/v1/jobs": ("GET",),
    "/v1/stats": ("GET",),
    "/v1/health": ("GET",),
    "/metrics": ("GET",),
}
#: parameterised prefixes -> (metric label, methods)
_PREFIX_ROUTES = {
    "/v1/jobs/": ("/v1/jobs/{id}", ("GET", "DELETE")),
    "/v1/progress/": ("/v1/progress/{digest}", ("GET",)),
}

logger = logging.getLogger("repro.service")


def _allowed_methods(path: str) -> tuple[str, ...] | None:
    """Methods a path answers, or ``None`` for an unknown endpoint."""
    exact = _EXACT_ROUTES.get(path)
    if exact is not None:
        return exact
    for prefix, (_, methods) in _PREFIX_ROUTES.items():
        if path.startswith(prefix):
            return methods
    return None


def _metric_path(path: str) -> str:
    """Bounded-cardinality path label (ids/digests collapse to templates)."""
    if path in _EXACT_ROUTES:
        return path
    for prefix, (label, _) in _PREFIX_ROUTES.items():
        if path.startswith(prefix):
            return label
    return "(unknown)"


def _http_error(status: int, message: str) -> ServiceError:
    exc = ServiceError(message)
    exc.status = status
    return exc


def _measure_body(payload: dict, kind: str) -> dict:
    """Canonicalise one HTTP measure body (wire aliases, required keys).

    The wire uses the short ``cdf`` / ``steady_state`` flags; the service
    (and the durable job request) use the canonical ``include_*`` names.
    Required fields default to empty values so their absence surfaces as a
    400-class validation error, not a ``TypeError``.
    """
    body = dict(payload)
    body.pop("async", None)
    if kind == "passage" and "include_cdf" not in body:
        body["include_cdf"] = bool(body.pop("cdf", True))
    elif kind == "transient" and "include_steady_state" not in body:
        body["include_steady_state"] = bool(body.pop("steady_state", True))
    body.setdefault("t_points", [])
    body.setdefault("source", None)
    body.setdefault("target", None)
    return body


class AnalysisHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: AnalysisService, *, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _ServiceHandler)


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: AnalysisHTTPServer

    # ------------------------------------------------------------- plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # The stdlib per-request line is replaced by the structured line
        # emitted in _log_request; keep the stdlib one only in verbose mode.
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict, headers: dict | None = None) -> None:
        self._note_outcome(status, payload)
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str) -> None:
        self._note_outcome(status, None)
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message, "status": status})

    def _note_outcome(self, status: int, payload: dict | None) -> None:
        self._status = status
        if isinstance(payload, dict):
            digest = payload.get("model") or payload.get("digest")
            if digest:
                self._digest = str(digest)
            stats = payload.get("statistics")
            if isinstance(stats, dict):
                self._points = int(stats.get("s_points_computed", 0))

    def _log_request(self, method: str, path: str, started: float) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        status = getattr(self, "_status", 0)
        tenant = getattr(self, "_tenant", DEFAULT_TENANT)
        label = _metric_path(path)
        logger.info(
            "method=%s path=%s digest=%s tenant=%s status=%d ms=%.1f points=%d",
            method, path, getattr(self, "_digest", "-"), tenant, status,
            elapsed_ms, getattr(self, "_points", 0),
        )
        registry = get_metrics()
        registry.counter(
            "repro_requests_total", "HTTP requests by path, status and tenant",
            ("path", "status", "tenant"),
        ).inc(1, path=label, status=status, tenant=tenant)
        registry.histogram(
            "repro_request_seconds", "HTTP request latency", ("path",),
        ).observe(elapsed_ms / 1000.0, path=label)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValidationError("request needs a JSON body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError("request body too large")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        return payload

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        """The one request pipeline: tenant admission, routing, errors."""
        started = time.perf_counter()
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            allowed = _allowed_methods(path)
            if allowed is None:
                raise _http_error(404, f"unknown endpoint {self.path!r}")
            # middleware-style admission hook: tenant validation + rate limit
            # runs before any route logic (health and metrics stay unmetered
            # so probes and scrapes survive a tenant's exhausted budget)
            self._tenant = validate_tenant(self.headers.get(TENANT_HEADER))
            if path not in ("/v1/health", "/metrics"):
                self.server.service.admit(self._tenant)
            faults.fire("http.handler", method=method, path=_metric_path(path))
            if self.server.service.draining and method in ("POST", "DELETE"):
                # Reads (job polling, progress, stats) stay answerable to the
                # very end so clients can observe the drain; new work and
                # cancellations go to the successor process.
                raise ServiceUnavailable(
                    "server is draining for shutdown; retry shortly"
                )
            if method not in allowed:
                self._reply(
                    405,
                    {"error": f"{method} not allowed on {path}; allowed: "
                              + ", ".join(allowed),
                     "status": 405, "allow": list(allowed)},
                    headers={"Allow": ", ".join(allowed)},
                )
                return
            self._route(method, path, self._tenant)
        except TenantError as exc:
            self._error(400, str(exc))
        except ServiceError as exc:
            headers = None
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                headers = {"Retry-After": max(1, int(retry_after + 0.999))}
            self._reply(exc.status, exc.payload(), headers=headers)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"internal error: {exc}")
        finally:
            self._log_request(method, path, started)

    def _route(self, method: str, path: str, tenant: str) -> None:
        service = self.server.service
        if path == "/v1/health":
            self._reply(200, {"status": "ok"})
        elif path == "/metrics":
            self._reply_text(200, service.metrics_text())
        elif path == "/v1/stats":
            self._reply(200, service.stats())
        elif path == "/v1/jobs":
            self._reply(200, service.list_jobs(tenant))
        elif path.startswith("/v1/jobs/"):
            job_id = path.rsplit("/", 1)[1]
            if method == "DELETE":
                self._reply(200, service.cancel_job(job_id, tenant=tenant))
            else:
                self._reply(200, service.job_view(job_id, tenant=tenant))
        elif path.startswith("/v1/progress/"):
            digest = path.rsplit("/", 1)[1]
            self._reply(200, service.progress(digest))
        elif path == "/v1/models" and method == "GET":
            self._reply(200, service.list_models(tenant))
        elif path == "/v1/models":
            payload = self._read_json()
            self._reply(200, service.register_model(
                payload.get("spec", ""),
                name=payload.get("name"),
                overrides=payload.get("overrides"),
                max_states=payload.get("max_states"),
                tenant=tenant,
            ))
        elif path in ("/v1/passage", "/v1/transient"):
            kind = path.rsplit("/", 1)[1]
            payload = self._read_json()
            body = _measure_body(payload, kind)
            if payload.get("async"):
                view = service.submit(kind, body, tenant=tenant)
                self._reply(202, view, headers={"Location": view["location"]})
            else:
                run = getattr(service, kind)
                self._reply(200, run(tenant=tenant, **measure_kwargs(body, kind)))
        else:  # pragma: no cover - _allowed_methods gates every path above
            self._error(404, f"unknown endpoint {self.path!r}")


def create_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8400,
    *,
    quiet: bool = True,
) -> AnalysisHTTPServer:
    """Bind the service to an address (``port=0`` picks a free port)."""
    return AnalysisHTTPServer((host, port), service, quiet=quiet)
