"""Stdlib-only HTTP JSON transport for the analysis service.

Routes (all JSON request/response bodies):

======  =================  ====================================================
POST    ``/v1/models``     register a spec; returns its digest and build info
POST    ``/v1/passage``    passage-time density / CDF / quantile query
POST    ``/v1/transient``  transient state-distribution query
GET     ``/v1/stats``      registry / cache / scheduler counters
GET     ``/v1/health``     liveness probe
======  =================  ====================================================

Built on :class:`http.server.ThreadingHTTPServer` so concurrent requests map
onto threads — which is exactly the shape the coalescing scheduler expects.
"""
from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import AnalysisService, ServiceError, ValidationError

__all__ = ["create_server", "AnalysisHTTPServer"]

_MAX_BODY_BYTES = 16 * 1024 * 1024


class AnalysisHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: AnalysisService, *, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _ServiceHandler)


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: AnalysisHTTPServer

    # ------------------------------------------------------------- plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message, "status": status})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValidationError("request needs a JSON body")
        if length > _MAX_BODY_BYTES:
            raise ValidationError("request body too large")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        return payload

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/stats":
            self._reply(200, self.server.service.stats())
        elif path == "/v1/health":
            self._reply(200, {"status": "ok"})
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        service = self.server.service
        try:
            payload = self._read_json()
            if path == "/v1/models":
                self._reply(200, service.register_model(
                    payload.get("spec", ""),
                    name=payload.get("name"),
                    overrides=payload.get("overrides"),
                    max_states=payload.get("max_states"),
                ))
            elif path == "/v1/passage":
                self._reply(200, service.passage(**self._measure_kwargs(
                    payload,
                    include_cdf=bool(payload.get("cdf", True)),
                    quantile=payload.get("quantile"),
                )))
            elif path == "/v1/transient":
                self._reply(200, service.transient(**self._measure_kwargs(
                    payload,
                    include_steady_state=bool(payload.get("steady_state", True)),
                )))
            else:
                self._error(404, f"unknown endpoint {self.path!r}")
        except ServiceError as exc:
            self._error(exc.status, str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"internal error: {exc}")

    @staticmethod
    def _measure_kwargs(payload: dict, **extra) -> dict:
        kwargs = dict(
            model=payload.get("model"),
            spec=payload.get("spec"),
            overrides=payload.get("overrides"),
            max_states=payload.get("max_states"),
            source=payload.get("source"),
            target=payload.get("target"),
            t_points=payload.get("t_points") or [],
            solver=payload.get("solver", "iterative"),
            inversion=payload.get("inversion", "euler"),
            epsilon=payload.get("epsilon", 1e-8),
        )
        kwargs.update(extra)
        return kwargs


def create_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8400,
    *,
    quiet: bool = True,
) -> AnalysisHTTPServer:
    """Bind the service to an address (``port=0`` picks a free port)."""
    return AnalysisHTTPServer((host, port), service, quiet=quiet)
