"""Stdlib-only client for the analysis server's HTTP JSON API."""
from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """Non-2xx response from the server, carrying its JSON error message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to a running ``semimarkov serve`` instance.

    >>> client = ServiceClient("http://127.0.0.1:8400")
    >>> model = client.register_model(spec_text)["model"]
    >>> reply = client.passage(model=model, source="p1 == 4", target="p2 == 4",
    ...                        t_points=[5, 10, 20], cdf=True)
    """

    def __init__(self, base_url: str, *, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", exc.reason)
            except Exception:
                detail = str(exc.reason)
            raise ServiceClientError(exc.code, detail) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach server at {self.base_url}: {exc.reason}"
            ) from None

    @staticmethod
    def _measure_payload(
        model, spec, source, target, t_points, overrides, max_states,
        solver, inversion, epsilon,
    ) -> dict:
        payload = {
            "source": source,
            "target": target,
            "t_points": [float(t) for t in t_points],
            "solver": solver,
            "inversion": inversion,
            "epsilon": epsilon,
        }
        if model is not None:
            payload["model"] = model
        if spec is not None:
            payload["spec"] = spec
        if overrides:
            payload["overrides"] = overrides
        if max_states is not None:
            payload["max_states"] = max_states
        return payload

    # ------------------------------------------------------------------ API
    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def progress(self, digest: str) -> dict:
        """In-flight / recently finished evaluations for one model digest."""
        return self._request("GET", f"/v1/progress/{digest}")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition body from ``GET /metrics``."""
        request = urllib.request.Request(
            self.base_url + "/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceClientError(exc.code, str(exc.reason)) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach server at {self.base_url}: {exc.reason}"
            ) from None

    def register_model(
        self,
        spec: str,
        *,
        name: str | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
    ) -> dict:
        payload: dict = {"spec": spec}
        if name is not None:
            payload["name"] = name
        if overrides:
            payload["overrides"] = overrides
        if max_states is not None:
            payload["max_states"] = max_states
        return self._request("POST", "/v1/models", payload)

    def passage(
        self,
        *,
        model: str | None = None,
        spec: str | None = None,
        source: str,
        target: str,
        t_points,
        cdf: bool = True,
        quantile: float | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
        solver: str = "iterative",
        inversion: str = "euler",
        epsilon: float = 1e-8,
    ) -> dict:
        payload = self._measure_payload(
            model, spec, source, target, t_points, overrides, max_states,
            solver, inversion, epsilon,
        )
        payload["cdf"] = cdf
        if quantile is not None:
            payload["quantile"] = quantile
        return self._request("POST", "/v1/passage", payload)

    def transient(
        self,
        *,
        model: str | None = None,
        spec: str | None = None,
        source: str,
        target: str,
        t_points,
        steady_state: bool = True,
        overrides: dict | None = None,
        max_states: int | None = None,
        solver: str = "iterative",
        inversion: str = "euler",
        epsilon: float = 1e-8,
    ) -> dict:
        payload = self._measure_payload(
            model, spec, source, target, t_points, overrides, max_states,
            solver, inversion, epsilon,
        )
        payload["steady_state"] = steady_state
        return self._request("POST", "/v1/transient", payload)
