"""Stdlib-only client for the analysis server's HTTP JSON API."""
from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceClientError"]

#: job states after which polling stops
_TERMINAL = ("done", "failed", "cancelled")


class ServiceClientError(Exception):
    """Non-2xx response from the server, carrying its JSON error message."""

    def __init__(
        self,
        status: int,
        message: str,
        payload: dict | None = None,
        retry_after: float | None = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: the server's structured error body (quota, retry_after_seconds, ...)
        self.payload = payload or {}
        #: the server's ``Retry-After`` header (seconds), when it sent one
        self.retry_after = retry_after


def _jittered(delay: float) -> float:
    """+-20% jitter so a retrying client fleet does not re-arrive in lockstep."""
    return delay * (0.8 + 0.4 * random.random())


class _ConnectionFailed(Exception):
    """Internal: the TCP/socket layer failed before an HTTP status existed."""


class ServiceClient:
    """Talks to a running ``semimarkov serve`` instance.

    >>> client = ServiceClient("http://127.0.0.1:8400", tenant="team-a")
    >>> model = client.register_model(spec_text)["model"]
    >>> reply = client.passage(model=model, source="p1 == 4", target="p2 == 4",
    ...                        t_points=[5, 10, 20], cdf=True)

    Idempotent ``GET`` requests are retried with capped exponential backoff
    when the connection itself fails (refused, reset, dropped mid-read) —
    polling a job must survive a server restart.  ``POST``/``DELETE`` are
    never retried: the request may have been applied before the connection
    died, and replaying a submission would enqueue a duplicate job.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 120.0,
        tenant: str | None = None,
        retries: int = 3,
        backoff: float = 0.25,
        max_backoff: float = 2.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.tenant = tenant
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)

    # ------------------------------------------------------------- plumbing
    def _headers(self, accept: str = "application/json") -> dict:
        headers = {"Accept": accept}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        attempts = self.retries if method == "GET" else 0
        delay = self.backoff
        while True:
            try:
                return self._request_once(method, path, payload)
            except _ConnectionFailed as exc:
                if attempts <= 0:
                    raise ServiceClientError(
                        0, f"cannot reach server at {self.base_url}: {exc}"
                    ) from None
                attempts -= 1
                time.sleep(_jittered(delay))
                delay = min(delay * 2.0, self.max_backoff)

    def _request_once(self, method: str, path: str, payload: dict | None) -> dict:
        data = None
        headers = self._headers()
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            body: dict = {}
            try:
                body = json.loads(exc.read())
                detail = body.get("error", exc.reason)
            except Exception:
                detail = str(exc.reason)
            retry_after = None
            raw = exc.headers.get("Retry-After") if exc.headers else None
            if raw is not None:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
            raise ServiceClientError(
                exc.code, detail, body, retry_after=retry_after
            ) from None
        except urllib.error.URLError as exc:
            # urlopen wraps socket-level failures (ConnectionRefusedError,
            # ConnectionResetError, RemoteDisconnected, ...) in URLError
            if isinstance(exc.reason, ConnectionError):
                raise _ConnectionFailed(str(exc.reason)) from None
            raise ServiceClientError(
                0, f"cannot reach server at {self.base_url}: {exc.reason}"
            ) from None
        except ConnectionError as exc:  # reset mid-response body
            raise _ConnectionFailed(str(exc)) from None

    @staticmethod
    def _measure_payload(
        model, spec, source, target, t_points, overrides, max_states,
        solver, inversion, epsilon,
    ) -> dict:
        payload = {
            "source": source,
            "target": target,
            "t_points": [float(t) for t in t_points],
            "solver": solver,
            "inversion": inversion,
            "epsilon": epsilon,
        }
        if model is not None:
            payload["model"] = model
        if spec is not None:
            payload["spec"] = spec
        if overrides:
            payload["overrides"] = overrides
        if max_states is not None:
            payload["max_states"] = max_states
        return payload

    # ------------------------------------------------------------------ API
    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def progress(self, digest: str) -> dict:
        """In-flight / recently finished evaluations for one model digest."""
        return self._request("GET", f"/v1/progress/{digest}")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition body from ``GET /metrics``."""
        request = urllib.request.Request(
            self.base_url + "/metrics", headers=self._headers("text/plain")
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceClientError(exc.code, str(exc.reason)) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach server at {self.base_url}: {exc.reason}"
            ) from None

    def register_model(
        self,
        spec: str,
        *,
        name: str | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
    ) -> dict:
        payload: dict = {"spec": spec}
        if name is not None:
            payload["name"] = name
        if overrides:
            payload["overrides"] = overrides
        if max_states is not None:
            payload["max_states"] = max_states
        return self._request("POST", "/v1/models", payload)

    def models(self) -> dict:
        """Models visible to this client's tenant (``GET /v1/models``)."""
        return self._request("GET", "/v1/models")

    def passage(
        self,
        *,
        model: str | None = None,
        spec: str | None = None,
        source: str,
        target: str,
        t_points,
        cdf: bool = True,
        quantile: float | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
        solver: str = "iterative",
        inversion: str = "euler",
        epsilon: float = 1e-8,
    ) -> dict:
        payload = self._measure_payload(
            model, spec, source, target, t_points, overrides, max_states,
            solver, inversion, epsilon,
        )
        payload["cdf"] = cdf
        if quantile is not None:
            payload["quantile"] = quantile
        return self._request("POST", "/v1/passage", payload)

    def transient(
        self,
        *,
        model: str | None = None,
        spec: str | None = None,
        source: str,
        target: str,
        t_points,
        steady_state: bool = True,
        overrides: dict | None = None,
        max_states: int | None = None,
        solver: str = "iterative",
        inversion: str = "euler",
        epsilon: float = 1e-8,
    ) -> dict:
        payload = self._measure_payload(
            model, spec, source, target, t_points, overrides, max_states,
            solver, inversion, epsilon,
        )
        payload["steady_state"] = steady_state
        return self._request("POST", "/v1/transient", payload)

    # ----------------------------------------------------------- async jobs
    def submit(self, kind: str, **query) -> dict:
        """Submit an async query; returns the ``202`` job view immediately.

        ``kind`` is ``"passage"`` or ``"transient"``; the keyword arguments
        are exactly those :meth:`passage` / :meth:`transient` take.
        """
        if kind not in ("passage", "transient"):
            raise ValueError(f"kind must be 'passage' or 'transient', not {kind!r}")
        payload = self._measure_payload(
            query.pop("model", None), query.pop("spec", None),
            query.pop("source", None), query.pop("target", None),
            query.pop("t_points", []), query.pop("overrides", None),
            query.pop("max_states", None), query.pop("solver", "iterative"),
            query.pop("inversion", "euler"), query.pop("epsilon", 1e-8),
        )
        if kind == "passage":
            payload["cdf"] = bool(query.pop("cdf", True))
            quantile = query.pop("quantile", None)
            if quantile is not None:
                payload["quantile"] = quantile
        else:
            payload["steady_state"] = bool(query.pop("steady_state", True))
        if query:
            raise TypeError(f"unexpected arguments: {sorted(query)}")
        payload["async"] = True
        return self._request("POST", f"/v1/{kind}", payload)

    def job(self, job_id: str) -> dict:
        """One job's state / progress / result (``GET /v1/jobs/{id}``)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    poll = job  # alias: polling a job is just re-fetching its view

    def jobs(self) -> dict:
        """This tenant's jobs, newest first (``GET /v1/jobs``)."""
        return self._request("GET", "/v1/jobs")

    def wait(
        self, job_id: str, *, timeout: float | None = None, interval: float = 0.25
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its view.

        A 429 (rate-limited poll) is not terminal: the loop honours the
        server's ``Retry-After`` (falling back to a jittered ``interval``)
        and keeps polling until the deadline.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        state = "unknown"
        while True:
            pause = _jittered(interval)
            try:
                view = self.job(job_id)
            except ServiceClientError as exc:
                if exc.status != 429:
                    raise
                if exc.retry_after is not None:
                    pause = exc.retry_after
            else:
                state = view.get("state")
                if state in _TERMINAL:
                    return view
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state!r} after {timeout}s"
                )
            time.sleep(pause)

    def cancel(self, job_id: str) -> dict:
        """Request cancellation (``DELETE /v1/jobs/{id}``)."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")
