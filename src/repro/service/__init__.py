"""Long-lived analysis service: registry, coalescing scheduler, tiered cache.

One-shot CLI runs re-parse the spec, re-explore the state space and re-price
their own s-grid on every invocation.  This subsystem amortises all three
across queries, the way the paper's master caches ``L(s)`` values in memory
and on disk:

* :class:`ModelRegistry` — content-addresses DNAmaca specs and caches the
  reachability graph, SMP kernel and a shared ``UEvaluator`` per model;
* :class:`CoalescingScheduler` — merges overlapping s-points of concurrent
  in-flight queries into single batched evaluations (each point computed at
  most once);
* :class:`TieredResultCache` — in-memory LRU of transform values per measure
  digest over the on-disk :class:`~repro.distributed.CheckpointStore`;
* :class:`AnalysisService` + :func:`create_server` / :class:`ServiceClient`
  — the transport-agnostic facade and its stdlib HTTP JSON API
  (``semimarkov serve`` / ``semimarkov query`` on the command line).
"""
from .cache import CacheLookup, TieredResultCache
from .client import ServiceClient, ServiceClientError
from .registry import ModelEntry, ModelRegistry, spec_digest
from .scheduler import CoalescingScheduler, QueryStatistics
from .server import AnalysisHTTPServer, create_server
from .service import (
    AnalysisService,
    ModelNotFound,
    QueryError,
    ServiceError,
    ServiceUnavailable,
    ValidationError,
)

__all__ = [
    "AnalysisHTTPServer",
    "AnalysisService",
    "CacheLookup",
    "CoalescingScheduler",
    "ModelEntry",
    "ModelNotFound",
    "ModelRegistry",
    "QueryError",
    "QueryStatistics",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceUnavailable",
    "TieredResultCache",
    "ValidationError",
    "create_server",
    "spec_digest",
]
