"""The analysis service: registry + coalescing scheduler + tiered cache.

:class:`AnalysisService` is the long-lived, transport-agnostic core of the
serving layer.  It owns a :class:`~repro.service.registry.ModelRegistry` (one
build per distinct spec), a :class:`~repro.service.cache.TieredResultCache`
(in-memory LRU over the on-disk checkpoint store) and a
:class:`~repro.service.scheduler.CoalescingScheduler` (each s-point evaluated
at most once across concurrent queries).  The HTTP layer in
:mod:`repro.service.http` is a thin JSON adapter over the three query
methods; tests and benchmarks may drive the service in-process.
"""
from __future__ import annotations

import threading
import time

import numpy as np
from scipy import optimize

from .. import faults
from ..api.errors import PlanError, PredicateError
from ..core.jobs import TransformJob
from ..distributed.checkpoint import CheckpointStore
from ..dnamaca.expressions import ExpressionError, parse_overrides
from ..jobs import (
    DEFAULT_TENANT,
    JobRunner,
    JobStore,
    QuotaError,
    TenancyManager,
    TenantQuotas,
    open_backend,
)
from ..laplace import get_inverter
from ..laplace.inverter import expand_to_grid
from ..obs import trace as obs_trace
from ..obs.metrics import effective_cores, get_metrics
from ..obs.progress import ProgressBoard
from ..utils.timing import Stopwatch
from .cache import TieredResultCache
from .registry import ModelEntry, ModelRegistry
from .scheduler import CoalescingScheduler, QueryStatistics

__all__ = [
    "AnalysisService",
    "ServiceError",
    "ServiceUnavailable",
    "ValidationError",
    "ModelNotFound",
    "JobNotFound",
    "QueryError",
    "QuotaExceeded",
    "measure_kwargs",
]


class ServiceError(Exception):
    """Base class for errors the transport layer maps to HTTP statuses."""

    status = 500

    def payload(self) -> dict:
        """The structured JSON error body the transport layer serves."""
        return {"error": str(self), "status": self.status}


class ValidationError(ServiceError):
    """Malformed request payload (missing fields, wrong types)."""

    status = 400


class ModelNotFound(ServiceError):
    """Query referenced a model digest the registry does not hold."""

    status = 404


class JobNotFound(ServiceError):
    """Job id unknown — or owned by a different tenant (indistinguishable)."""

    status = 404


class QueryError(ServiceError):
    """Well-formed request the model cannot answer (bad predicate, ...)."""

    status = 422


class ServiceUnavailable(ServiceError):
    """The server is draining for shutdown; retry against its successor."""

    status = 503

    def __init__(self, message: str, *, retry_after: float | None = 5.0):
        super().__init__(message)
        self.retry_after = retry_after

    def payload(self) -> dict:
        out = super().payload()
        if self.retry_after is not None:
            out["retry_after_seconds"] = self.retry_after
        return out


class QuotaExceeded(ServiceError):
    """A tenant exceeded one of its budgets (rate, active jobs, models)."""

    status = 429

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        quota: str | None = None,
        limit=None,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.retry_after = retry_after

    @classmethod
    def wrap(cls, exc: QuotaError) -> "QuotaExceeded":
        return cls(
            str(exc), tenant=exc.tenant, quota=exc.quota, limit=exc.limit,
            retry_after=exc.retry_after,
        )

    def payload(self) -> dict:
        out = super().payload()
        out["quota"] = self.quota
        out["tenant"] = self.tenant
        if self.limit is not None:
            out["limit"] = self.limit
        if self.retry_after is not None:
            out["retry_after_seconds"] = self.retry_after
        return out


#: request fields each measure kind accepts; shared by the synchronous HTTP
#: handlers, async submission and the job runner so every surface parses one
#: payload shape
_MEASURE_FIELDS = {
    "passage": (
        "model", "spec", "overrides", "max_states", "source", "target",
        "t_points", "include_cdf", "quantile", "solver", "inversion",
        "epsilon",
    ),
    "transient": (
        "model", "spec", "overrides", "max_states", "source", "target",
        "t_points", "include_steady_state", "solver", "inversion", "epsilon",
    ),
}


def measure_kwargs(payload: dict, kind: str) -> dict:
    """Extract the keyword arguments of one measure call from a JSON body."""
    if kind not in _MEASURE_FIELDS:
        raise ValidationError(f"unknown measure kind {kind!r}")
    if not isinstance(payload, dict):
        raise ValidationError("request body must be a JSON object")
    return {k: payload[k] for k in _MEASURE_FIELDS[kind] if k in payload}


def _as_t_points(raw) -> np.ndarray:
    try:
        t_points = np.asarray(list(raw), dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"t_points must be a list of numbers: {exc}") from None
    if t_points.size == 0:
        raise ValidationError("t_points must not be empty")
    if not np.all(np.isfinite(t_points)) or np.any(t_points <= 0):
        raise ValidationError("t_points must be finite and strictly positive")
    return t_points


def _package_version() -> str:
    import repro

    return getattr(repro, "__version__", "unknown")


def _build_info() -> dict:
    """Toolchain fingerprint for fleet debugging (``GET /v1/stats``)."""
    import platform

    import scipy

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "effective_cores": effective_cores(),
    }


class AnalysisService:
    """Serves passage-time and transient queries over registered models."""

    def __init__(
        self,
        *,
        checkpoint_dir=None,
        cache_points: int = 500_000,
        default_max_states: int | None = None,
        workers: int = 1,
        quotas: TenantQuotas | None = None,
        job_store: str | object = "auto",
        job_block_points: int | None = None,
        job_max_attempts: int = 5,
    ):
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self._checkpoint_store = store
        self._draining = False
        self.tenancy = TenancyManager(quotas)
        self.registry = ModelRegistry(
            default_max_states=default_max_states, tenancy=self.tenancy
        )
        self.cache = TieredResultCache(store=store, max_points=cache_points)
        self.workers = int(workers)
        backend = None
        if workers > 1:
            from ..distributed.backends import MultiprocessingBackend

            # With a checkpoint directory the kernel plane is exported as an
            # mmap'd file under <checkpoint>/planes, so workers — including
            # ones started later, or sharing the directory across serve
            # processes — attach by content digest; without one the plane
            # lives in an anonymous shared-memory segment.
            plane_store = str(store.directory / "planes") if store else None
            backend = MultiprocessingBackend(
                processes=workers, plane_store=plane_store
            )
        self.backend = backend
        self.progress_board = ProgressBoard()
        self.scheduler = CoalescingScheduler(
            self.cache, backend=backend, progress_board=self.progress_board
        )
        self._counter_lock = threading.Lock()
        self._query_counts = {"passage": 0, "transient": 0}
        self._started = time.monotonic()
        if isinstance(job_store, str) or job_store is None:
            job_backend = open_backend(job_store or "auto", checkpoint_dir=checkpoint_dir)
        else:
            job_backend = job_store  # a pre-built JobBackend instance
        self.jobs = JobStore(job_backend, max_attempts=job_max_attempts)
        self._runner = JobRunner(self, self.jobs, block_points=job_block_points)
        if self.jobs.next_queued() is not None:
            # a durable store replayed queued (or re-queued crashed) jobs;
            # resume them without waiting for the next submission
            self._runner.start()

    # ------------------------------------------------------------ models
    def register_model(
        self,
        spec: str,
        *,
        name: str | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> dict:
        """Register (or look up) a spec; returns the JSON-ready description."""
        if not isinstance(spec, str) or not spec.strip():
            raise ValidationError("spec must be a non-empty DNAmaca specification string")
        overrides = self._checked_overrides(overrides)
        try:
            entry, created = self.registry.register(
                spec, name=name, overrides=overrides, max_states=max_states,
                tenant=tenant,
            )
        except QuotaError as exc:
            raise QuotaExceeded.wrap(exc) from None
        except ServiceError:
            raise
        except Exception as exc:
            raise QueryError(f"cannot build model: {exc}") from exc
        out = entry.describe()
        out["created"] = created
        return out

    def list_models(self, tenant: str = DEFAULT_TENANT) -> dict:
        """Models visible to this tenant (``GET /v1/models``)."""
        return {
            "models": [entry.describe() for entry in self.registry.models(tenant)],
            "tenant": tenant,
        }

    @staticmethod
    def _checked_overrides(overrides: dict | None) -> dict | None:
        """Validate a JSON overrides object via the shared dnamaca helper."""
        if overrides is None:
            return None
        if not isinstance(overrides, dict):
            raise ValidationError("overrides must be a {constant: value} object")
        try:
            return parse_overrides(overrides)
        except ExpressionError as exc:
            raise ValidationError(str(exc)) from None

    def _resolve_entry(
        self,
        model: str | None,
        spec: str | None,
        overrides: dict | None,
        max_states: int | None,
        tenant: str = DEFAULT_TENANT,
    ) -> tuple[ModelEntry, bool]:
        overrides = self._checked_overrides(overrides)
        if spec is not None:
            if not isinstance(spec, str) or not spec.strip():
                raise ValidationError("spec must be a non-empty string")
            try:
                return self.registry.register(
                    spec, overrides=overrides, max_states=max_states,
                    tenant=tenant,
                )
            except QuotaError as exc:
                raise QuotaExceeded.wrap(exc) from None
            except Exception as exc:
                raise QueryError(f"cannot build model: {exc}") from exc
        if not model:
            raise ValidationError("request needs either 'model' (a digest) or 'spec'")
        if overrides:
            raise ValidationError(
                "constant overrides apply at registration; re-register the spec "
                "with 'overrides' instead of overriding a digest"
            )
        entry = self.registry.get(str(model), tenant=tenant)
        if entry is None:
            raise ModelNotFound(
                f"unknown model {model!r}; register it via POST /v1/models first"
            )
        return entry, False

    def _state_sets(self, entry: ModelEntry, source: str, target: str):
        if not source or not isinstance(source, str):
            raise ValidationError("source must be a marking-predicate expression")
        if not target or not isinstance(target, str):
            raise ValidationError("target must be a marking-predicate expression")
        from ..api.model import resolve_state_sets

        try:
            return resolve_state_sets(entry, source, target)
        except PredicateError as exc:
            raise QueryError(str(exc)) from None

    # ------------------------------------------------------------ queries
    def passage(
        self,
        *,
        model: str | None = None,
        spec: str | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
        source: str,
        target: str,
        t_points,
        include_cdf: bool = True,
        quantile: float | None = None,
        solver: str = "iterative",
        inversion: str = "euler",
        epsilon: float = 1e-8,
        tenant: str = DEFAULT_TENANT,
        _evaluate=None,
    ) -> dict:
        """First-passage-time density (and optionally CDF / quantile)."""
        t_points = _as_t_points(t_points)
        entry, registered = self._resolve_entry(
            model, spec, overrides, max_states, tenant=tenant
        )
        sources, targets = self._state_sets(entry, source, target)
        job = self._make_job("passage", entry, sources, targets, solver, epsilon)
        inverter = self._make_inverter(inversion)
        stats = QueryStatistics()
        stats.extra["model_registered"] = registered

        values = self._gather(job, entry, inverter, t_points, stats,
                              evaluate=_evaluate)
        stopwatch = Stopwatch()
        with stopwatch, obs_trace.span(
            "inversion", method=inverter.name, n_t_points=int(t_points.size)
        ):
            density = inverter.invert_values(t_points, values)
            cdf = None
            if include_cdf:
                cdf_values = {s: v / s for s, v in values.items() if s != 0}
                cdf = inverter.invert_values(t_points, cdf_values)
        stats.inversion_seconds += stopwatch.elapsed

        response = {
            "model": entry.digest,
            "measure": "passage",
            "t_points": [float(t) for t in t_points],
            "density": [float(f) for f in density],
        }
        if cdf is not None:
            response["cdf"] = [float(F) for F in cdf]
        if quantile is not None:
            response["quantile"] = {
                "q": float(quantile),
                "t": self._refine_quantile(
                    job, entry, inverter, t_points, quantile, stats,
                    evaluate=_evaluate,
                ),
            }
        self._count_query("passage", tenant)
        response["statistics"] = stats.as_dict()
        return response

    def transient(
        self,
        *,
        model: str | None = None,
        spec: str | None = None,
        overrides: dict | None = None,
        max_states: int | None = None,
        source: str,
        target: str,
        t_points,
        include_steady_state: bool = True,
        solver: str = "iterative",
        inversion: str = "euler",
        epsilon: float = 1e-8,
        tenant: str = DEFAULT_TENANT,
        _evaluate=None,
    ) -> dict:
        """Transient probability ``P(Z(t) in targets)`` on a t-grid."""
        t_points = _as_t_points(t_points)
        entry, registered = self._resolve_entry(
            model, spec, overrides, max_states, tenant=tenant
        )
        sources, targets = self._state_sets(entry, source, target)
        job = self._make_job("transient", entry, sources, targets, solver, epsilon)
        inverter = self._make_inverter(inversion)
        stats = QueryStatistics()
        stats.extra["model_registered"] = registered

        values = self._gather(job, entry, inverter, t_points, stats,
                              evaluate=_evaluate)
        stopwatch = Stopwatch()
        with stopwatch, obs_trace.span(
            "inversion", method=inverter.name, n_t_points=int(t_points.size)
        ):
            probability = inverter.invert_values(t_points, values)
        stats.inversion_seconds += stopwatch.elapsed

        response = {
            "model": entry.digest,
            "measure": "transient",
            "t_points": [float(t) for t in t_points],
            "probability": [float(p) for p in probability],
        }
        if include_steady_state:
            response["steady_state"] = entry.steady_state(targets)
        self._count_query("transient", tenant)
        response["statistics"] = stats.as_dict()
        return response

    # ------------------------------------------------------------ async jobs
    def admit(self, tenant: str) -> None:
        """Charge one request against the tenant's rate limit (or 429)."""
        try:
            self.tenancy.admit(tenant)
        except QuotaError as exc:
            raise QuotaExceeded.wrap(exc) from None

    def submit(self, kind: str, payload: dict, *, tenant: str = DEFAULT_TENANT) -> dict:
        """Enqueue an async query; returns the ``202``-ready job view.

        Validation happens *now* (bad payloads fail the submission, not the
        job), and the stored request carries the spec text rather than the
        digest: a durable job must be replayable on a restarted server whose
        in-memory registry is empty.
        """
        if self._draining:
            raise ServiceUnavailable(
                "server is draining for shutdown; submit to its successor"
            )
        kwargs = measure_kwargs(payload, kind)
        _as_t_points(kwargs.get("t_points", ()))
        entry, _ = self._resolve_entry(
            kwargs.get("model"), kwargs.get("spec"), kwargs.get("overrides"),
            kwargs.get("max_states"), tenant=tenant,
        )
        self._state_sets(entry, kwargs.get("source"), kwargs.get("target"))
        self._make_inverter(kwargs.get("inversion", "euler"))
        try:
            self.tenancy.check_active_jobs(tenant, self.jobs.active_count(tenant))
        except QuotaError as exc:
            raise QuotaExceeded.wrap(exc) from None
        request = dict(kwargs)
        request.pop("model", None)
        request["spec"] = entry.spec_text
        request["overrides"] = entry.overrides
        request["max_states"] = entry.max_states
        record = self.jobs.create(
            tenant=tenant, kind=kind, request=request, model=entry.digest
        )
        self._runner.start()
        self._runner.wake()
        return record.view(include_result=False)

    def job_view(self, job_id: str, *, tenant: str = DEFAULT_TENANT) -> dict:
        """One job's state/progress/result (``GET /v1/jobs/{id}``)."""
        record = self.jobs.get(str(job_id))
        if record is None or record.tenant != tenant:
            # another tenant's job is indistinguishable from a missing one
            raise JobNotFound(f"unknown job {job_id!r}")
        return record.view()

    def list_jobs(self, tenant: str = DEFAULT_TENANT) -> dict:
        """This tenant's jobs, newest first (``GET /v1/jobs``)."""
        return {
            "jobs": [r.view(include_result=False) for r in self.jobs.list(tenant)],
            "tenant": tenant,
        }

    def cancel_job(self, job_id: str, *, tenant: str = DEFAULT_TENANT) -> dict:
        """Cancel a job (``DELETE /v1/jobs/{id}``); terminal jobs no-op."""
        record = self.jobs.get(str(job_id))
        if record is None or record.tenant != tenant:
            raise JobNotFound(f"unknown job {job_id!r}")
        record = self.jobs.request_cancel(record.job_id)
        self._runner.wake()
        return record.view(include_result=False)

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful-shutdown step 1: refuse new work, park the in-flight job.

        After this returns, new submissions get a 503 (the transport layer
        adds ``Retry-After``), the runner has pushed any in-flight job back
        to ``queued`` at an s-block boundary (its completed blocks already
        checkpointed), and every job state the clients observed is durable.
        Synchronous queries already underway run to completion.  Returns
        False if the in-flight job did not reach a block boundary in time.
        """
        self._draining = True
        return self._runner.drain(timeout)

    def close(self) -> None:
        """Release everything: runner, job store, worker planes, lock files."""
        self._runner.stop()
        self.jobs.close()
        if self.backend is not None:
            # unlinks any anonymous shared-memory kernel planes
            self.backend.close()
        if self._checkpoint_store is not None:
            self._checkpoint_store.release_artifacts()

    # ------------------------------------------------------------ stats
    def stats(self) -> dict:
        with self._counter_lock:
            queries = dict(self._query_counts)
        queries["total"] = sum(queries.values())
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "queries": queries,
            "workers": self.workers,
            "draining": self._draining,
            "version": _package_version(),
            "build": _build_info(),
            "registry": self.registry.stats(),
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.stats(),
            "jobs": self.jobs.stats(),
            "tenancy": self.tenancy.stats(),
        }

    def progress(self, digest: str) -> dict:
        """In-flight / recently finished evaluations for one model digest."""
        return self.progress_board.view(str(digest))

    def metrics_text(self) -> str:
        """The Prometheus exposition body served at ``GET /metrics``."""
        return get_metrics().render_prometheus()

    # ------------------------------------------------------------ internals
    def _make_job(self, kind, entry, sources, targets, solver, epsilon) -> TransformJob:
        from ..api.plan import build_job

        try:
            return build_job(
                entry, kind, sources, targets, solver=solver, epsilon=epsilon
            )
        except PlanError as exc:
            raise ValidationError(str(exc)) from None

    def _make_inverter(self, inversion: str):
        try:
            return get_inverter(inversion)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None

    def _gather(
        self,
        job: TransformJob,
        entry: ModelEntry,
        inverter,
        t_points: np.ndarray,
        stats: QueryStatistics,
        evaluate=None,
    ) -> dict[complex, complex]:
        """Transform values covering the t-grid's inversion s-points.

        The canonical s-grid comes from the same :class:`QueryPlan` the api
        engines derive, so the scheduler/cache see identical points for
        identical queries whatever the entry surface.  The resolved values
        are keyed back onto the *exact* grid points (recovering folded
        conjugates as the conjugate of their mirror image): downstream
        arithmetic such as the CDF's ``L(s)/s`` must divide by the same
        floats every other engine divides by for results to match them
        bit-for-bit.

        ``evaluate`` replaces the single whole-grid scheduler call (the job
        runner passes a block-by-block driver with cancellation/progress
        between blocks); its contract is ``evaluate(job, s_points, entry,
        stats) -> {canonical s: L(s)}``, and because the rest of this method
        is shared, async results match the synchronous path exactly.
        """
        from ..api.plan import QueryPlan

        faults.fire("service.gather", digest=entry.digest, kind=job.kind())
        plan = QueryPlan.derive(inverter, t_points)
        if evaluate is not None:
            resolved = evaluate(job, plan.s_points, entry, stats)
        else:
            resolved = self.scheduler.evaluate(
                job, plan.s_points, eval_lock=entry.eval_lock, stats=stats,
                progress_key=entry.digest,
            )
        return expand_to_grid(plan.required_s_points, resolved)

    def _refine_quantile(
        self,
        job: TransformJob,
        entry: ModelEntry,
        inverter,
        t_points: np.ndarray,
        q,
        stats: QueryStatistics,
        evaluate=None,
    ) -> float:
        """Root-find ``F(t) = q`` with extra inversions through the scheduler."""
        try:
            q = float(q)
        except (TypeError, ValueError):
            raise ValidationError("quantile must be a number") from None
        if not 0.0 < q < 1.0:
            raise ValidationError("quantile must lie strictly between 0 and 1")

        def cdf_at(t: float) -> float:
            grid = np.asarray([t], dtype=float)
            values = self._gather(job, entry, inverter, grid, stats,
                                  evaluate=evaluate)
            cdf_values = {s: v / s for s, v in values.items() if s != 0}
            stopwatch = Stopwatch()
            with stopwatch:
                result = float(inverter.invert_values(grid, cdf_values)[0])
            stats.inversion_seconds += stopwatch.elapsed
            return result

        t_lower = float(np.min(t_points))
        t_upper = float(np.max(t_points)) * 10.0
        lo = cdf_at(t_lower) - q
        hi = cdf_at(t_upper) - q
        if lo > 0 or hi < 0:
            raise QueryError(
                f"quantile {q} is not bracketed by [{t_lower:.6g}, {t_upper:.6g}] "
                f"(F(lower)-q={lo:.4g}, F(upper)-q={hi:.4g})"
            )
        return float(
            optimize.brentq(lambda t: cdf_at(t) - q, t_lower, t_upper, xtol=1e-6)
        )

    def _count_query(self, kind: str, tenant: str) -> None:
        with self._counter_lock:
            self._query_counts[kind] += 1
        get_metrics().counter(
            "repro_queries_total", "queries served by measure kind and tenant",
            ("kind", "tenant"),
        ).inc(1, kind=kind, tenant=tenant)
