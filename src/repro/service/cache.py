"""Tiered transform-value cache: in-memory LRU over the on-disk checkpoints.

The paper's pipeline caches every returned ``L(s)`` value "both in memory and
on disk".  The serving layer keeps that contract per *measure* (a transform
job digest): a bounded in-memory LRU answers repeated queries without any
I/O, and an optional :class:`~repro.distributed.CheckpointStore` underneath
both persists new values and warms the memory tier after a restart.  All
operations are thread-safe; disk writes go through ``CheckpointStore.merge``,
which itself holds a per-digest inter-process lock, so several server
processes may share one checkpoint directory.
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..distributed.checkpoint import CheckpointStore
from ..laplace.inverter import canonical_s
from ..obs.metrics import get_metrics

__all__ = ["CacheLookup", "TieredResultCache"]


@dataclass
class CacheLookup:
    """Outcome of one lookup: resolved values plus per-tier hit counts."""

    found: dict[complex, complex]
    missing: list[complex]
    memory_hits: int
    disk_hits: int


class TieredResultCache:
    """In-memory LRU of ``{canonical s: L(s)}`` maps in front of disk.

    Parameters
    ----------
    store:
        Optional on-disk checkpoint tier.  When present, a memory miss pulls
        the digest's checkpoint file into memory once, and every insert is
        merged back so values survive restarts.
    max_points:
        Bound on the total number of s-points held in memory.  Whole measures
        are evicted least-recently-used first; an evicted measure's disk tier
        is consulted again on its next lookup.
    """

    def __init__(self, store: CheckpointStore | None = None, max_points: int = 500_000):
        if max_points <= 0:
            raise ValueError("max_points must be positive")
        self._store = store
        self._max_points = max_points
        self._lock = threading.Lock()
        self._measures: OrderedDict[str, dict[complex, complex]] = OrderedDict()
        self._disk_loaded: set[str] = set()
        self._n_points = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.measures_evicted = 0

    # ------------------------------------------------------------------ API
    @property
    def has_disk_tier(self) -> bool:
        return self._store is not None

    @property
    def store(self) -> CheckpointStore | None:
        """The disk tier (``None`` for memory-only caches)."""
        return self._store

    def checkpointed_points(self, digest: str) -> int:
        """Durable s-point count for one measure (0 without a disk tier)."""
        return self._store.count(digest) if self._store is not None else 0

    def lookup(self, digest: str, s_points) -> CacheLookup:
        """Resolve canonical s-points through the memory then disk tiers."""
        with self._lock:
            values = self._measures.get(digest)
            if values is None:
                values = {}
                self._measures[digest] = values
            else:
                self._measures.move_to_end(digest)
            found: dict[complex, complex] = {}
            missing: list[complex] = []
            memory_hits = 0
            for s in s_points:
                v = values.get(s)
                if v is not None:
                    found[s] = v
                    memory_hits += 1
                else:
                    missing.append(s)
            need_disk = bool(missing) and self._store is not None \
                and digest not in self._disk_loaded
            if need_disk:
                # Claim the load before releasing the lock so concurrent
                # lookups on this digest don't all parse the same file.
                self._disk_loaded.add(digest)
        disk_hits = 0
        if need_disk:
            # The file read + JSON parse can be many milliseconds for a large
            # measure; doing it outside the lock keeps memory-tier hits on
            # other measures (and this one) from stalling behind it.
            disk = self._store.load(digest)
            with self._lock:
                values = self._measures.get(digest)
                if values is None:  # evicted while loading; reinstate
                    values = {}
                    self._measures[digest] = values
                for k, v in disk.items():
                    key = canonical_s(k)
                    if key not in values:
                        values[key] = complex(v)
                        self._n_points += 1
                still_missing = []
                for s in missing:
                    v = values.get(s)
                    if v is not None:
                        found[s] = v
                        disk_hits += 1
                    else:
                        still_missing.append(s)
                missing = still_missing
        with self._lock:
            self.memory_hits += memory_hits
            self.disk_hits += disk_hits
            self.misses += len(missing)
            self._evict_locked(keep=digest)
        counter = get_metrics().counter(
            "repro_cache_points_total", "result-cache lookups by outcome tier",
            ("tier",),
        )
        if memory_hits:
            counter.inc(memory_hits, tier="memory")
        if disk_hits:
            counter.inc(disk_hits, tier="disk")
        if missing:
            counter.inc(len(missing), tier="miss")
        return CacheLookup(found, missing, memory_hits, disk_hits)

    def peek(self, digest: str, s_points) -> dict[complex, complex]:
        """Memory-tier re-check with no LRU or miss side effects.

        Used by the scheduler's single-flight double-check: a point whose
        owner completed between a request's :meth:`lookup` and its ticket
        registration is already in memory and must not be re-evaluated.
        Found points count as memory hits (they are exactly that); nothing
        else is touched, so the earlier lookup's miss accounting stands.
        """
        with self._lock:
            values = self._measures.get(digest)
            if not values:
                return {}
            found = {s: values[s] for s in s_points if s in values}
            self.memory_hits += len(found)
            return found

    def insert(self, digest: str, computed: dict[complex, complex]) -> None:
        """Store freshly computed values in memory and (if present) on disk."""
        if not computed:
            return
        with self._lock:
            values = self._measures.get(digest)
            if values is None:
                values = {}
                self._measures[digest] = values
            self._measures.move_to_end(digest)
            for s, v in computed.items():
                key = canonical_s(s)
                if key not in values:
                    self._n_points += 1
                values[key] = complex(v)
            self._evict_locked(keep=digest)
        if self._store is not None:
            # Outside the LRU lock: the store holds its own per-digest
            # inter-process lock and may block on other writers.
            self._store.merge(digest, computed)

    def stats(self) -> dict:
        with self._lock:
            return {
                "tiers": ["memory", "disk"] if self._store is not None else ["memory"],
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "measures_evicted": self.measures_evicted,
                "measures_in_memory": len(self._measures),
                "points_in_memory": self._n_points,
                "max_points": self._max_points,
            }

    # ------------------------------------------------------------ internals
    def _evict_locked(self, keep: str) -> None:
        while self._n_points > self._max_points and len(self._measures) > 1:
            digest, values = next(iter(self._measures.items()))
            if digest == keep:
                break  # never evict the measure being served
            self._measures.pop(digest)
            self._disk_loaded.discard(digest)  # re-warm from disk if it returns
            self._n_points -= len(values)
            self.measures_evicted += 1
