"""Coalescing s-point scheduler: each point is evaluated at most once.

Concurrent queries on the same measure expand to overlapping inversion
s-grids (the Euler grid for a given t-grid is identical across requests).
The scheduler keeps a single-flight table keyed by ``(measure digest,
canonical s)``: the first request to need a point registers a ticket and
evaluates it as part of one :meth:`TransformJob.evaluate_batch` call on the
batched engine; every other in-flight request needing that point blocks on
the ticket and receives the same value — one evaluation fans out to all
waiting queries.

Evaluations on one kernel are serialised by the model entry's ``eval_lock``
(the shared :class:`~repro.smp.kernel.UEvaluator` grid caches are not
thread-safe); waiting on tickets never happens while that lock is held, so
the scheme is deadlock-free.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..core.jobs import TransformJob
from ..laplace.inverter import canonical_s
from ..obs.metrics import get_metrics, merge_worker_stats, worker_stats_snapshot
from ..utils.timing import Stopwatch
from .cache import TieredResultCache

__all__ = ["CoalescingScheduler", "QueryStatistics"]

#: upper bound on waiting for another request's in-flight evaluation; far
#: beyond any single batch on models this library handles in-process
_COALESCE_TIMEOUT_SECONDS = 600.0


@dataclass
class QueryStatistics:
    """Per-request accounting, returned in every query response."""

    s_points_required: int = 0
    s_points_from_memory: int = 0
    s_points_from_disk: int = 0
    s_points_coalesced: int = 0
    s_points_computed: int = 0
    batches: int = 0
    evaluation_seconds: float = 0.0
    inversion_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "s_points_required": self.s_points_required,
            "s_points_from_memory": self.s_points_from_memory,
            "s_points_from_disk": self.s_points_from_disk,
            "s_points_coalesced": self.s_points_coalesced,
            "s_points_computed": self.s_points_computed,
            "batches": self.batches,
            "evaluation_seconds": self.evaluation_seconds,
            "inversion_seconds": self.inversion_seconds,
        }
        out.update(self.extra)
        return out


class _Ticket:
    """One in-flight s-point: waiters block on ``event`` for the value."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: complex | None = None
        self.error: BaseException | None = None


class CoalescingScheduler:
    """Single-flight batched evaluation over a tiered result cache.

    With a block-dispatching ``backend`` (the service's ``workers > 1``
    mode), each owned batch is farmed out as s-blocks to a worker pool that
    shares the kernel plane; per-worker block counts and busy time are
    accumulated for ``/v1/stats``.
    """

    def __init__(
        self,
        cache: TieredResultCache,
        *,
        backend=None,
        progress_board=None,
        coalesce_timeout: float = _COALESCE_TIMEOUT_SECONDS,
    ):
        if coalesce_timeout <= 0:
            raise ValueError("coalesce_timeout must be > 0")
        self.cache = cache
        self.backend = backend
        #: upper bound on waiting for another request's in-flight point; a
        #: dead leader resolves its tickets with the error immediately, so
        #: this only guards against a leader stuck outside Python's control
        self.coalesce_timeout = float(coalesce_timeout)
        #: optional :class:`~repro.obs.progress.ProgressBoard`; owned batches
        #: register a per-digest reporter so ``GET /v1/progress/{digest}``
        #: shows in-flight evaluations
        self.progress_board = progress_board
        self._lock = threading.Lock()
        self._in_flight: dict[tuple[str, complex], _Ticket] = {}
        self.points_evaluated = 0
        self.points_coalesced = 0
        self.batches_dispatched = 0
        self.evaluation_seconds_total = 0.0
        #: batches served per evaluation engine ("batch", "factored", ...)
        self.engine_batches: dict[str, int] = {}
        #: solve blocks executed per engine (one batch spans >= 1 blocks)
        self.engine_blocks: dict[str, int] = {}

    # ------------------------------------------------------------------ API
    def evaluate(
        self,
        job: TransformJob,
        s_points,
        *,
        eval_lock=None,
        stats: QueryStatistics | None = None,
        progress_key: str | None = None,
        reporter=None,
    ) -> dict[complex, complex]:
        """Transform values for ``s_points``, keyed by canonical s.

        Points are resolved in tier order: memory cache, disk checkpoint,
        another request's in-flight evaluation, and only then a fresh batched
        evaluation of the leftovers (one ``evaluate_batch`` call, serialised
        on ``eval_lock`` when the job shares its evaluator).

        A caller spanning several ``evaluate`` calls — the async job runner
        dispatches one call per s-block — passes its own ``reporter`` so the
        progress board shows a single monotone run instead of one micro-run
        per block; the scheduler then never finishes that reporter.
        """
        digest = job.digest()
        canonical: list[complex] = []
        exact: dict[complex, complex] = {}
        for s in s_points:
            key = canonical_s(complex(s))
            if key not in exact:
                exact[key] = complex(s)
                canonical.append(key)

        lookup = self.cache.lookup(digest, canonical)
        found = lookup.found
        if stats is not None:
            stats.s_points_required += len(canonical)
            stats.s_points_from_memory += lookup.memory_hits
            stats.s_points_from_disk += lookup.disk_hits

        waits: dict[complex, _Ticket] = {}
        owned: list[complex] = []
        if lookup.missing:
            with self._lock:
                for s in lookup.missing:
                    ticket = self._in_flight.get((digest, s))
                    if ticket is not None:
                        waits[s] = ticket
                    else:
                        ticket = _Ticket()
                        self._in_flight[(digest, s)] = ticket
                        owned.append(s)

        if owned:
            # From here to the end of the owned evaluation, *any* failure must
            # resolve the registered tickets: a waiter blocked on a ticket its
            # dead leader never resolves would sit out the whole coalesce
            # timeout instead of seeing the error immediately.
            try:
                # Double-check the memory tier: an owner that completed
                # between our lookup and our ticket registration has already
                # inserted its values, and those points must not be evaluated
                # a second time.
                already = self.cache.peek(digest, owned)
                if already:
                    with self._lock:
                        for s, v in already.items():
                            ticket = self._in_flight.pop((digest, s), None)
                            if ticket is not None:
                                ticket.value = v
                                ticket.event.set()
                    owned = [s for s in owned if s not in already]
                    found.update(already)
                    if stats is not None:
                        stats.s_points_from_memory += len(already)
                if owned:
                    computed = self._evaluate_owned(
                        job, digest, owned, exact, eval_lock, stats,
                        progress_key, reporter,
                    )
                    found.update(computed)
            except BaseException as exc:
                self._resolve_with_error(digest, owned, exc)
                raise

        for s, ticket in waits.items():
            if not ticket.event.wait(self.coalesce_timeout):
                raise TimeoutError(
                    f"timed out waiting for in-flight evaluation of s={s}"
                )
            if ticket.error is not None:
                raise RuntimeError(
                    f"coalesced evaluation of s={s} failed in another request"
                ) from ticket.error
            found[s] = ticket.value
        if waits:
            with self._lock:
                self.points_coalesced += len(waits)
            get_metrics().counter(
                "repro_coalesced_points_total",
                "s-points served by another request's in-flight evaluation",
            ).inc(len(waits))
            if stats is not None:
                stats.s_points_coalesced += len(waits)
        return found

    def stats(self) -> dict:
        with self._lock:
            out = {
                "points_evaluated": self.points_evaluated,
                "points_coalesced": self.points_coalesced,
                "batches_dispatched": self.batches_dispatched,
                "points_in_flight": len(self._in_flight),
                "evaluation_seconds_total": self.evaluation_seconds_total,
                "engine_batches": dict(self.engine_batches),
                "engine_blocks": dict(self.engine_blocks),
            }
        # Pool mode only: the per-worker view comes straight from the obs
        # metrics registry — the one place the backend records completed
        # blocks — instead of a scheduler-private merge of report dicts.
        if self.backend is not None:
            workers = worker_stats_snapshot()
            if workers:
                out["workers"] = workers
        return out

    # ------------------------------------------------------------ internals
    def _resolve_with_error(
        self, digest: str, owned: list[complex], exc: BaseException
    ) -> None:
        """Wake waiters of any still-registered owned tickets with ``exc``.

        Idempotent with the resolution inside :meth:`_evaluate_owned` —
        tickets it already popped are simply gone from the table.
        """
        with self._lock:
            for s in owned:
                ticket = self._in_flight.pop((digest, s), None)
                if ticket is not None:
                    ticket.error = exc
                    ticket.event.set()

    def _evaluate_owned(
        self,
        job: TransformJob,
        digest: str,
        owned: list[complex],
        exact: dict[complex, complex],
        eval_lock,
        stats: QueryStatistics | None,
        progress_key: str | None = None,
        reporter=None,
    ) -> dict[complex, complex]:
        # Evaluate at the *exact* s-points the caller supplied, not at their
        # canonically rounded cache keys: rounding perturbs contour points
        # whose components differ by many orders of magnitude (the Laguerre
        # grid), and every other evaluation path (solvers, pipeline, api
        # engines) evaluates exact points — evaluating the same inputs is
        # what keeps remote results bit-identical to local ones.
        todo = [exact.get(key, key) for key in owned]
        stopwatch = Stopwatch()
        report = None
        # The board is keyed by the *model* digest (what clients poll at
        # /v1/progress/{digest}), not the per-measure job digest.
        board_key = progress_key or digest
        external_reporter = reporter is not None
        if not external_reporter and self.progress_board is not None:
            reporter = self.progress_board.start(board_key, label=job.kind())

        def _dispatch():
            # Pool mode dispatches s-blocks to workers sharing the kernel
            # plane; the lock still serialises use of the master-side
            # evaluator (plane export, engine resolution) per kernel.
            if self.backend is not None:
                if getattr(self.backend, "supports_progress", False):
                    return self.backend.evaluate(job, todo, progress=reporter)
                return self.backend.evaluate(job, todo)
            if reporter is not None:
                reporter.add_total(1, len(todo))
            computed = job.evaluate_many(todo)
            if reporter is not None:
                reporter.advance(1, len(todo))
            return computed

        try:
            with stopwatch:
                # Capture the evaluation report right after the call (while
                # still holding the evaluation lock where one exists): another
                # request sharing the job's measure may evaluate concurrently
                # and overwrite job.last_report.
                if eval_lock is not None:
                    with eval_lock:
                        computed = _dispatch()
                        report = getattr(job, "last_report", None)
                else:
                    computed = _dispatch()
                    report = getattr(job, "last_report", None)
        except BaseException as exc:
            with self._lock:
                for s in owned:
                    ticket = self._in_flight.pop((digest, s), None)
                    if ticket is not None:
                        ticket.error = exc
                        ticket.event.set()
            raise
        finally:
            if reporter is not None and not external_reporter:
                self.progress_board.done(board_key, reporter)
        # Re-key the values by their canonical cache keys (evaluate_many
        # keyed them by the exact inputs).
        computed = {key: computed[s] for key, s in zip(owned, todo)}
        self.cache.insert(digest, computed)
        with self._lock:
            for s in owned:
                ticket = self._in_flight.pop((digest, s), None)
                if ticket is not None:
                    ticket.value = computed[s]
                    ticket.event.set()
            self.points_evaluated += len(owned)
            self.batches_dispatched += 1
            self.evaluation_seconds_total += stopwatch.elapsed
            if report and report.get("engine"):
                engine = report["engine"]
                self.engine_batches[engine] = self.engine_batches.get(engine, 0) + 1
                blocks = report.get("blocks") or []
                self.engine_blocks[engine] = self.engine_blocks.get(engine, 0) + len(blocks)
        if stats is not None:
            stats.s_points_computed += len(owned)
            stats.batches += 1
            stats.evaluation_seconds += stopwatch.elapsed
            if report and report.get("engine"):
                stats.extra["evaluator_engine"] = report["engine"]
                # Extend, never replace: a query whose points resolve in
                # several coalesced batches reports every batch's blocks.
                stats.extra.setdefault("solve_blocks", []).extend(
                    report.get("blocks") or []
                )
            if report and report.get("workers"):
                merge_worker_stats(stats.extra.setdefault("workers", {}),
                                   report["workers"])
        return computed
