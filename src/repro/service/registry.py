"""Content-addressed registry of built models.

The expensive part of answering a DNAmaca query is everything *before* the
transform evaluations: parsing the specification, exploring the reachability
graph, eliminating vanishing states and assembling the SMP kernel.  The
registry content-addresses each model by a digest of its specification text
plus constant overrides, builds the artefacts once, and hands every later
query the same :class:`ModelEntry` — including one shared
:class:`~repro.smp.kernel.UEvaluator` so all measures on the kernel reuse its
CSR structure and cached ``U(s)`` grids.

Registration is thread-safe: concurrent registrations of the same spec
observe a single build (waiters block on the builder's event rather than
re-exploring the state space).

Tenancy: build artefacts stay content-addressed and shared (two tenants
registering the same spec pay one build and share cached transform values),
but *visibility* is per-tenant.  Each registration with a tenant records the
digest in that tenant's namespace; digest lookups and model listings scoped
to a tenant only see digests the tenant registered itself.  Registrations
without a tenant (library-internal callers) are unowned and visible to all.
A per-tenant model quota is enforced before a build starts.
"""
from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

import numpy as np

from ..dnamaca import load_model, parse_model
from ..dnamaca.expressions import ExpressionError, parse_overrides
from ..dnamaca.vectorize import vector_marking_predicate
from ..obs import trace as obs_trace
from ..obs.metrics import get_metrics
from ..petri import build_kernel, explore_vectorized
from ..smp.kernel import SMPKernel, UEvaluator
from ..smp.steady import steady_state_probability
from ..utils.timing import Stopwatch

__all__ = ["ModelEntry", "ModelRegistry", "spec_digest"]


def spec_digest(
    text: str,
    overrides: dict[str, float] | None = None,
    max_states: int | None = None,
) -> str:
    """Content address of a model: spec text + constant overrides + state cap."""
    h = hashlib.sha256()
    h.update(text.strip().encode())
    for name, value in sorted((overrides or {}).items()):
        h.update(f"|{name}={float(value)!r}".encode())
    h.update(f"|max_states={max_states}".encode())
    return h.hexdigest()[:16]


@dataclass
class ModelEntry:
    """Everything the service caches per registered model."""

    digest: str
    name: str
    spec_text: str
    overrides: dict[str, float]
    constants: dict[str, float]
    net: object
    graph: object
    kernel: SMPKernel
    evaluator: UEvaluator
    build_seconds: float
    #: which evaluation engine the default SPointPolicy picks for this kernel
    #: ("batch" or "factored"); decided once at registration
    evaluator_engine: str = "batch"
    #: the state-space cap this entry was built under — part of the digest,
    #: recorded so a durable job request can reproduce it after a restart
    max_states: int | None = None
    #: serialises transform evaluations on the shared evaluator (its grid
    #: caches are not thread-safe); held by the scheduler, not by callers
    eval_lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    _state_sets: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _steady_states: dict[bytes, float] = field(default_factory=dict, repr=False)
    _memo_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def n_states(self) -> int:
        return self.kernel.n_states

    def states_matching(self, expression: str) -> np.ndarray:
        """State indices whose marking satisfies a condition-style expression.

        Evaluated as one vectorized NumPy pass over the marking matrix
        (columnar predicate compilation) rather than one Python call per
        state, and memoised per expression text: a serving workload
        re-resolves the same handful of source/target predicates on every
        query.
        """
        with self._memo_lock:
            hit = self._state_sets.get(expression)
        if hit is not None:
            return hit
        try:
            predicate = vector_marking_predicate(expression, self.constants)
            mask = predicate(self.graph.marking_array(), self.net.place_index)
            states = np.flatnonzero(mask).astype(np.int64)
        except ExpressionError:
            raise
        except Exception as exc:  # evaluation errors (bad types, ...)
            raise ExpressionError(f"cannot evaluate predicate {expression!r}: {exc}") from exc
        with self._memo_lock:
            self._state_sets.setdefault(expression, states)
        return states

    def steady_state(self, targets) -> float:
        """``P(Z(inf) in targets)``, memoised per target set.

        The embedded-DTMC steady-state solve depends only on the kernel and
        the target set, so a serving workload pays it once per measure rather
        than once per transient query.
        """
        targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
        key = targets.tobytes()
        with self._memo_lock:
            hit = self._steady_states.get(key)
        if hit is not None:
            return hit
        value = float(steady_state_probability(self.kernel, targets))
        with self._memo_lock:
            self._steady_states.setdefault(key, value)
        return value

    def describe(self) -> dict:
        """JSON-serialisable summary used by the registration response."""
        return {
            "model": self.digest,
            "name": self.name,
            "states": int(self.kernel.n_states),
            "kernel_transitions": int(self.kernel.n_transitions),
            "distinct_distributions": int(self.kernel.n_distributions),
            "constants": {k: float(v) for k, v in self.constants.items()},
            "build_seconds": self.build_seconds,
            "evaluator_engine": self.evaluator_engine,
        }


class ModelRegistry:
    """Builds and caches :class:`ModelEntry` objects, keyed by spec digest."""

    def __init__(
        self,
        *,
        default_max_states: int | None = None,
        tenancy: "TenancyManager | None" = None,
    ):
        self.default_max_states = default_max_states
        #: quota oracle for the per-tenant model budget (``None`` = unlimited)
        self.tenancy = tenancy
        self._entries: dict[str, ModelEntry] = {}
        self._building: dict[str, threading.Event] = {}
        #: tenant -> digests that tenant registered (visibility namespaces)
        self._namespaces: dict[str, set[str]] = {}
        self._lock = threading.Lock()
        self.models_built = 0
        self.registry_hits = 0
        self.build_seconds_total = 0.0

    # ------------------------------------------------------------------ API
    def register(
        self,
        text: str,
        *,
        name: str | None = None,
        overrides: dict[str, float] | None = None,
        max_states: int | None = None,
        tenant: str | None = None,
    ) -> tuple[ModelEntry, bool]:
        """Return the entry for this spec, building it at most once.

        Returns ``(entry, created)`` where ``created`` tells whether *this*
        call paid the exploration/build cost.  With a ``tenant``, the digest
        is recorded in that tenant's namespace (subject to its model quota);
        the underlying build stays shared across tenants.
        """
        if max_states is None:
            max_states = self.default_max_states
        overrides = parse_overrides(overrides)
        digest = spec_digest(text, overrides, max_states)
        self._claim_namespace(digest, tenant)
        while True:
            with self._lock:
                entry = self._entries.get(digest)
                if entry is not None:
                    self.registry_hits += 1
                    return entry, False
                event = self._building.get(digest)
                if event is None:
                    event = threading.Event()
                    self._building[digest] = event
                    break  # this thread builds
            event.wait()  # another thread is building this digest
        try:
            entry = self._build(digest, text, name, overrides, max_states)
            with self._lock:
                self._entries[digest] = entry
                self.models_built += 1
                self.build_seconds_total += entry.build_seconds
            return entry, True
        finally:
            with self._lock:
                self._building.pop(digest, None)
            event.set()

    def get(self, digest: str, *, tenant: str | None = None) -> ModelEntry | None:
        """Look up a digest, optionally scoped to a tenant's namespace.

        A digest owned by other tenants only is invisible (``None``) to a
        scoped lookup — tenant B cannot query tenant A's models even when it
        guesses the digest.  Unowned digests (registered without a tenant)
        stay visible to everyone.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None and tenant is not None:
                owners = [t for t, ns in self._namespaces.items() if digest in ns]
                if owners and tenant not in owners:
                    return None
            if entry is not None:
                self.registry_hits += 1
            return entry

    def entries(self) -> list[ModelEntry]:
        with self._lock:
            return list(self._entries.values())

    def models(self, tenant: str | None = None) -> list[ModelEntry]:
        """Entries visible to ``tenant`` (all entries when ``None``)."""
        with self._lock:
            if tenant is None:
                return list(self._entries.values())
            owned = self._namespaces.get(tenant, set())
            return [
                entry for digest, entry in self._entries.items()
                if digest in owned
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "models": len(self._entries),
                "models_built": self.models_built,
                "registry_hits": self.registry_hits,
                "build_seconds_total": self.build_seconds_total,
                "tenants": {
                    tenant: len(digests)
                    for tenant, digests in sorted(self._namespaces.items())
                },
            }

    # ------------------------------------------------------------ internals
    def _claim_namespace(self, digest: str, tenant: str | None) -> None:
        """Record the digest in the tenant's namespace, enforcing its quota.

        Claimed *before* the build so a tenant at its model quota never
        triggers an expensive exploration; re-claiming an already-owned
        digest is free and never counts against the quota.
        """
        if tenant is None:
            return
        with self._lock:
            owned = self._namespaces.setdefault(tenant, set())
            if digest in owned:
                return
            if self.tenancy is not None:
                self.tenancy.check_models(tenant, len(owned))
            owned.add(digest)

    def _build(
        self,
        digest: str,
        text: str,
        name: str | None,
        overrides: dict[str, float],
        max_states: int | None,
    ) -> ModelEntry:
        from ..smp.passage import SPointPolicy

        stopwatch = Stopwatch()
        with stopwatch, obs_trace.span("model-build", digest=digest):
            spec = parse_model(text, name=name or "model")
            net = load_model(text, name=name or spec.name or "model", overrides=overrides or None)
            with obs_trace.span("explore", digest=digest):
                graph = explore_vectorized(net, max_states=max_states)
            with obs_trace.span(
                "kernel-build", digest=digest, n_states=int(graph.n_states)
            ):
                kernel = build_kernel(graph, allow_truncated=graph.truncated)
                evaluator = kernel.evaluator()
            # Decide the evaluation engine once per model; kernels routed to
            # the factored engine prewarm its target-independent structures
            # here so no query pays the pair decomposition.
            engine = SPointPolicy().resolve_engine(evaluator)
            if engine == "factored":
                evaluator.factored().prewarm()
        get_metrics().counter(
            "repro_models_built_total", "model builds by evaluation engine",
            ("engine",),
        ).inc(1, engine=engine)
        get_metrics().histogram(
            "repro_model_build_seconds", "wall-clock of one model build"
        ).observe(stopwatch.elapsed)
        constants = dict(spec.constants)
        constants.update(overrides)
        return ModelEntry(
            digest=digest,
            name=net.name,
            spec_text=text,
            overrides=overrides,
            constants=constants,
            net=net,
            graph=graph,
            kernel=kernel,
            evaluator=evaluator,
            build_seconds=stopwatch.elapsed,
            evaluator_engine=engine,
            max_states=max_states,
        )
