"""Row-partitioning strategies for distributing a sparse SMP kernel.

Each strategy assigns every state (kernel row) to one of ``n_parts`` workers
and is judged on two axes:

* *load imbalance* — the heaviest part's share of non-zero transitions
  relative to a perfect split (drives compute balance of the vector–matrix
  products),
* *edge cut* — the fraction of transitions whose source and destination live
  in different parts (drives communication volume if the iterative sum were
  distributed by rows, which is the regime the paper's future-work section
  anticipates for ~10^8-state models).

``greedy_balanced_partition`` balances non-zeros only; ``bfs_locality_partition``
additionally keeps breadth-first-contiguous regions of the state graph
together, which is the cheap stand-in for a hypergraph partitioner available
without external dependencies.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..smp.kernel import SMPKernel
from ..utils.arrays import ragged_take

__all__ = [
    "PartitionQuality",
    "contiguous_partition",
    "round_robin_partition",
    "greedy_balanced_partition",
    "bfs_locality_partition",
    "refine_partition",
    "evaluate_partition",
]


def _check_parts(n_parts: int, n_states: int) -> None:
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts > n_states:
        raise ValueError("cannot split into more parts than there are states")


def contiguous_partition(kernel: SMPKernel, n_parts: int) -> np.ndarray:
    """Split states into contiguous index ranges of (nearly) equal *state* count."""
    _check_parts(n_parts, kernel.n_states)
    return np.minimum(
        (np.arange(kernel.n_states) * n_parts) // kernel.n_states, n_parts - 1
    ).astype(np.int64)


def round_robin_partition(kernel: SMPKernel, n_parts: int) -> np.ndarray:
    """Deal states to parts in turn (the naive work-queue equivalent)."""
    _check_parts(n_parts, kernel.n_states)
    return (np.arange(kernel.n_states) % n_parts).astype(np.int64)


def greedy_balanced_partition(kernel: SMPKernel, n_parts: int) -> np.ndarray:
    """Longest-processing-time assignment balancing per-part non-zero counts."""
    _check_parts(n_parts, kernel.n_states)
    row_nnz = np.bincount(kernel.src, minlength=kernel.n_states).astype(float)
    # Every row also costs a vector entry even when it has few transitions.
    weights = row_nnz + 1.0
    order = np.argsort(-weights, kind="stable")
    loads = np.zeros(n_parts)
    assignment = np.empty(kernel.n_states, dtype=np.int64)
    for state in order:
        part = int(np.argmin(loads))
        assignment[state] = part
        loads[part] += weights[state]
    return assignment


def _csr_neighbours(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All CSR column indices of the given rows, concatenated (vectorized)."""
    starts = indptr[frontier]
    return ragged_take(indices, starts, indptr[frontier + 1] - starts)


def bfs_locality_partition(kernel: SMPKernel, n_parts: int, *, start: int = 0) -> np.ndarray:
    """Breadth-first chunking: consecutive BFS layers stay in the same part.

    States are visited breadth-first from ``start`` (unreached states are
    appended afterwards) and the visit order is cut into ``n_parts`` chunks of
    balanced non-zero weight.  Neighbouring states therefore tend to share a
    part, which reduces the edge cut dramatically compared with round-robin.

    The traversal runs level-by-level directly on the kernel's pre-assembled
    CSR structure (one vectorized gather per BFS layer) instead of building
    per-state Python adjacency lists.
    """
    _check_parts(n_parts, kernel.n_states)
    n = kernel.n_states
    indptr, indices = kernel.adjacency()

    visited = np.zeros(n, dtype=bool)
    visited[start] = True
    levels: list[np.ndarray] = []
    frontier = np.asarray([int(start)], dtype=np.int64)
    while frontier.size:
        levels.append(frontier)
        neighbours = _csr_neighbours(indptr, indices, frontier)
        fresh = neighbours[~visited[neighbours]]
        # Deduplicate, keeping first-discovery order within the level.
        unique, first_seen = np.unique(fresh, return_index=True)
        frontier = unique[np.argsort(first_seen, kind="stable")].astype(np.int64)
        visited[frontier] = True
    levels.append(np.flatnonzero(~visited).astype(np.int64))
    order = np.concatenate(levels)

    weights = np.bincount(kernel.src, minlength=n).astype(float) + 1.0
    total = weights.sum()
    target = total / n_parts
    assignment = np.empty(n, dtype=np.int64)
    part, acc = 0, 0.0
    for state in order:
        assignment[state] = part
        acc += weights[state]
        if acc >= target * (part + 1) and part < n_parts - 1:
            part += 1
    return assignment


def refine_partition(
    kernel: SMPKernel,
    assignment: np.ndarray,
    *,
    max_passes: int = 5,
    balance_tolerance: float = 1.10,
) -> np.ndarray:
    """Greedy Kernighan–Lin-style local refinement of a row partition.

    States are repeatedly moved to the neighbouring part that most reduces the
    edge cut, as long as the destination part's load stays within
    ``balance_tolerance`` times the ideal share.  This is the lightweight
    stand-in for the "hypergraph partitioning" refinement the paper's future
    work envisages; on the voting kernels it typically removes a further
    20–50% of the cut left by the BFS-locality seed.
    """
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    n = kernel.n_states
    if assignment.shape != (n,):
        raise ValueError("assignment must give one part per state")
    n_parts = int(assignment.max()) + 1
    if max_passes < 0:
        raise ValueError("max_passes must be >= 0")
    if balance_tolerance < 1.0:
        raise ValueError("balance_tolerance must be >= 1.0")

    weights = np.bincount(kernel.src, minlength=n).astype(float) + 1.0
    loads = np.bincount(assignment, weights=weights, minlength=n_parts)
    limit = balance_tolerance * weights.sum() / n_parts

    # Undirected neighbour multiplicities (an edge in either direction couples
    # the two rows' iterates), assembled as one sparse symmetrisation of the
    # kernel's CSR structure instead of per-edge Python dict updates.
    from scipy import sparse

    ones = np.ones(kernel.n_transitions)
    directed = sparse.csr_matrix(
        (ones, (kernel.src, kernel.dst)), shape=(n, n)
    )
    undirected = (directed + directed.T).tocsr()
    undirected.setdiag(0.0)
    undirected.eliminate_zeros()
    u_indptr, u_indices, u_data = (
        undirected.indptr, undirected.indices, undirected.data,
    )

    for _ in range(max_passes):
        moved = 0
        for state in range(n):
            row = slice(u_indptr[state], u_indptr[state + 1])
            if row.start == row.stop:
                continue
            current = assignment[state]
            # Connection weight of this state towards each part.
            part_pull = np.bincount(
                assignment[u_indices[row]], weights=u_data[row], minlength=n_parts
            )
            internal = part_pull[current]
            gains = part_pull - internal
            gains[current] = 0.0
            feasible = loads + weights[state] <= limit
            feasible[current] = False
            gains[~feasible] = 0.0
            best_part = int(np.argmax(gains))
            if gains[best_part] > 0.0:
                loads[current] -= weights[state]
                loads[best_part] += weights[state]
                assignment[state] = best_part
                moved += 1
        if moved == 0:
            break
    return assignment


@dataclass
class PartitionQuality:
    """Quality metrics of a row partition."""

    n_parts: int
    nnz_per_part: np.ndarray
    imbalance: float        # heaviest part / ideal share (1.0 is perfect)
    edge_cut: int           # transitions crossing parts
    edge_cut_fraction: float

    def summary(self) -> str:
        return (
            f"parts={self.n_parts} imbalance={self.imbalance:.3f} "
            f"edge-cut={self.edge_cut} ({self.edge_cut_fraction:.1%})"
        )


def evaluate_partition(kernel: SMPKernel, assignment: np.ndarray) -> PartitionQuality:
    """Compute imbalance and edge-cut statistics for a row assignment."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (kernel.n_states,):
        raise ValueError("assignment must give one part per state")
    if assignment.min() < 0:
        raise ValueError("part indices must be non-negative")
    n_parts = int(assignment.max()) + 1
    nnz_per_part = np.bincount(assignment[kernel.src], minlength=n_parts).astype(float)
    ideal = kernel.n_transitions / n_parts
    imbalance = float(nnz_per_part.max() / ideal) if ideal > 0 else float("nan")
    cut = int(np.count_nonzero(assignment[kernel.src] != assignment[kernel.dst]))
    return PartitionQuality(
        n_parts=n_parts,
        nnz_per_part=nnz_per_part,
        imbalance=imbalance,
        edge_cut=cut,
        edge_cut_fraction=cut / kernel.n_transitions,
    )
