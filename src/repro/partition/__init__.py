"""State-space partitioning (the paper's stated future-work direction).

Section 6 of the paper plans to "apply specialist techniques, e.g. using
hypergraph partitioning of data structures, to achieve scalable algorithms
for systems with up to ~10^8 states".  This package provides a lightweight
version of that idea: partition the kernel's rows across workers so that each
part carries a balanced share of the non-zero transitions while cutting as
few transitions as possible between parts.  The partitioner is used by the
partitioning ablation benchmark to quantify how much better a balanced
partition is than naive contiguous or round-robin splits.
"""
from .partitioner import (
    PartitionQuality,
    contiguous_partition,
    round_robin_partition,
    greedy_balanced_partition,
    bfs_locality_partition,
    refine_partition,
    evaluate_partition,
)

__all__ = [
    "PartitionQuality",
    "contiguous_partition",
    "round_robin_partition",
    "greedy_balanced_partition",
    "bfs_locality_partition",
    "refine_partition",
    "evaluate_partition",
]
