"""semimarkov (package name ``repro``) — passage-time quantiles and transient
distributions in large semi-Markov models.

A Python reproduction of Bradley, Dingle, Harrison & Knottenbelt,
"Distributed Computation of Passage Time Quantiles and Transient State
Distributions in Large Semi-Markov Models", IPDPS 2003.

Quick start::

    import numpy as np
    from repro import SMPBuilder, PassageTimeSolver
    from repro.distributions import Erlang, Uniform

    builder = SMPBuilder()
    builder.add_transition("working", "broken", 1.0, Erlang(2.0, 3))
    builder.add_transition("broken", "working", 1.0, Uniform(1.0, 2.0))
    kernel = builder.build()

    solver = PassageTimeSolver(kernel, sources=[0], targets=[1])
    density = solver.density(np.linspace(0.1, 6.0, 60))
    p99 = solver.quantile(0.99, 0.1, 20.0)

Subpackage map (see DESIGN.md for the full inventory):

===================  ======================================================
``repro.api``            the public facade: Model -> Query -> Engine -> result
``repro.distributions``  sojourn-time distributions and transforms
``repro.laplace``        Euler / Laguerre numerical transform inversion
``repro.smp``            SMP kernel, iterative passage-time algorithm
``repro.core``           high-level solvers and result objects
``repro.petri``          semi-Markov stochastic Petri nets
``repro.dnamaca``        the DNAmaca-style specification language
``repro.models``         the voting system and other example models
``repro.simulation``     validating discrete-event simulators
``repro.distributed``    master/worker pipeline, checkpointing, scalability
``repro.partition``      state-space partitioning (future-work extension)
===================  ======================================================
"""
from .core import (
    PassageTimeJob,
    PassageTimeResult,
    PassageTimeSolver,
    TransientJob,
    TransientResult,
    TransientSolver,
)
from .smp import PassageTimeOptions, SMPBuilder, SMPKernel
from .petri import SMSPN, Transition, build_kernel, explore
from .dnamaca import load_model
from .api import Model, PassageQuery, SimulationQuery, TransientQuery

__version__ = "1.0.0"

__all__ = [
    "Model",
    "PassageQuery",
    "TransientQuery",
    "SimulationQuery",
    "PassageTimeSolver",
    "TransientSolver",
    "PassageTimeResult",
    "TransientResult",
    "PassageTimeJob",
    "TransientJob",
    "PassageTimeOptions",
    "SMPBuilder",
    "SMPKernel",
    "SMSPN",
    "Transition",
    "explore",
    "build_kernel",
    "load_model",
    "__version__",
]
