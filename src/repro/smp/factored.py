"""Distribution-factored multi-s transform engine.

Every kernel entry is ``u_pq(s) = p_pq · h*_d(s)`` where ``d`` indexes one of
a handful of *distinct* sojourn distributions (a million-edge voting kernel
carries ~10).  Grouping transitions by distribution therefore factors the
kernel into real, s-independent CSR slices

    U(s) @ x  =  Σ_d  lst_d(s) ⊙ (P_d @ x)

so one block of s-points advances through sparse products whose *data* is
streamed once per iteration — independent of how many s-points are in
flight — while the s-dependence lives in an ``(n_s, n_dists)`` table of
distribution transforms.  Peak memory is ``O(nnz + n_s·n)`` instead of the
``O(n_s·nnz)`` of the batched data materialisation.

Concretely both product shapes reduce to a *pair expansion*.  For the
row form ``v ← v @ U'(s)`` group edges by ``(distribution, source)`` pair::

    expV[(d, i), t] = v[i, t] · lst_d(s_t)          (gather + scale)
    out[j, t]       = Σ_{e=(i,j,d)} p_e · expV[(d, i), t]     (one real SpMM)

The gather/scale works on a packed real block ``(n, 2k)`` ([Re | Im]
halves), the sparse product is one real CSR×dense multiply accumulated in
C by scipy's ``csr_matvecs``, and target-absorbing ``U'`` drops the pairs
whose source is a target state (zeroing rows of ``U`` equals zeroing the
corresponding components of ``v`` before the product).  The column form
``U'(s) @ x`` groups by ``(distribution, destination)`` instead and zeroes
target rows of the *output*.

When this engine wins — and when it does not
--------------------------------------------
Per iteration the factored product streams ``O(nnz)`` sparse data plus a
dense working set proportional to ``(pairs + 2n) · n_s``; the batched
block-diagonal product streams ``O(n_s · nnz)`` complex data.  The factored
engine therefore dominates when the kernel has high fan-out relative to its
pair count (``nnz >> pairs + 2n``, e.g. service pools where every state can
hand off to many successors drawn from few distributions) and it is the
only engine whose *memory* allows very wide s-blocks on very large kernels.
On low fan-out kernels (``nnz ≈ pairs + 2n``, e.g. the voting net with
average degree ~5) the dense gather/scale touches as many bytes as the
batched product streams, so :class:`~repro.smp.passage.SPointPolicy` routes
those to the batched engine instead and bounds its block size.  See
``scripts/bench_passage.py`` for the measured crossover.
"""
from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy import sparse

__all__ = ["FactoredUEvaluator"]

try:  # scipy's C kernel accumulates `out += A @ B` without temporaries.
    from scipy.sparse import _sparsetools

    def _spmm_accumulate(matrix: sparse.csr_matrix, block: np.ndarray, out: np.ndarray) -> None:
        n_row, n_col = matrix.shape
        _sparsetools.csr_matvecs(
            n_row, n_col, block.shape[1],
            matrix.indptr, matrix.indices, matrix.data,
            block.ravel(), out.ravel(),
        )
except Exception:  # pragma: no cover - exercised only on exotic scipy builds

    def _spmm_accumulate(matrix, block, out):
        out += matrix @ block


class _RowStructure:
    """s-independent row-form expansion for one target mask.

    ``B`` maps expanded ``(dist, source)`` pairs to destination states:
    ``B[j, pair(e)] = p_e``; pairs whose source is absorbing are dropped
    (zeroing rows of ``U`` equals zeroing those components of ``v``, so the
    structure *is* the target-absorbing ``U'``).
    """

    __slots__ = ("pair_src", "pair_dist", "matrix", "n_pairs")

    def __init__(self, factored: "FactoredUEvaluator", target_mask: np.ndarray):
        pair_src, pair_dist, pair_of_edge = factored._row_pairs()
        evaluator = factored.evaluator
        probs, cols = evaluator._csr_probs, evaluator._indices
        n = factored.kernel.n_states
        keep = ~target_mask[pair_src]
        kept = np.flatnonzero(keep)
        self.pair_src = pair_src[kept]
        self.pair_dist = pair_dist[kept]
        n_pairs = kept.size
        remap = np.full(pair_src.size, -1, dtype=np.int64)
        remap[kept] = np.arange(n_pairs)
        keep_edges = keep[pair_of_edge]
        pair_column = remap[pair_of_edge[keep_edges]]
        self.n_pairs = int(n_pairs)
        self.matrix = sparse.csr_matrix(
            (probs[keep_edges], (cols[keep_edges], pair_column)), shape=(n, n_pairs)
        )
        self.matrix.sort_indices()


class _ColStructure:
    """s-independent column-form expansion (``(dist, destination)`` pairs).

    Target absorption zeroes *output rows*, so one structure serves every
    target set.
    """

    __slots__ = ("pair_dst", "pair_dist", "matrix", "n_pairs")

    def __init__(self, factored: "FactoredUEvaluator"):
        evaluator = factored.evaluator
        n = factored.kernel.n_states
        dist_index = evaluator._csr_dist_index
        dst = evaluator._indices
        keys = dist_index * np.int64(n) + dst
        unique_keys, pair_of_edge = np.unique(keys, return_inverse=True)
        self.pair_dist = (unique_keys // n).astype(np.int64)
        self.pair_dst = (unique_keys % n).astype(np.int64)
        self.n_pairs = int(unique_keys.size)
        self.matrix = sparse.csr_matrix(
            (evaluator._csr_probs, (evaluator._csr_rows, pair_of_edge)),
            shape=(n, self.n_pairs),
        )
        self.matrix.sort_indices()


class FactoredUEvaluator:
    """Distribution-factored products for a kernel's :class:`UEvaluator`.

    Obtain via :meth:`repro.smp.kernel.UEvaluator.factored`, which caches
    one instance per evaluator so the pair decompositions are paid once per
    kernel.  All structures are built lazily: constructing the object costs
    nothing until a factored product is requested.
    """

    #: how many target-mask row structures to keep (a serving workload
    #: alternates between a few measures per kernel)
    _STRUCTURE_CACHE = 4

    def __init__(self, evaluator):
        self.evaluator = evaluator
        self.kernel = evaluator.kernel
        self._row_pair_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._row_pair_count: int | None = None
        self._row_structures: "OrderedDict[bytes, _RowStructure]" = OrderedDict()
        self._col_structure: _ColStructure | None = None
        self._dist_row_sums: np.ndarray | None = None

    # -------------------------------------------------------------- identity
    @property
    def n_distributions(self) -> int:
        return self.kernel.n_distributions

    @property
    def row_pair_count(self) -> int:
        """Number of distinct ``(distribution, source)`` pairs.

        Computed without retaining the nnz-sized edge→pair mapping: the
        engine-selection policy asks this on *every* kernel, including ones
        it then routes to the batch engine, which must not pin per-edge
        arrays for an engine they never use.
        """
        if self._row_pair_count is None:
            if self._row_pair_cache is not None:
                self._row_pair_count = int(self._row_pair_cache[0].size)
            else:
                evaluator = self.evaluator
                keys = (
                    evaluator._csr_dist_index * np.int64(self.kernel.n_states)
                    + evaluator._csr_rows
                )
                self._row_pair_count = int(np.unique(keys).size)
        return self._row_pair_count

    def prewarm(self) -> None:
        """Build the target-independent structures ahead of the first solve.

        Called by the service registry for kernels the policy routes to this
        engine, so queries never pay the pair decomposition.
        """
        from repro.obs import trace as _obs_trace

        with _obs_trace.span(
            "factored-prewarm",
            n_states=int(self.kernel.n_states),
            n_distributions=int(self.n_distributions),
        ):
            self._row_pairs()
            self.dist_row_sums()

    def density_ratio(self) -> float:
        """``nnz / (pairs + 2n)`` — the fan-out measure the policy routes on.

        The factored per-iteration dense working set is proportional to
        ``pairs + 2n`` while the batched engine streams ``nnz`` complex
        entries per s-point, so this ratio approximates the per-iteration
        bandwidth advantage of the factored product.
        """
        return self.kernel.n_transitions / float(
            self.row_pair_count + 2 * self.kernel.n_states
        )

    # ----------------------------------------------------- shared structures
    def _row_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._row_pair_cache is None:
            evaluator = self.evaluator
            n = self.kernel.n_states
            keys = evaluator._csr_dist_index * np.int64(n) + evaluator._csr_rows
            unique_keys, pair_of_edge = np.unique(keys, return_inverse=True)
            self._row_pair_cache = (
                (unique_keys % n).astype(np.int64),
                (unique_keys // n).astype(np.int64),
                pair_of_edge,
            )
            self._row_pair_count = int(unique_keys.size)
        src, dist, edge = self._row_pair_cache
        return src, dist, edge

    def row_structure(self, target_mask: np.ndarray) -> _RowStructure:
        key = np.asarray(target_mask, dtype=bool).tobytes()
        hit = self._row_structures.get(key)
        if hit is not None:
            self._row_structures.move_to_end(key)
            return hit
        structure = _RowStructure(self, target_mask)
        self._row_structures[key] = structure
        while len(self._row_structures) > self._STRUCTURE_CACHE:
            self._row_structures.popitem(last=False)
        return structure

    def col_structure(self) -> _ColStructure:
        if self._col_structure is None:
            self._col_structure = _ColStructure(self)
        return self._col_structure

    def dist_row_sums(self) -> np.ndarray:
        """``R[d, i] = Σ_j p_ij`` over transitions of distribution ``d``."""
        if self._dist_row_sums is None:
            evaluator = self.evaluator
            R = np.zeros((self.n_distributions, self.kernel.n_states))
            np.add.at(
                R,
                (evaluator._csr_dist_index, evaluator._csr_rows),
                evaluator._csr_probs,
            )
            self._dist_row_sums = R
        return self._dist_row_sums

    # ------------------------------------------------------------- transforms
    def lst_grid(self, s_values) -> np.ndarray:
        """``(n_s, n_dists)`` table of distribution transforms over the grid."""
        s_values = np.asarray(s_values, dtype=complex).ravel()
        table = np.empty((s_values.size, self.n_distributions), dtype=complex)
        for d, dist in enumerate(self.kernel.distributions):
            table[:, d] = dist.lst_batch(s_values)
        return table

    def contraction(
        self, s_values, target_mask: np.ndarray | None, *, chunk: int = 65536
    ) -> np.ndarray:
        """``max_i Σ_j |u'_ij(s)|`` per s-point, without touching nnz-sized data.

        ``|u_ij(s)| = p_ij |lst_d(s)|``, so the row sums of ``|U(s)|`` are
        ``|L| @ R`` — an ``(n_s, n_dists) × (n_dists, n)`` product evaluated
        in state chunks to keep the intermediate bounded.
        """
        abs_lst = np.abs(self.lst_grid(s_values))
        R = self.dist_row_sums()
        n = self.kernel.n_states
        best = np.zeros(abs_lst.shape[0])
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            rows = abs_lst @ R[:, lo:hi]
            if target_mask is not None and target_mask[lo:hi].any():
                rows[:, target_mask[lo:hi]] = 0.0
            if rows.size:
                np.maximum(best, rows.max(axis=1), out=best)
        return best

    def sojourn_lst_batch(self, s_values) -> np.ndarray:
        """``(n_s, n_states)`` sojourn transforms ``h*_i(s) = Σ_d lst_d(s) R[d,i]``."""
        return self.lst_grid(s_values) @ self.dist_row_sums()

    def alpha_dist_matrix(self, alpha: np.ndarray) -> np.ndarray:
        """``A[d, j] = Σ_e α_src(e) p_e`` over edges of distribution ``d``.

        ``α @ U(s) = L(s,:) @ A`` — the factored form of the batched
        ``alpha_vec_matrix_batch`` start vector.
        """
        evaluator = self.evaluator
        alpha = np.asarray(alpha, dtype=complex)
        weights = alpha[evaluator._csr_rows]
        selected = np.flatnonzero(weights != 0)
        A = np.zeros((self.n_distributions, self.kernel.n_states), dtype=complex)
        np.add.at(
            A,
            (evaluator._csr_dist_index[selected], evaluator._indices[selected]),
            weights[selected] * evaluator._csr_probs[selected],
        )
        return A


# ---------------------------------------------------------------------------
# Block operators: the per-s-block stepping objects the iteration driver in
# repro.smp.passage drives.  State is a packed real block (rows, 2k) whose
# first k columns are real parts and last k imaginary parts.
# ---------------------------------------------------------------------------


def _pack(real_block: np.ndarray, imag_block: np.ndarray) -> np.ndarray:
    n, k = real_block.shape
    packed = np.empty((n, 2 * k))
    packed[:, :k] = real_block
    packed[:, k:] = imag_block
    return packed


def _scale_pairs(
    gathered: np.ndarray, d_re: np.ndarray, d_im: np.ndarray, out: np.ndarray, k: int
) -> None:
    """``out = gathered · D`` complex multiply on packed planar blocks."""
    g_re = gathered[:, :k]
    g_im = gathered[:, k:]
    np.multiply(g_re, d_re, out=out[:, :k])
    out[:, :k] -= g_im * d_im
    np.multiply(g_re, d_im, out=out[:, k:])
    out[:, k:] += g_im * d_re


class FactoredRowOperator:
    """Row-form stepper: ``v ← (v ⊙ non-target) @ U(s_t)`` for a whole block."""

    engine = "factored"

    def __init__(self, factored, s_block, target_mask, alpha):
        self.factored = factored
        self.n = factored.kernel.n_states
        self.targets = np.flatnonzero(target_mask)
        self.structure = factored.row_structure(target_mask)
        self.lst = factored.lst_grid(s_block)  # (k, D)
        self.width = int(np.asarray(s_block).size)
        self._alpha = np.asarray(alpha)
        pair_dist = self.structure.pair_dist
        self._d_re = np.ascontiguousarray(self.lst.real[:, pair_dist].T)
        self._d_im = np.ascontiguousarray(self.lst.imag[:, pair_dist].T)
        self._state: np.ndarray | None = None
        self._scratch = np.empty((self.structure.n_pairs, 2 * self.width))
        self._out = np.empty((self.n, 2 * self.width))

    def start(self) -> None:
        """``v0 = α @ U(s_t)`` for every point of the block."""
        v0 = self.lst @ self.factored.alpha_dist_matrix(self._alpha)
        self._state = _pack(
            np.ascontiguousarray(v0.real.T), np.ascontiguousarray(v0.imag.T)
        )

    def step(self) -> None:
        k = self.width
        gathered = self._state[self.structure.pair_src]
        _scale_pairs(gathered, self._d_re, self._d_im, self._scratch, k)
        self._out[:] = 0.0
        _spmm_accumulate(self.structure.matrix, self._scratch, self._out)
        self._state, self._out = self._out, self._state

    def target_totals(self) -> np.ndarray:
        sums = self._state[self.targets].sum(axis=0)
        return sums[: self.width] + 1j * sums[self.width :]

    def abs_sums(self) -> np.ndarray:
        k = self.width
        return np.hypot(self._state[:, :k], self._state[:, k:]).sum(axis=0)

    def zero_points(self, positions: np.ndarray) -> None:
        self._state[:, positions] = 0.0
        self._state[:, self.width + positions] = 0.0

    def shrink(self, live: np.ndarray) -> None:
        keep = np.flatnonzero(live)
        k = self.width
        self._state = np.ascontiguousarray(
            self._state[:, np.concatenate((keep, k + keep))]
        )
        self.lst = self.lst[keep]
        pair_dist = self.structure.pair_dist
        self._d_re = np.ascontiguousarray(self.lst.real[:, pair_dist].T)
        self._d_im = np.ascontiguousarray(self.lst.imag[:, pair_dist].T)
        self.width = keep.size
        self._scratch = np.empty((self.structure.n_pairs, 2 * self.width))
        self._out = np.empty((self.n, 2 * self.width))


class FactoredColOperator:
    """Column-form stepper: ``term ← U'(s_t) @ term`` plus accumulator."""

    engine = "factored"

    def __init__(self, factored, s_block, target_mask):
        self.factored = factored
        self.n = factored.kernel.n_states
        self.target_mask = target_mask
        self.targets = np.flatnonzero(target_mask)
        self.structure = factored.col_structure()
        self.lst = factored.lst_grid(s_block)
        self.lst_full = self.lst  # survives shrinking; indexed by block position
        self.width = int(np.asarray(s_block).size)
        pair_dist = self.structure.pair_dist
        self._d_re = np.ascontiguousarray(self.lst.real[:, pair_dist].T)
        self._d_im = np.ascontiguousarray(self.lst.imag[:, pair_dist].T)
        self._term: np.ndarray | None = None
        self._acc: np.ndarray | None = None
        self._scratch = np.empty((self.structure.n_pairs, 2 * self.width))
        self._out = np.empty((self.n, 2 * self.width))

    def start(self) -> None:
        k = self.width
        self._term = np.zeros((self.n, 2 * k))
        self._term[self.targets, :k] = 1.0
        self._acc = self._term.copy()

    def _apply(self, block: np.ndarray, d_re, d_im, width: int, *, absorbing: bool) -> None:
        gathered = block[self.structure.pair_dst]
        scratch = self._scratch[:, : 2 * width]
        _scale_pairs(gathered, d_re, d_im, scratch, width)
        out = self._out[:, : 2 * width]
        out[:] = 0.0
        _spmm_accumulate(self.structure.matrix, scratch, out)
        if absorbing:
            out[self.targets] = 0.0

    def step(self) -> None:
        self._apply(self._term, self._d_re, self._d_im, self.width, absorbing=True)
        self._term, self._out = self._out[:, : 2 * self.width], self._term
        self._acc += self._term

    def max_abs(self) -> np.ndarray:
        k = self.width
        return np.hypot(self._term[:, :k], self._term[:, k:]).max(axis=0)

    def take_acc(self, positions: np.ndarray) -> np.ndarray:
        """Accumulators of the given (current-width) columns as ``(m, n)`` complex."""
        k = self.width
        return (self._acc[:, positions] + 1j * self._acc[:, k + positions]).T.copy()

    def zero_points(self, positions: np.ndarray) -> None:
        self._term[:, positions] = 0.0
        self._term[:, self.width + positions] = 0.0

    def shrink(self, live: np.ndarray) -> None:
        keep = np.flatnonzero(live)
        k = self.width
        cols = np.concatenate((keep, k + keep))
        self._term = np.ascontiguousarray(self._term[:, cols])
        self._acc = np.ascontiguousarray(self._acc[:, cols])
        self.lst = self.lst[keep]
        pair_dist = self.structure.pair_dist
        self._d_re = np.ascontiguousarray(self.lst.real[:, pair_dist].T)
        self._d_im = np.ascontiguousarray(self.lst.imag[:, pair_dist].T)
        self.width = keep.size
        self._scratch = np.empty((self.structure.n_pairs, 2 * self.width))
        self._out = np.empty((self.n, 2 * self.width))

    def apply_u(self, rows: np.ndarray, block_positions: np.ndarray) -> np.ndarray:
        """Full (non-absorbing) ``U(s) @ acc`` for collected accumulators.

        ``rows`` is ``(m, n)`` complex; ``block_positions`` gives each row's
        position in the *original* s-block so the right transforms scale it.
        """
        if rows.size == 0:
            return rows
        m = rows.shape[0]
        block = _pack(rows.real.T, rows.imag.T)  # (n, 2m)
        lst = self.lst_full[block_positions]
        pair_dist = self.structure.pair_dist
        d_re = np.ascontiguousarray(lst.real[:, pair_dist].T)
        d_im = np.ascontiguousarray(lst.imag[:, pair_dist].T)
        gathered = block[self.structure.pair_dst]
        scratch = np.empty((self.structure.n_pairs, 2 * m))
        _scale_pairs(gathered, d_re, d_im, scratch, m)
        out = np.zeros((self.n, 2 * m))
        _spmm_accumulate(self.structure.matrix, scratch, out)
        return (out[:, :m] + 1j * out[:, m:]).T.copy()
