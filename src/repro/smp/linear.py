"""Direct linear-solve baseline for passage-time transforms (Eqs. 2–3).

The paper contrasts its iterative algorithm with the classical approach of
solving the ``N x N`` complex linear system

    L_ij(s) = sum_{k not in j} r*_ik(s) L_kj(s) + sum_{k in j} r*_ik(s)

directly.  This module implements that baseline with a sparse LU solve; it is
exact (up to solver tolerance) and serves both as the validation oracle for
the iterative method on small models and as the comparator in the
"iterative vs. direct" ablation benchmark.
"""
from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from .kernel import SMPKernel, UEvaluator

__all__ = ["passage_transform_direct"]


def passage_transform_direct(
    kernel_or_evaluator,
    targets,
    s: complex,
) -> np.ndarray:
    """Solve Eq. (3) for the full vector ``(L_{1->j}(s), ..., L_{N->j}(s))``.

    Parameters
    ----------
    kernel_or_evaluator:
        The SMP kernel or a prepared :class:`UEvaluator`.
    targets:
        Target state indices (the set ``j``).
    s:
        Complex transform argument.
    """
    if isinstance(kernel_or_evaluator, UEvaluator):
        evaluator = kernel_or_evaluator
    elif isinstance(kernel_or_evaluator, SMPKernel):
        evaluator = kernel_or_evaluator.evaluator()
    else:
        raise TypeError("expected an SMPKernel or UEvaluator")

    n = evaluator.kernel.n_states
    targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
    if targets.size == 0:
        raise ValueError("at least one target state is required")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target state index out of range")
    mask = np.zeros(n, dtype=bool)
    mask[targets] = True

    U = evaluator.u(s).tocsc()
    # Right-hand side: probability-weighted transforms of one-step entries
    # into the target set, b_i = sum_{k in j} r*_ik(s).
    b = np.asarray(U[:, targets].sum(axis=1)).ravel().astype(complex)
    # Coefficient matrix: I - U with the target *columns* removed (the system
    # only couples unknowns L_kj for k outside the target set).
    keep = sparse.diags((~mask).astype(float), format="csc")
    A = sparse.identity(n, dtype=complex, format="csc") - U @ keep
    solution = splinalg.spsolve(A, b)
    return np.asarray(solution).ravel()
