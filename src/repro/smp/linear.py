"""Direct linear-solve baseline for passage-time transforms (Eqs. 2–3).

The paper contrasts its iterative algorithm with the classical approach of
solving the ``N x N`` complex linear system

    L_ij(s) = sum_{k not in j} r*_ik(s) L_kj(s) + sum_{k in j} r*_ik(s)

directly.  This module implements that baseline with a sparse LU solve; it is
exact (up to solver tolerance) and serves both as the validation oracle for
the iterative method on small models and as the comparator in the
"iterative vs. direct" ablation benchmark.
"""
from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from .kernel import as_evaluator, target_mask

__all__ = ["passage_transform_direct", "passage_transform_direct_batch"]


def passage_transform_direct_batch(
    kernel_or_evaluator,
    targets,
    s_values,
    *,
    u_data: np.ndarray | None = None,
) -> np.ndarray:
    """Solve Eq. (3) for every s-point of a grid, sharing all symbolic set-up.

    Returns an ``(n_s, n_states)`` array whose row ``t`` is the passage-time
    vector at ``s_values[t]``.  The coefficient matrix ``A(s) = I - U(s) K``
    has the *same* sparsity pattern for every s-point and target set, so the
    CSC structure of ``A`` is assembled once per evaluator (see
    :meth:`UEvaluator.direct_solve_structure`); per s-point only the numeric
    data vector is refilled before the sparse LU factorisation.
    """
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = target_mask(n, targets)
    s_values = np.asarray(s_values, dtype=complex).ravel()
    out = np.empty((s_values.size, n), dtype=complex)
    if s_values.size == 0:
        return out

    rows_u = evaluator._csr_rows
    cols_u = evaluator._indices
    # Entries of U that land in a target column feed the right-hand side
    # b_i = sum_{k in j} r*_ik(s); the remaining entries form U K.
    tgt_entries = mask[cols_u]

    nnz_a, a_indices, a_indptr, diag_pos, u_pos = evaluator.direct_solve_structure()

    # ``u_data`` lets callers that already hold the batch's U(s) data (the
    # adaptive engine routing a subset of its grid here) skip re-evaluating
    # the distributions' transforms.  Without it the data is materialised in
    # bounded chunks so a large routed set never allocates O(n_s · nnz).
    nnz = evaluator._indices.size
    if u_data is None:
        # Fill chunks into one reused caller-owned buffer: chunk grids are
        # throwaway and must not cycle through (and pollute) the evaluator's
        # grid LRU, whose slots exist for reusable measure grids.
        chunk = min(evaluator.fill_chunk_points(), s_values.size)
        chunk_buffer = np.empty((chunk, nnz), dtype=complex)
        data_batch = None
    else:
        data_batch = np.asarray(u_data, dtype=complex)
        if data_batch.shape != (s_values.size, nnz):
            raise ValueError("u_data must have shape (n_s, nnz)")
    chunk_data = None
    chunk_lo = -1
    for t in range(s_values.size):
        if data_batch is not None:
            data = data_batch[t]
        else:
            if chunk_data is None or t >= chunk_lo + chunk:
                chunk_lo = t
                hi = min(chunk_lo + chunk, s_values.size)
                chunk_data = evaluator.u_data_batch(
                    s_values[chunk_lo:hi], out=chunk_buffer[: hi - chunk_lo]
                )
            data = chunk_data[t - chunk_lo]
        b = np.zeros(n, dtype=complex)
        b.real = np.bincount(rows_u[tgt_entries], weights=data.real[tgt_entries], minlength=n)
        b.imag = np.bincount(rows_u[tgt_entries], weights=data.imag[tgt_entries], minlength=n)
        a_data = np.zeros(nnz_a, dtype=complex)
        a_data[diag_pos] = 1.0
        kept = data.copy()
        kept[tgt_entries] = 0.0
        # u_pos has no internal duplicates (the kernel rejects parallel
        # transitions), so plain fancy-index subtraction is safe.
        a_data[u_pos] -= kept
        A = sparse.csc_matrix((a_data, a_indices, a_indptr), shape=(n, n))
        lu = splinalg.splu(A)
        out[t] = lu.solve(b)
    return out


def passage_transform_direct(
    kernel_or_evaluator,
    targets,
    s: complex,
) -> np.ndarray:
    """Solve Eq. (3) for the full vector ``(L_{1->j}(s), ..., L_{N->j}(s))``.

    Parameters
    ----------
    kernel_or_evaluator:
        The SMP kernel or a prepared :class:`UEvaluator`.
    targets:
        Target state indices (the set ``j``).
    s:
        Complex transform argument.
    """
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = target_mask(n, targets)
    targets = np.flatnonzero(mask)

    U = evaluator.u(s).tocsc()
    # Right-hand side: probability-weighted transforms of one-step entries
    # into the target set, b_i = sum_{k in j} r*_ik(s).
    b = np.asarray(U[:, targets].sum(axis=1)).ravel().astype(complex)
    # Coefficient matrix: I - U with the target *columns* removed (the system
    # only couples unknowns L_kj for k outside the target set).
    keep = sparse.diags((~mask).astype(float), format="csc")
    A = sparse.identity(n, dtype=complex, format="csc") - U @ keep
    solution = splinalg.spsolve(A, b)
    return np.asarray(solution).ravel()
