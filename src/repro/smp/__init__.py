"""Semi-Markov process kernel, steady-state and passage-time machinery.

This package is the numerical heart of the reproduction:

* :class:`SMPKernel` / :class:`SMPBuilder` — sparse representation of the
  kernel ``R(i, j, t) = p_ij H_ij(t)`` and assembly of the complex matrices
  ``U(s)`` and ``U'(s)`` used by the iterative algorithm,
* :mod:`repro.smp.embedded` — steady state of the embedded DTMC (the
  ``alpha`` weights of Eq. 5),
* :mod:`repro.smp.passage` — the paper's iterative passage-time algorithm
  (Eqs. 8–11),
* :mod:`repro.smp.linear` — the classical direct linear solve (Eqs. 2–3),
  used as a validation baseline,
* :mod:`repro.smp.transient` — transient state distributions via Pyke's
  relations (Eqs. 6–7),
* :mod:`repro.smp.steady` — long-run SMP state probabilities (the t -> inf
  reference line of Fig. 7).
"""
from .kernel import SMPKernel, UEvaluator, kernel_content_digest
from .factored import FactoredUEvaluator
from .plane import AttachedPlane, KernelPlane, PlaneHandle, PlaneStore
from .builder import SMPBuilder
from .embedded import dtmc_steady_state, source_weights
from .steady import smp_steady_state, steady_state_probability
from .passage import (
    PassageTimeOptions,
    SPointPolicy,
    passage_transform,
    passage_transform_batch,
    passage_transform_vector,
    passage_transform_vector_batch,
    ConvergenceDiagnostics,
)
from .linear import passage_transform_direct, passage_transform_direct_batch
from .transient import transient_transform, transient_transform_batch, sojourn_lsts

__all__ = [
    "SMPKernel",
    "UEvaluator",
    "kernel_content_digest",
    "FactoredUEvaluator",
    "AttachedPlane",
    "KernelPlane",
    "PlaneHandle",
    "PlaneStore",
    "SMPBuilder",
    "dtmc_steady_state",
    "source_weights",
    "smp_steady_state",
    "steady_state_probability",
    "PassageTimeOptions",
    "SPointPolicy",
    "passage_transform",
    "passage_transform_batch",
    "passage_transform_vector",
    "passage_transform_vector_batch",
    "ConvergenceDiagnostics",
    "passage_transform_direct",
    "passage_transform_direct_batch",
    "transient_transform",
    "transient_transform_batch",
    "sojourn_lsts",
]
