"""Steady state of the embedded DTMC and the multi-source weights of Eq. (5)."""
from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from ..utils.validation import require
from .kernel import SMPKernel

__all__ = ["dtmc_steady_state", "source_weights"]


def dtmc_steady_state(
    P: sparse.spmatrix,
    *,
    method: str = "auto",
    tol: float = 1e-12,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Stationary distribution ``pi = pi P`` of an irreducible DTMC.

    Parameters
    ----------
    P:
        Sparse row-stochastic matrix.
    method:
        ``"direct"`` (sparse LU on the normal equations — exact, suitable up
        to a few thousand states), ``"power"`` (damped power iteration —
        memory-light, suitable for very large chains) or ``"auto"``.
    """
    P = sparse.csr_matrix(P)
    n = P.shape[0]
    require(P.shape[0] == P.shape[1], "P must be square")
    row_sums = np.asarray(P.sum(axis=1)).ravel()
    if np.any(np.abs(row_sums - 1.0) > 1e-8):
        raise ValueError("P must be row-stochastic")

    if method == "auto":
        method = "direct" if n <= 2000 else "power"

    if method == "direct":
        # Solve (P^T - I) pi = 0 with the last equation replaced by sum(pi) = 1.
        A = (P.T - sparse.identity(n, format="csc")).tolil()
        A[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        pi = splinalg.spsolve(sparse.csc_matrix(A), b)
        pi = np.maximum(pi.real, 0.0)
        total = pi.sum()
        if total <= 0:
            raise np.linalg.LinAlgError("direct steady-state solve failed")
        return pi / total

    if method == "power":
        # Damped iteration pi <- pi (P + I)/2 has the same fixed point but is
        # aperiodic by construction, so it converges for periodic chains too.
        pi = np.full(n, 1.0 / n)
        for _ in range(max_iterations):
            new = 0.5 * (pi @ P + pi)
            new = np.asarray(new).ravel()
            new /= new.sum()
            if np.max(np.abs(new - pi)) < tol:
                return new
            pi = new
        raise RuntimeError(
            f"power iteration did not converge within {max_iterations} iterations"
        )

    raise ValueError(f"unknown method {method!r}; expected 'auto', 'direct' or 'power'")


def source_weights(
    kernel: SMPKernel,
    sources,
    *,
    steady_state: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """The ``alpha`` vector of Eq. (5): steady-state weights over the source set.

    For a single source state this is simply the corresponding unit vector.
    For multiple sources the embedded DTMC's stationary probabilities,
    restricted to the source set and renormalised, are used — the probability
    that the passage starts in each particular source state at equilibrium.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size == 0:
        raise ValueError("at least one source state is required")
    if sources.min() < 0 or sources.max() >= kernel.n_states:
        raise ValueError("source state index out of range")
    if np.unique(sources).size != sources.size:
        raise ValueError("duplicate source states")

    alpha = np.zeros(kernel.n_states)
    if sources.size == 1:
        alpha[sources[0]] = 1.0
        return alpha

    if steady_state is None:
        steady_state = dtmc_steady_state(kernel.embedded_matrix(), method=method)
    restricted = steady_state[sources]
    total = restricted.sum()
    if total <= 0:
        raise ValueError("the source states have zero steady-state probability")
    alpha[sources] = restricted / total
    return alpha
