"""Transient state distributions from passage-time quantities (Eqs. 6–7).

Pyke's relations connect the transform of the transient probability
``T_ij(t) = P(Z(t) = j | Z(0) = i)`` to first-passage and cycle-time
transforms:

    T*_ii(s) = (1/s) (1 - h*_i(s)) / (1 - L_ii(s))
    T*_ij(s) = L_ij(s) T*_jj(s)                       (i != j)

For a set of target states ``j`` (Eq. 7) this needs, per s-point, one
passage-time vector computation per target state — each yields both
``L_ik(s)`` for every source ``i`` and the cycle transform ``L_kk(s)``.
"""
from __future__ import annotations

import numpy as np

from .kernel import SMPKernel, UEvaluator
from .linear import passage_transform_direct
from .passage import PassageTimeOptions, passage_transform_vector

__all__ = ["transient_transform", "sojourn_lsts"]


def sojourn_lsts(kernel_or_evaluator, s: complex) -> np.ndarray:
    """Per-state sojourn-time transforms ``h*_i(s) = sum_j r*_ij(s)``."""
    if isinstance(kernel_or_evaluator, UEvaluator):
        evaluator = kernel_or_evaluator
    elif isinstance(kernel_or_evaluator, SMPKernel):
        evaluator = kernel_or_evaluator.evaluator()
    else:
        raise TypeError("expected an SMPKernel or UEvaluator")
    return evaluator.sojourn_lst(s)


def transient_transform(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
    *,
    solver: str = "iterative",
) -> complex:
    """Evaluate ``T*_{i -> j}(s)``, the transform of ``P(Z(t) in j)``.

    Parameters
    ----------
    alpha:
        Initial-state weighting (Eq. 5); a unit vector for a single source.
    targets:
        Target state set ``j``.
    solver:
        ``"iterative"`` uses the paper's algorithm for the per-target
        passage-time vectors, ``"direct"`` uses the sparse linear solve.
    """
    if isinstance(kernel_or_evaluator, UEvaluator):
        evaluator = kernel_or_evaluator
    elif isinstance(kernel_or_evaluator, SMPKernel):
        evaluator = kernel_or_evaluator.evaluator()
    else:
        raise TypeError("expected an SMPKernel or UEvaluator")
    if solver not in ("iterative", "direct"):
        raise ValueError("solver must be 'iterative' or 'direct'")

    s = complex(s)
    if s == 0:
        raise ValueError("the transient transform has a pole at s = 0; use Re(s) > 0")

    n = evaluator.kernel.n_states
    alpha = np.asarray(alpha, dtype=complex)
    if alpha.shape != (n,):
        raise ValueError("alpha must have one weight per state")
    if abs(alpha.sum() - 1.0) > 1e-6:
        raise ValueError("alpha must sum to 1")

    targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
    if targets.size == 0:
        raise ValueError("at least one target state is required")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target state index out of range")

    h = evaluator.sojourn_lst(s)

    source_states = np.where(np.abs(alpha) > 0)[0]
    total = 0.0 + 0.0j
    for k in targets:
        if solver == "iterative":
            l_vec, _ = passage_transform_vector(evaluator, [k], s, options)
        else:
            l_vec = passage_transform_direct(evaluator, [k], s)
        lam_k = (1.0 - h[k]) / (1.0 - l_vec[k])
        # Contribution of target k to each source i:
        #   i == k : Lambda_k (the system is still in its first sojourn at k,
        #            or has returned) — the delta term of Eq. (7),
        #   i != k : Lambda_k * L_ik(s).
        for i in source_states:
            if i == k:
                total += alpha[i] * lam_k
            else:
                total += alpha[i] * lam_k * l_vec[i]
    return complex(total / s)
