"""Transient state distributions from passage-time quantities (Eqs. 6–7).

Pyke's relations connect the transform of the transient probability
``T_ij(t) = P(Z(t) = j | Z(0) = i)`` to first-passage and cycle-time
transforms:

    T*_ii(s) = (1/s) (1 - h*_i(s)) / (1 - L_ii(s))
    T*_ij(s) = L_ij(s) T*_jj(s)                       (i != j)

For a set of target states ``j`` (Eq. 7) this needs, per s-point, one
passage-time vector computation per target state — each yields both
``L_ik(s)`` for every source ``i`` and the cycle transform ``L_kk(s)``.
"""
from __future__ import annotations

import time

import numpy as np

from .kernel import as_evaluator
from .linear import passage_transform_direct, passage_transform_direct_batch
from .passage import (
    ConvergenceDiagnostics,
    PassageTimeOptions,
    SPointPolicy,
    _check_alpha,
    _note_block,
    passage_transform_vector,
    passage_transform_vector_batch,
)

__all__ = ["transient_transform", "transient_transform_batch", "sojourn_lsts"]


def sojourn_lsts(kernel_or_evaluator, s: complex) -> np.ndarray:
    """Per-state sojourn-time transforms ``h*_i(s) = sum_j r*_ij(s)``."""
    evaluator = as_evaluator(kernel_or_evaluator)
    return evaluator.sojourn_lst(s)


def transient_transform(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
    *,
    solver: str = "iterative",
) -> complex:
    """Evaluate ``T*_{i -> j}(s)``, the transform of ``P(Z(t) in j)``.

    Parameters
    ----------
    alpha:
        Initial-state weighting (Eq. 5); a unit vector for a single source.
    targets:
        Target state set ``j``.
    solver:
        ``"iterative"`` uses the paper's algorithm for the per-target
        passage-time vectors, ``"direct"`` uses the sparse linear solve.
    """
    evaluator = as_evaluator(kernel_or_evaluator)
    if solver not in ("iterative", "direct"):
        raise ValueError("solver must be 'iterative' or 'direct'")

    s = complex(s)
    if s == 0:
        raise ValueError("the transient transform has a pole at s = 0; use Re(s) > 0")

    n = evaluator.kernel.n_states
    alpha = _check_alpha(alpha, n)

    targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
    if targets.size == 0:
        raise ValueError("at least one target state is required")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target state index out of range")

    h = evaluator.sojourn_lst(s)

    source_states = np.where(np.abs(alpha) > 0)[0]
    total = 0.0 + 0.0j
    for k in targets:
        if solver == "iterative":
            l_vec, _ = passage_transform_vector(evaluator, [k], s, options)
        else:
            l_vec = passage_transform_direct(evaluator, [k], s)
        lam_k = (1.0 - h[k]) / (1.0 - l_vec[k])
        # Contribution of target k to each source i:
        #   i == k : Lambda_k (the system is still in its first sojourn at k,
        #            or has returned) — the delta term of Eq. (7),
        #   i != k : Lambda_k * L_ik(s).
        for i in source_states:
            if i == k:
                total += alpha[i] * lam_k
            else:
                total += alpha[i] * lam_k * l_vec[i]
    return complex(total / s)


def transient_transform_batch(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s_values,
    options: PassageTimeOptions | None = None,
    *,
    solver: str = "iterative",
    policy: SPointPolicy | None = None,
    report: dict | None = None,
) -> tuple[np.ndarray, list[ConvergenceDiagnostics]]:
    """Evaluate ``T*_{i->j}(s)`` at every point of an s-grid in one sweep.

    Batched counterpart of :func:`transient_transform`: the per-target
    passage-time vectors of Eq. (7) are computed with
    :func:`passage_transform_vector_batch` (or the batched direct solve), so
    the sojourn transforms and each iteration's sparse products are shared by
    the whole grid.  The s-grid is processed in memory-bounded blocks
    (outermost, so every target of a block reuses its cached transform
    data).  Returns the values plus one aggregated
    :class:`ConvergenceDiagnostics` per s-point (matvec counts summed over
    the target states, used by backends to apportion wall-clock time).
    """
    evaluator = as_evaluator(kernel_or_evaluator)
    if solver not in ("iterative", "direct"):
        raise ValueError("solver must be 'iterative' or 'direct'")

    s_values = np.asarray(s_values, dtype=complex).ravel()
    if np.any(s_values == 0):
        raise ValueError("the transient transform has a pole at s = 0; use Re(s) > 0")

    n = evaluator.kernel.n_states
    alpha = _check_alpha(alpha, n)

    targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
    if targets.size == 0:
        raise ValueError("at least one target state is required")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target state index out of range")

    n_s = s_values.size
    if n_s == 0:
        return np.empty(0, dtype=complex), []

    policy = policy or SPointPolicy()
    engine = policy.resolve_engine(evaluator)
    if report is not None:
        report["engine"] = engine
        report.setdefault("blocks", [])
    # The explicit direct solver materialises O(block · nnz) data whatever
    # engine the policy resolved, so its blocks must use the batch sizing —
    # factored-sized blocks would blow the memory budget on dense kernels.
    sizing_engine = "batch" if solver == "direct" else engine
    block = policy.block_points(evaluator, sizing_engine, vector=True)

    source_states = np.where(np.abs(alpha) > 0)[0]
    weights = alpha[source_states]

    values = np.empty(n_s, dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s
    for lo in range(0, n_s, block):
        hi = min(lo + block, n_s)
        started = time.perf_counter()
        s_block = s_values[lo:hi]
        if engine == "factored":
            h = evaluator.factored().sojourn_lst_batch(s_block)
        else:
            h = evaluator.sojourn_lst_batch(s_block)

        totals = np.zeros(hi - lo, dtype=complex)
        matvec_totals = np.zeros(hi - lo, dtype=np.int64)
        direct_totals = np.zeros(hi - lo, dtype=np.int64)
        iterations_max = np.zeros(hi - lo, dtype=np.int64)
        converged_all = np.ones(hi - lo, dtype=bool)
        for k in targets:
            if solver == "direct":
                l_mat = passage_transform_direct_batch(
                    evaluator, [k], s_block, u_data=evaluator.u_data_batch(s_block)
                )
                target_diags: list[ConvergenceDiagnostics] | None = None
                direct_totals += 1
            else:
                l_mat, target_diags = passage_transform_vector_batch(
                    evaluator, [k], s_block, options, policy=policy
                )
            lam = (1.0 - h[:, k]) / (1.0 - l_mat[:, k])
            l_src = l_mat[:, source_states].copy()
            k_pos = np.flatnonzero(source_states == k)
            if k_pos.size:
                # The delta term of Eq. (7): a source equal to the target
                # contributes Lambda_k itself rather than Lambda_k L_kk(s).
                l_src[:, k_pos[0]] = 1.0
            totals += lam * (l_src @ weights)
            if target_diags is not None:
                for t, diag in enumerate(target_diags):
                    matvec_totals[t] += diag.matvec_count
                    direct_totals[t] += diag.direct_solves
                    iterations_max[t] = max(iterations_max[t], diag.iterations)
                    converged_all[t] &= diag.converged

        values[lo:hi] = totals / s_block
        block_diags = [
            ConvergenceDiagnostics(
                iterations=int(iterations_max[t]),
                converged=bool(converged_all[t]),
                final_delta=0.0,
                matvec_count=int(matvec_totals[t]),
                solver="direct" if direct_totals[t] and matvec_totals[t] == 0 else "iterative",
                direct_solves=int(direct_totals[t]),
                engine=engine,
            )
            for t in range(hi - lo)
        ]
        diags[lo:hi] = block_diags
        _note_block(
            report, points=hi - lo, seconds=time.perf_counter() - started,
            diags=block_diags,
        )
    return values, diags  # type: ignore[return-value]
