"""The iterative passage-time algorithm of Section 3 of the paper.

For a fixed transform argument ``s`` the first-passage-time transform from a
weighted set of source states into a target set ``j`` is the limit of the
r-transition quantities

    L^(r)(s) = (alpha U + alpha U U' + ... + alpha U U'^(r-1)) e        (Eq. 10)

where ``U`` has entries ``r*_pq(s)``, ``U'`` equals ``U`` with the target
states made absorbing and ``e`` indicates the target states.  The sum is
evaluated with sparse vector–matrix products and truncated once successive
terms fall below a tolerance in both real and imaginary parts (Eq. 11) —
``O(N^2 r)`` work in the worst case versus the ``O(N^3)`` of a direct solve.

Two shapes of the computation are provided:

* :func:`passage_transform` — the scalar ``alpha``-weighted transform
  (row-vector accumulation; what the passage-time pipeline evaluates at each
  s-point),
* :func:`passage_transform_vector` — the full vector ``(L_1j(s), ..., L_Nj(s))``
  for *every* source state (column-vector accumulation; what the transient
  computation of Eq. (7) needs, one run per target state).

Batched evaluation
------------------
The batched entry points advance *all* s-points of an inversion grid through
one truncated sum, with a per-point active-set mask dropping converged points.
The grid is processed in **blocks** sized by :meth:`SPointPolicy.block_points`
so the per-block working set respects a configurable memory budget — a
165-point Euler grid streams through a million-state kernel instead of
materialising an ``O(n_s · nnz)`` data matrix.  Within a block, one of two
engines applies ``U'(s)`` to every live point per iteration:

* ``batch`` — per-s-point complex CSR data (either one block-diagonal sparse
  product for the whole block, or one sparse matvec per point once the
  block's state no longer fits cache),
* ``factored`` — the distribution-factored product of
  :mod:`repro.smp.factored`, whose per-iteration sparse work is independent
  of the number of points in flight.

Both engines run the *same* truncation rule through one shared driver, so
they agree with the scalar functions to float associativity; the
:class:`SPointPolicy` picks the engine, routes hard (small ``|s|``) points to
the sparse-LU direct solve and bounds block sizes.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace

from .kernel import as_evaluator, target_mask

__all__ = [
    "PassageTimeOptions",
    "ConvergenceDiagnostics",
    "SPointPolicy",
    "passage_transform",
    "passage_transform_vector",
    "passage_transform_batch",
    "passage_transform_vector_batch",
]


@dataclass(frozen=True)
class PassageTimeOptions:
    """Truncation controls for the iterative sum.

    Attributes
    ----------
    epsilon:
        Convergence threshold applied separately to the real and imaginary
        part of the change between successive iterates (Eq. 11).
    max_iterations:
        Hard cap on the number of transitions ``r``; exceeding it marks the
        result as unconverged rather than raising, so long-running sweeps can
        report partial diagnostics.
    consecutive:
        Number of consecutive below-threshold steps required before the sum
        is declared converged (guards against coincidentally tiny terms).
    """

    epsilon: float = 1e-8
    max_iterations: int = 100_000
    consecutive: int = 2

    def __post_init__(self):
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")


@dataclass
class ConvergenceDiagnostics:
    """Outcome of one truncated iterative sum."""

    iterations: int
    converged: bool
    final_delta: float
    matvec_count: int = field(default=0)
    #: which solver produced the value: "iterative", "direct" (policy-routed)
    #: or "direct-fallback" (iterative hit the cap and was re-solved exactly)
    solver: str = field(default="iterative")
    #: number of sparse-LU solves spent on this value (fallback points keep
    #: their matvec_count too — they paid for both)
    direct_solves: int = field(default=0)
    #: which evaluation engine advanced the iterative sum ("batch" or
    #: "factored"; direct-routed points keep the block's engine label)
    engine: str = field(default="batch")

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.converged


@dataclass(frozen=True)
class SPointPolicy:
    """Evaluation policy: engine choice, memory budget and per-point routing.

    The iterative algorithm's per-step contraction is bounded by the maximum
    row sum ``rho(s)`` of ``|U'(s)|``, which tends to one as ``s -> 0`` — the
    rare-event regime of Fig. 6, where a single s-point can need thousands of
    matvecs.  Since the first term of the sum has 1-norm at most one, reaching
    the truncation threshold ``epsilon`` needs roughly
    ``log(epsilon) / log(rho)`` transitions; points whose prediction exceeds
    ``predicted_iteration_limit`` are handed to the direct solver instead,
    where they cost one LU factorisation regardless of ``|s|`` (and come back
    exact rather than truncated).

    Attributes
    ----------
    predicted_iteration_limit:
        Predicted-iteration count above which an s-point is routed to the
        direct solver.  Set to a huge value to force the pure iterative path.
    fallback_to_direct:
        Re-solve directly any point that the iterative sum fails to converge
        within ``max_iterations`` (rather than returning a truncated value).
    engine:
        ``"auto"`` picks per kernel (see :meth:`resolve_engine`); ``"batch"``
        or ``"factored"`` force one engine.
    max_block_bytes:
        Memory budget for one s-block's working set; the s-grid is processed
        in blocks of :meth:`block_points` points.
    factored_density_ratio:
        ``auto`` picks the factored engine when the kernel's fan-out measure
        ``nnz / (pairs + 2n)`` is at least this (see
        :meth:`FactoredUEvaluator.density_ratio
        <repro.smp.factored.FactoredUEvaluator.density_ratio>`).
    factored_max_distributions:
        ``auto`` never factors kernels with more distinct distributions than
        this (the per-distribution slices stop paying for themselves).
    direct_max_states:
        Kernels larger than this never route points to the sparse-LU solver
        (fill-in makes million-state factorisations slower than very long
        iterative sums); unconverged points then come back truncated with
        ``converged=False`` instead of falling back.
    blockdiag_max_bytes:
        The batch engine applies one block-diagonal product for the whole
        block while the block's state fits in roughly this many bytes;
        beyond it the per-point state no longer caches and one sparse matvec
        per point (a much smaller random-access window) is faster.
    watchdog_floor_seconds / watchdog_multiplier:
        Hung-worker detection for dispatched s-blocks: a block running longer
        than ``max(floor, multiplier * longest observed block)`` is declared
        hung, its pool is torn down and the unfinished blocks are
        resubmitted.  ``multiplier <= 0`` disables the watchdog.  These (and
        ``poison_after``) tune failure handling, not the arithmetic — they
        are excluded from ``repr`` so job digests (and therefore on-disk
        checkpoints) are insensitive to them.
    poison_after:
        A block implicated in this many consecutive pool breaks is declared
        poisonous and the run fails fast with a structured error naming it,
        instead of burning every retry on a deterministic crasher.
    """

    predicted_iteration_limit: int = 2000
    fallback_to_direct: bool = True
    engine: str = "auto"
    max_block_bytes: int = 1 << 30
    factored_density_ratio: float = 3.0
    factored_max_distributions: int = 64
    direct_max_states: int = 200_000
    blockdiag_max_bytes: int = 64 << 20
    watchdog_floor_seconds: float = field(default=30.0, repr=False)
    watchdog_multiplier: float = field(default=8.0, repr=False)
    poison_after: int = field(default=3, repr=False)

    def __post_init__(self):
        if self.predicted_iteration_limit < 1:
            raise ValueError("predicted_iteration_limit must be >= 1")
        if self.engine not in ("auto", "batch", "factored"):
            raise ValueError("engine must be 'auto', 'batch' or 'factored'")
        if self.max_block_bytes < 1 << 20:
            raise ValueError("max_block_bytes must be at least 1 MiB")
        if self.factored_density_ratio <= 0:
            raise ValueError("factored_density_ratio must be > 0")
        if self.factored_max_distributions < 1:
            raise ValueError("factored_max_distributions must be >= 1")
        if self.direct_max_states < 1:
            raise ValueError("direct_max_states must be >= 1")
        if self.blockdiag_max_bytes < 0:
            raise ValueError("blockdiag_max_bytes must be >= 0")
        if self.watchdog_floor_seconds <= 0:
            raise ValueError("watchdog_floor_seconds must be > 0")
        if self.poison_after < 1:
            raise ValueError("poison_after must be >= 1")

    # ------------------------------------------------------------- routing
    def predicted_iterations(self, epsilon: float, contraction: np.ndarray) -> np.ndarray:
        """Estimated iterations to reach ``epsilon`` given per-s contractions."""
        contraction = np.minimum(np.asarray(contraction, dtype=float), 1.0 - 1e-15)
        with np.errstate(divide="ignore"):
            log_rho = np.log(contraction)
        return np.where(log_rho < 0.0, np.log(epsilon) / log_rho, np.inf)

    def route_direct(self, epsilon: float, contraction: np.ndarray) -> np.ndarray:
        """Boolean mask of s-points that should use the direct solver."""
        return self.predicted_iterations(epsilon, contraction) > self.predicted_iteration_limit

    def allow_direct(self, evaluator) -> bool:
        """Whether the sparse-LU solver is on the table for this kernel."""
        return evaluator.kernel.n_states <= self.direct_max_states

    # -------------------------------------------------------------- engines
    def resolve_engine(self, evaluator) -> str:
        """The evaluation engine a batched solve on this kernel will use."""
        if self.engine != "auto":
            return self.engine
        kernel = evaluator.kernel
        if kernel.n_distributions > self.factored_max_distributions:
            return "batch"
        if evaluator.factored().density_ratio() >= self.factored_density_ratio:
            return "factored"
        return "batch"

    def block_points(self, evaluator, engine: str, *, vector: bool = False) -> int:
        """s-points per block so the block working set fits the budget.

        ``batch`` blocks materialise ``O(block · nnz)`` complex data (the
        ``U``/``U'`` data, their magnitudes and the iteration operator);
        ``factored`` blocks hold ``O(block · (pairs + n))`` dense state and
        never touch per-edge data.  ``vector`` adds the per-point
        accumulator of the column form.
        """
        kernel = evaluator.kernel
        if engine == "factored":
            pairs = evaluator.factored().row_pair_count
            per_point = 16 * (3 * pairs + (4 if vector else 3) * kernel.n_states)
        else:
            per_point = 64 * kernel.n_transitions + (
                48 * kernel.n_states if vector else 0
            )
        return max(1, int(self.max_block_bytes // max(per_point, 1)))

    def dispatch_block_points(
        self,
        evaluator,
        engine: str,
        n_points: int,
        workers: int,
        *,
        vector: bool = False,
    ) -> int:
        """s-points per *dispatched* block when farming a grid out to workers.

        The single code path for every parallel backend: the memory-budgeted
        :meth:`block_points` bound (a worker solves its block in one sweep),
        additionally capped so each worker sees several blocks — small grids
        still spread across the pool, and stragglers can be rebalanced.
        """
        workers = max(1, int(workers))
        spread_cap = max(1, -(-int(n_points) // (4 * workers)))
        return max(1, min(self.block_points(evaluator, engine, vector=vector),
                          spread_cap))


def passage_transform(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
) -> tuple[complex, ConvergenceDiagnostics]:
    """Evaluate ``L_{i->j}(s)`` for an ``alpha``-weighted source distribution.

    Parameters
    ----------
    kernel_or_evaluator:
        The SMP kernel (or a pre-built :class:`UEvaluator` when evaluating
        many s-points against the same kernel).
    alpha:
        Source weighting vector of Eq. (5); must sum to one.
    targets:
        Target state indices (the set ``j`` of the paper).
    s:
        Complex transform argument with ``Re(s) >= 0``.
    """
    options = options or PassageTimeOptions()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    alpha = _check_alpha(alpha, n)
    mask = target_mask(n, targets)
    e = mask.astype(complex)

    U = evaluator.u(s)
    U_prime = evaluator.u_prime(s, mask)

    # Row accumulation: v_0 = alpha U,  v_{k+1} = v_k U',  L = sum_k v_k . e
    #
    # Convergence is judged on ||v_k||_1 rather than on the added term
    # |v_k . e| of Eq. (11): the row sums of |U'| never exceed one, so
    # ||v||_1 is monotonically non-increasing and bounds *every* future term.
    # This strengthens the paper's test — a structurally periodic model can
    # produce exactly-zero terms at some transition counts (no path of that
    # length reaches the target), which would otherwise trigger a premature
    # stop even though later terms are still significant.
    v = alpha @ U
    total = complex(v @ e)
    matvecs = 1
    below = 0
    delta = float(np.sum(np.abs(v)))
    for iteration in range(1, options.max_iterations + 1):
        v = v @ U_prime
        matvecs += 1
        total += complex(v @ e)
        delta = float(np.sum(np.abs(v)))
        if delta < options.epsilon:
            below += 1
            if below >= options.consecutive:
                return total, ConvergenceDiagnostics(
                    iterations=iteration,
                    converged=True,
                    final_delta=delta,
                    matvec_count=matvecs,
                )
        else:
            below = 0
    return total, ConvergenceDiagnostics(
        iterations=options.max_iterations,
        converged=False,
        final_delta=delta,
        matvec_count=matvecs,
    )


def passage_transform_vector(
    kernel_or_evaluator,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
) -> tuple[np.ndarray, ConvergenceDiagnostics]:
    """Evaluate the vector ``(L_{1->j}(s), ..., L_{N->j}(s))`` for every source.

    This is the column-vector form of Eq. (9): the accumulator
    ``acc_r = sum_{k=0}^{r-1} U'^k e`` is built by repeated sparse
    matrix–vector products and the result is ``U acc_r``.  Because the row
    sums of ``|U|`` never exceed one for ``Re(s) >= 0``, the change in the
    result is bounded by the infinity norm of the current term, which is what
    the convergence test monitors.
    """
    options = options or PassageTimeOptions()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = target_mask(n, targets)
    e = mask.astype(complex)

    U = evaluator.u(s)
    U_prime = evaluator.u_prime(s, mask)

    term = e.copy()
    acc = e.copy()
    matvecs = 0
    below = 0
    converged = False
    iterations = 0
    for iteration in range(1, options.max_iterations + 1):
        iterations = iteration
        term = U_prime @ term
        matvecs += 1
        acc += term
        delta = float(np.max(np.abs(term))) if term.size else 0.0
        if delta < options.epsilon:
            below += 1
            if below >= options.consecutive:
                converged = True
                break
        else:
            below = 0
    result = U @ acc
    matvecs += 1
    return np.asarray(result).ravel(), ConvergenceDiagnostics(
        iterations=iterations,
        converged=converged,
        final_delta=float(np.max(np.abs(term))),
        matvec_count=matvecs,
    )


# ---------------------------------------------------------------------------
# Batched evaluation: blocked s-grid, engine-agnostic iteration drivers.
# ---------------------------------------------------------------------------


def _check_alpha(alpha, n: int) -> np.ndarray:
    alpha = np.asarray(alpha, dtype=complex)
    if alpha.shape != (n,):
        raise ValueError("alpha must have one weight per state")
    if abs(alpha.sum() - 1.0) > 1e-6:
        raise ValueError("alpha must sum to 1")
    return alpha


class _BatchRowOperator:
    """Row-form stepper on per-s-point complex CSR data.

    While the block's live state (``live_points × n`` complex) fits in
    roughly ``blockdiag_max_bytes`` the whole block advances through one
    block-diagonal sparse product (amortising the per-matvec Python cost);
    beyond that each point advances through its own sparse matvec, whose
    random-access window is a single ``n``-vector.
    """

    engine = "batch"

    def __init__(self, evaluator, s_block, mask, alpha, u_data, up_data, policy):
        self.evaluator = evaluator
        self.n = evaluator.kernel.n_states
        self._targets = np.flatnonzero(mask)
        self._alpha = alpha
        self._u_data = u_data
        self._up = up_data
        self.width = int(np.asarray(s_block).size)
        self._live = np.ones(self.width, dtype=bool)
        self._blockdiag_max = policy.blockdiag_max_bytes
        self._operator = None
        self._per_point = None

    def _ensure_operator(self) -> None:
        if self._operator is not None or self._per_point is not None:
            return
        if self.width * self.n * 16 <= self._blockdiag_max:
            self._operator = self.evaluator.block_diag_matrix(self._up, transpose=True)
        else:
            indptr, indices = self.evaluator._indptr, self.evaluator._indices
            shape = (self.n, self.n)
            # csr(data_t).T is a CSC view sharing the data row: one matvec
            # computes v @ U'(s_t) without building a transposed structure.
            self._per_point = [
                sparse.csr_matrix((self._up[t], indices, indptr), shape=shape).T
                for t in range(self.width)
            ]

    def start(self) -> None:
        self.V = self.evaluator.alpha_vec_matrix_batch(self._alpha, self._u_data)

    def step(self) -> None:
        self._ensure_operator()
        if self._operator is not None:
            self.V = (self._operator @ self.V.ravel()).reshape(self.width, self.n)
        else:
            # Converged points are exactly zero: skip their matvecs.
            for t in np.flatnonzero(self._live):
                self.V[t] = self._per_point[t] @ self.V[t]

    def target_totals(self) -> np.ndarray:
        return self.V[:, self._targets].sum(axis=1)

    def abs_sums(self) -> np.ndarray:
        return np.abs(self.V).sum(axis=1)

    def zero_points(self, positions: np.ndarray) -> None:
        self.V[positions] = 0.0
        self._live[positions] = False

    def shrink(self, live: np.ndarray) -> None:
        self._up = self._up[live]
        self.V = self.V[live]
        self.width = int(live.sum())
        self._live = np.ones(self.width, dtype=bool)
        self._operator = None
        self._per_point = None


class _BatchColOperator:
    """Column-form stepper on per-s-point complex CSR data."""

    engine = "batch"

    def __init__(self, evaluator, s_block, mask, u_data, up_data, policy):
        self.evaluator = evaluator
        self.n = evaluator.kernel.n_states
        self.e = mask.astype(complex)
        self._u_full = u_data
        self._up = up_data
        self.width = int(np.asarray(s_block).size)
        self._live = np.ones(self.width, dtype=bool)
        self._blockdiag_max = policy.blockdiag_max_bytes
        self._operator = None
        self._per_point = None

    def _ensure_operator(self) -> None:
        if self._operator is not None or self._per_point is not None:
            return
        if self.width * self.n * 16 <= self._blockdiag_max:
            self._operator = self.evaluator.block_diag_matrix(self._up, transpose=False)
        else:
            indptr, indices = self.evaluator._indptr, self.evaluator._indices
            shape = (self.n, self.n)
            self._per_point = [
                sparse.csr_matrix((self._up[t], indices, indptr), shape=shape)
                for t in range(self.width)
            ]

    def start(self) -> None:
        self._term = np.tile(self.e, (self.width, 1))
        self._acc = self._term.copy()

    def step(self) -> None:
        self._ensure_operator()
        if self._operator is not None:
            self._term = (self._operator @ self._term.ravel()).reshape(self.width, self.n)
            self._acc += self._term
        else:
            # Converged points' terms are exactly zero: skip their matvecs
            # (and their no-op accumulator updates).
            for t in np.flatnonzero(self._live):
                self._term[t] = self._per_point[t] @ self._term[t]
                self._acc[t] += self._term[t]

    def max_abs(self) -> np.ndarray:
        return np.abs(self._term).max(axis=1)

    def take_acc(self, positions: np.ndarray) -> np.ndarray:
        return self._acc[positions].copy()

    def zero_points(self, positions: np.ndarray) -> None:
        self._term[positions] = 0.0
        self._live[positions] = False

    def shrink(self, live: np.ndarray) -> None:
        self._up = self._up[live]
        self._term = self._term[live]
        self._acc = self._acc[live]
        self.width = int(live.sum())
        self._live = np.ones(self.width, dtype=bool)
        self._operator = None
        self._per_point = None

    def apply_u(self, rows: np.ndarray, block_positions: np.ndarray) -> np.ndarray:
        if rows.size == 0:
            return rows
        return self.evaluator.matrix_vec_batch(self._u_full[block_positions], rows)


def _drive_row(op, options: PassageTimeOptions):
    """Advance a row-form block to convergence; shared by both engines.

    Returns ``(values, iterations, deltas, converged)`` indexed by the
    block's original point positions.  Converged points are snapshotted and
    their state zeroed (numerically inert thereafter); the operator shrinks
    onto the surviving points whenever the live set halves, so total work
    stays within 2x of the per-point optimum.
    """
    width = op.width
    values = np.empty(width, dtype=complex)
    iterations = np.full(width, options.max_iterations, dtype=np.int64)
    deltas = np.zeros(width)
    converged = np.zeros(width, dtype=bool)
    pos_map = np.arange(width)

    op.start()
    totals = op.target_totals()
    below = np.zeros(op.width, dtype=np.int64)
    delta = op.abs_sums()
    live = np.ones(op.width, dtype=bool)
    for iteration in range(1, options.max_iterations + 1):
        op.step()
        totals = totals + op.target_totals()
        delta = op.abs_sums()
        below = np.where(delta < options.epsilon, below + 1, 0)
        done = live & (below >= options.consecutive)
        if done.any():
            for pos in np.flatnonzero(done):
                orig = pos_map[pos]
                values[orig] = totals[pos]
                iterations[orig] = iteration
                deltas[orig] = float(delta[pos])
                converged[orig] = True
            live &= ~done
            n_live = int(live.sum())
            if n_live == 0:
                break
            op.zero_points(np.flatnonzero(done))
            if n_live <= op.width // 2:
                keep = np.flatnonzero(live)
                op.shrink(live)
                totals = totals[keep]
                below = below[keep]
                delta = delta[keep]
                pos_map = pos_map[keep]
                live = np.ones(op.width, dtype=bool)
    if live.any():
        for pos in np.flatnonzero(live):
            orig = pos_map[pos]
            values[orig] = totals[pos]
            deltas[orig] = float(delta[pos])
    return values, iterations, deltas, converged


def _drive_col(op, options: PassageTimeOptions, *, finalize_unconverged: bool = True):
    """Advance a column-form block to convergence; shared by both engines.

    Returns ``(rows, iterations, deltas, converged)`` where ``rows`` is the
    ``(width, n)`` complex result ``U(s) acc`` per point.  Converged
    accumulators are parked and hit with the final (non-absorbing) ``U(s)``
    product in one batched sweep at the end.  With
    ``finalize_unconverged=False`` points that hit the iteration cap skip
    that final product and their rows are left unset — for callers that will
    overwrite them with a direct fallback solve anyway.
    """
    width = op.width
    n = op.n
    iterations = np.full(width, options.max_iterations, dtype=np.int64)
    deltas = np.zeros(width)
    converged = np.zeros(width, dtype=bool)
    pos_map = np.arange(width)
    parked_pos: list[int] = []
    parked_rows: list[np.ndarray] = []

    op.start()
    below = np.zeros(op.width, dtype=np.int64)
    delta = np.full(op.width, np.inf)
    live = np.ones(op.width, dtype=bool)
    for iteration in range(1, options.max_iterations + 1):
        op.step()
        delta = op.max_abs()
        below = np.where(delta < options.epsilon, below + 1, 0)
        done = live & (below >= options.consecutive)
        if done.any():
            done_pos = np.flatnonzero(done)
            taken = op.take_acc(done_pos)
            for row, pos in zip(taken, done_pos):
                orig = pos_map[pos]
                iterations[orig] = iteration
                deltas[orig] = float(delta[pos])
                converged[orig] = True
                parked_pos.append(int(orig))
                parked_rows.append(row)
            live &= ~done
            n_live = int(live.sum())
            if n_live == 0:
                break
            op.zero_points(done_pos)
            if n_live <= op.width // 2:
                keep = np.flatnonzero(live)
                op.shrink(live)
                below = below[keep]
                delta = delta[keep]
                pos_map = pos_map[keep]
                live = np.ones(op.width, dtype=bool)
    if live.any():
        live_pos = np.flatnonzero(live)
        if finalize_unconverged:
            taken = op.take_acc(live_pos)
            for row, pos in zip(taken, live_pos):
                orig = pos_map[pos]
                deltas[orig] = float(delta[pos])
                parked_pos.append(int(orig))
                parked_rows.append(row)
        else:
            for pos in live_pos:
                deltas[pos_map[pos]] = float(delta[pos])
    rows = np.empty((width, n), dtype=complex)
    if parked_pos:
        order = np.asarray(parked_pos, dtype=np.int64)
        rows[order] = op.apply_u(np.asarray(parked_rows), order)
    return rows, iterations, deltas, converged


def _block_bounds(n_s: int, block: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + block, n_s)) for lo in range(0, n_s, block)]


def _note_block(report, *, points, seconds, diags, engine=None) -> None:
    iterations = int(sum(d.iterations for d in diags))
    direct_solves = int(sum(d.direct_solves for d in diags))
    # Points returned truncated (no convergence, no direct fallback —
    # e.g. kernels above direct_max_states): downstream stats must be
    # able to see that the values are approximations.
    unconverged = int(sum(not d.converged for d in diags))
    _obs_metrics.note_solve_block(
        points=int(points),
        seconds=seconds,
        iterations=iterations,
        direct_solves=direct_solves,
        unconverged=unconverged,
        iteration_counts=[int(d.iterations) for d in diags],
        engine=engine,
    )
    if report is None:
        return
    report.setdefault("blocks", []).append(
        {
            "points": int(points),
            "seconds": round(seconds, 6),
            "iterations": iterations,
            "direct_solves": direct_solves,
            "unconverged": unconverged,
        }
    )


def passage_transform_batch(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s_values,
    options: PassageTimeOptions | None = None,
    *,
    policy: SPointPolicy | None = None,
    report: dict | None = None,
) -> tuple[np.ndarray, list[ConvergenceDiagnostics]]:
    """Evaluate ``L_{i->j}(s)`` at every point of an s-grid in one sweep.

    Semantically equivalent to calling :func:`passage_transform` per point
    (same truncation rule, so iteratively-solved points match the scalar path
    bit-for-bit up to float associativity), but the whole grid shares each
    transform evaluation of the underlying distributions and each iteration's
    sparse products, processed in memory-bounded blocks.  Points that the
    :class:`SPointPolicy` predicts to need too many iterations — the
    small-``|s|`` rare-event regime — are solved with the sparse-LU direct
    method instead and come back exact.

    Returns the values as an ``(n_s,)`` array plus one
    :class:`ConvergenceDiagnostics` per s-point (in input order).  When a
    ``report`` dict is supplied it is filled with the engine used and
    per-block solve timings.
    """
    options = options or PassageTimeOptions()
    policy = policy or SPointPolicy()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    alpha = _check_alpha(alpha, n)
    mask = target_mask(n, targets)

    s_values = np.asarray(s_values, dtype=complex).ravel()
    n_s = s_values.size
    values = np.empty(n_s, dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s
    if n_s == 0:
        if report is not None:
            report.setdefault("engine", policy.engine)
            report.setdefault("blocks", [])
        return values, []

    engine = policy.resolve_engine(evaluator)
    if report is not None:
        report["engine"] = engine
        report.setdefault("blocks", [])
    block = policy.block_points(evaluator, engine)
    for lo, hi in _block_bounds(n_s, block):
        started = time.perf_counter()
        with _obs_trace.span("s-block-solve", points=hi - lo, engine=engine):
            block_values, block_diags = _passage_block(
                evaluator, engine, alpha, mask, targets, s_values[lo:hi],
                options, policy,
            )
        values[lo:hi] = block_values
        diags[lo:hi] = block_diags
        _note_block(
            report, points=hi - lo, seconds=time.perf_counter() - started,
            diags=block_diags, engine=engine,
        )
    return values, diags  # type: ignore[return-value]


def _passage_block(evaluator, engine, alpha, mask, targets, s_block, options, policy):
    """One memory-bounded block of the row-form batched computation."""
    from .linear import passage_transform_direct_batch

    n_s = s_block.size
    values = np.empty(n_s, dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s

    u_data = up_data = None
    if engine == "factored":
        contraction = evaluator.factored().contraction(s_block, mask)
    else:
        u_data = evaluator.u_data_batch(s_block)
        up_data = evaluator.u_prime_data_batch(s_block, mask)
        contraction = evaluator.row_abs_sums(up_data).max(axis=1)

    if policy.allow_direct(evaluator):
        direct_mask = policy.route_direct(options.epsilon, contraction)
    else:
        direct_mask = np.zeros(n_s, dtype=bool)
    direct_idx = np.flatnonzero(direct_mask)
    iter_idx = np.flatnonzero(~direct_mask)

    def _solve_direct(indices, solver_label, iterations, matvecs):
        u_rows = u_data[indices] if u_data is not None else None
        vecs = passage_transform_direct_batch(
            evaluator, targets, s_block[indices], u_data=u_rows
        )
        values[indices] = vecs @ alpha
        for idx in indices:
            diags[idx] = ConvergenceDiagnostics(
                iterations=iterations,
                converged=True,
                final_delta=0.0,
                matvec_count=matvecs,
                solver=solver_label,
                direct_solves=1,
                engine=engine,
            )

    if direct_idx.size:
        _solve_direct(direct_idx, "direct", 0, 0)

    if iter_idx.size:
        s_iter = s_block[iter_idx]
        if engine == "factored":
            from .factored import FactoredRowOperator

            op = FactoredRowOperator(evaluator.factored(), s_iter, mask, alpha)
        else:
            op = _BatchRowOperator(
                evaluator, s_iter, mask, alpha,
                u_data[iter_idx], up_data[iter_idx], policy,
            )
        iter_values, iterations, deltas, conv = _drive_row(op, options)
        do_fallback = (
            not conv.all()
            and policy.fallback_to_direct
            and policy.allow_direct(evaluator)
        )
        retried = ~conv if do_fallback else np.zeros(iter_idx.size, dtype=bool)
        for pos in range(iter_idx.size):
            if retried[pos]:
                continue
            idx = int(iter_idx[pos])
            values[idx] = iter_values[pos]
            diags[idx] = ConvergenceDiagnostics(
                iterations=int(iterations[pos]),
                converged=bool(conv[pos]),
                final_delta=float(deltas[pos]),
                matvec_count=int(iterations[pos]) + 1,
                engine=engine,
            )
        if retried.any():
            _solve_direct(
                iter_idx[retried], "direct-fallback",
                options.max_iterations, options.max_iterations + 1,
            )
    return values, diags


def passage_transform_vector_batch(
    kernel_or_evaluator,
    targets,
    s_values,
    options: PassageTimeOptions | None = None,
    *,
    policy: SPointPolicy | None = None,
    report: dict | None = None,
) -> tuple[np.ndarray, list[ConvergenceDiagnostics]]:
    """Batched :func:`passage_transform_vector`: ``(n_s, n_states)`` at once.

    Column-accumulation form used by the transient computation; the same
    blocked scheduling, active-set convergence masking and iterative/direct
    policy as :func:`passage_transform_batch` apply.  Note the result scales
    as ``O(n_s · n_states)`` — callers on large kernels should keep their
    s-grids blocked (the transient computation does).
    """
    options = options or PassageTimeOptions()
    policy = policy or SPointPolicy()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = target_mask(n, targets)

    s_values = np.asarray(s_values, dtype=complex).ravel()
    n_s = s_values.size
    result = np.empty((n_s, n), dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s
    if n_s == 0:
        if report is not None:
            report.setdefault("engine", policy.engine)
            report.setdefault("blocks", [])
        return result, []

    engine = policy.resolve_engine(evaluator)
    if report is not None:
        report["engine"] = engine
        report.setdefault("blocks", [])
    block = policy.block_points(evaluator, engine, vector=True)
    for lo, hi in _block_bounds(n_s, block):
        started = time.perf_counter()
        with _obs_trace.span("s-block-solve", points=hi - lo, engine=engine,
                             form="vector"):
            block_rows, block_diags = _vector_block(
                evaluator, engine, mask, targets, s_values[lo:hi], options, policy
            )
        result[lo:hi] = block_rows
        diags[lo:hi] = block_diags
        _note_block(
            report, points=hi - lo, seconds=time.perf_counter() - started,
            diags=block_diags, engine=engine,
        )
    return result, diags  # type: ignore[return-value]


def _vector_block(evaluator, engine, mask, targets, s_block, options, policy):
    """One memory-bounded block of the column-form batched computation."""
    from .linear import passage_transform_direct_batch

    n_s = s_block.size
    n = evaluator.kernel.n_states
    result = np.empty((n_s, n), dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s

    u_data = up_data = None
    if engine == "factored":
        contraction = evaluator.factored().contraction(s_block, mask)
    else:
        u_data = evaluator.u_data_batch(s_block)
        up_data = evaluator.u_prime_data_batch(s_block, mask)
        contraction = evaluator.row_abs_sums(up_data).max(axis=1)

    if policy.allow_direct(evaluator):
        direct_mask = policy.route_direct(options.epsilon, contraction)
    else:
        direct_mask = np.zeros(n_s, dtype=bool)
    direct_idx = np.flatnonzero(direct_mask)
    iter_idx = np.flatnonzero(~direct_mask)

    if direct_idx.size:
        u_rows = u_data[direct_idx] if u_data is not None else None
        result[direct_idx] = passage_transform_direct_batch(
            evaluator, targets, s_block[direct_idx], u_data=u_rows
        )
        for idx in direct_idx:
            diags[idx] = ConvergenceDiagnostics(
                iterations=0, converged=True, final_delta=0.0, matvec_count=0,
                solver="direct", direct_solves=1, engine=engine,
            )

    if iter_idx.size:
        s_iter = s_block[iter_idx]
        if engine == "factored":
            from .factored import FactoredColOperator

            op = FactoredColOperator(evaluator.factored(), s_iter, mask)
        else:
            op = _BatchColOperator(
                evaluator, s_iter, mask, u_data[iter_idx], up_data[iter_idx], policy
            )
        # When the policy would re-solve cap-hitting points directly, their
        # final U(s)@acc product is wasted work — tell the driver to skip it.
        will_fallback = policy.fallback_to_direct and policy.allow_direct(evaluator)
        rows, iterations, deltas, conv = _drive_col(
            op, options, finalize_unconverged=not will_fallback
        )
        do_fallback = not conv.all() and will_fallback
        retried = ~conv if do_fallback else np.zeros(iter_idx.size, dtype=bool)
        for pos in range(iter_idx.size):
            if retried[pos]:
                continue
            idx = int(iter_idx[pos])
            result[idx] = rows[pos]
            diags[idx] = ConvergenceDiagnostics(
                iterations=int(iterations[pos]),
                converged=bool(conv[pos]),
                final_delta=float(deltas[pos]),
                matvec_count=int(iterations[pos]) + 1,
                engine=engine,
            )
        if retried.any():
            retry = iter_idx[retried]
            u_rows = u_data[retry] if u_data is not None else None
            result[retry] = passage_transform_direct_batch(
                evaluator, targets, s_block[retry], u_data=u_rows
            )
            for idx in retry:
                diags[idx] = ConvergenceDiagnostics(
                    iterations=options.max_iterations,
                    converged=True,
                    final_delta=0.0,
                    matvec_count=options.max_iterations + 1,
                    solver="direct-fallback",
                    direct_solves=1,
                    engine=engine,
                )
    return result, diags
