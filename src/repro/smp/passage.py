"""The iterative passage-time algorithm of Section 3 of the paper.

For a fixed transform argument ``s`` the first-passage-time transform from a
weighted set of source states into a target set ``j`` is the limit of the
r-transition quantities

    L^(r)(s) = (alpha U + alpha U U' + ... + alpha U U'^(r-1)) e        (Eq. 10)

where ``U`` has entries ``r*_pq(s)``, ``U'`` equals ``U`` with the target
states made absorbing and ``e`` indicates the target states.  The sum is
evaluated with sparse vector–matrix products and truncated once successive
terms fall below a tolerance in both real and imaginary parts (Eq. 11) —
``O(N^2 r)`` work in the worst case versus the ``O(N^3)`` of a direct solve.

Two shapes of the computation are provided:

* :func:`passage_transform` — the scalar ``alpha``-weighted transform
  (row-vector accumulation; what the passage-time pipeline evaluates at each
  s-point),
* :func:`passage_transform_vector` — the full vector ``(L_1j(s), ..., L_Nj(s))``
  for *every* source state (column-vector accumulation; what the transient
  computation of Eq. (7) needs, one run per target state).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kernel import SMPKernel, UEvaluator

__all__ = [
    "PassageTimeOptions",
    "ConvergenceDiagnostics",
    "passage_transform",
    "passage_transform_vector",
]


@dataclass(frozen=True)
class PassageTimeOptions:
    """Truncation controls for the iterative sum.

    Attributes
    ----------
    epsilon:
        Convergence threshold applied separately to the real and imaginary
        part of the change between successive iterates (Eq. 11).
    max_iterations:
        Hard cap on the number of transitions ``r``; exceeding it marks the
        result as unconverged rather than raising, so long-running sweeps can
        report partial diagnostics.
    consecutive:
        Number of consecutive below-threshold steps required before the sum
        is declared converged (guards against coincidentally tiny terms).
    """

    epsilon: float = 1e-8
    max_iterations: int = 100_000
    consecutive: int = 2

    def __post_init__(self):
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")


@dataclass
class ConvergenceDiagnostics:
    """Outcome of one truncated iterative sum."""

    iterations: int
    converged: bool
    final_delta: float
    matvec_count: int = field(default=0)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.converged


def _prepare(kernel_or_evaluator) -> UEvaluator:
    if isinstance(kernel_or_evaluator, UEvaluator):
        return kernel_or_evaluator
    if isinstance(kernel_or_evaluator, SMPKernel):
        return kernel_or_evaluator.evaluator()
    raise TypeError("expected an SMPKernel or UEvaluator")


def _target_mask(n_states: int, targets) -> np.ndarray:
    targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
    if targets.size == 0:
        raise ValueError("at least one target state is required")
    if targets.min() < 0 or targets.max() >= n_states:
        raise ValueError("target state index out of range")
    mask = np.zeros(n_states, dtype=bool)
    mask[targets] = True
    return mask


def passage_transform(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
) -> tuple[complex, ConvergenceDiagnostics]:
    """Evaluate ``L_{i->j}(s)`` for an ``alpha``-weighted source distribution.

    Parameters
    ----------
    kernel_or_evaluator:
        The SMP kernel (or a pre-built :class:`UEvaluator` when evaluating
        many s-points against the same kernel).
    alpha:
        Source weighting vector of Eq. (5); must sum to one.
    targets:
        Target state indices (the set ``j`` of the paper).
    s:
        Complex transform argument with ``Re(s) >= 0``.
    """
    options = options or PassageTimeOptions()
    evaluator = _prepare(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    alpha = np.asarray(alpha, dtype=complex)
    if alpha.shape != (n,):
        raise ValueError("alpha must have one weight per state")
    if abs(alpha.sum() - 1.0) > 1e-6:
        raise ValueError("alpha must sum to 1")
    mask = _target_mask(n, targets)
    e = mask.astype(complex)

    U = evaluator.u(s)
    U_prime = evaluator.u_prime(s, mask)

    # Row accumulation: v_0 = alpha U,  v_{k+1} = v_k U',  L = sum_k v_k . e
    #
    # Convergence is judged on ||v_k||_1 rather than on the added term
    # |v_k . e| of Eq. (11): the row sums of |U'| never exceed one, so
    # ||v||_1 is monotonically non-increasing and bounds *every* future term.
    # This strengthens the paper's test — a structurally periodic model can
    # produce exactly-zero terms at some transition counts (no path of that
    # length reaches the target), which would otherwise trigger a premature
    # stop even though later terms are still significant.
    v = alpha @ U
    total = complex(v @ e)
    matvecs = 1
    below = 0
    delta = float(np.sum(np.abs(v)))
    for iteration in range(1, options.max_iterations + 1):
        v = v @ U_prime
        matvecs += 1
        total += complex(v @ e)
        delta = float(np.sum(np.abs(v)))
        if delta < options.epsilon:
            below += 1
            if below >= options.consecutive:
                return total, ConvergenceDiagnostics(
                    iterations=iteration,
                    converged=True,
                    final_delta=delta,
                    matvec_count=matvecs,
                )
        else:
            below = 0
    return total, ConvergenceDiagnostics(
        iterations=options.max_iterations,
        converged=False,
        final_delta=delta,
        matvec_count=matvecs,
    )


def passage_transform_vector(
    kernel_or_evaluator,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
) -> tuple[np.ndarray, ConvergenceDiagnostics]:
    """Evaluate the vector ``(L_{1->j}(s), ..., L_{N->j}(s))`` for every source.

    This is the column-vector form of Eq. (9): the accumulator
    ``acc_r = sum_{k=0}^{r-1} U'^k e`` is built by repeated sparse
    matrix–vector products and the result is ``U acc_r``.  Because the row
    sums of ``|U|`` never exceed one for ``Re(s) >= 0``, the change in the
    result is bounded by the infinity norm of the current term, which is what
    the convergence test monitors.
    """
    options = options or PassageTimeOptions()
    evaluator = _prepare(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = _target_mask(n, targets)
    e = mask.astype(complex)

    U = evaluator.u(s)
    U_prime = evaluator.u_prime(s, mask)

    term = e.copy()
    acc = e.copy()
    matvecs = 0
    below = 0
    converged = False
    iterations = 0
    for iteration in range(1, options.max_iterations + 1):
        iterations = iteration
        term = U_prime @ term
        matvecs += 1
        acc += term
        delta = float(np.max(np.abs(term))) if term.size else 0.0
        if delta < options.epsilon:
            below += 1
            if below >= options.consecutive:
                converged = True
                break
        else:
            below = 0
    result = U @ acc
    matvecs += 1
    return np.asarray(result).ravel(), ConvergenceDiagnostics(
        iterations=iterations,
        converged=converged,
        final_delta=float(np.max(np.abs(term))),
        matvec_count=matvecs,
    )
