"""The iterative passage-time algorithm of Section 3 of the paper.

For a fixed transform argument ``s`` the first-passage-time transform from a
weighted set of source states into a target set ``j`` is the limit of the
r-transition quantities

    L^(r)(s) = (alpha U + alpha U U' + ... + alpha U U'^(r-1)) e        (Eq. 10)

where ``U`` has entries ``r*_pq(s)``, ``U'`` equals ``U`` with the target
states made absorbing and ``e`` indicates the target states.  The sum is
evaluated with sparse vector–matrix products and truncated once successive
terms fall below a tolerance in both real and imaginary parts (Eq. 11) —
``O(N^2 r)`` work in the worst case versus the ``O(N^3)`` of a direct solve.

Two shapes of the computation are provided:

* :func:`passage_transform` — the scalar ``alpha``-weighted transform
  (row-vector accumulation; what the passage-time pipeline evaluates at each
  s-point),
* :func:`passage_transform_vector` — the full vector ``(L_1j(s), ..., L_Nj(s))``
  for *every* source state (column-vector accumulation; what the transient
  computation of Eq. (7) needs, one run per target state).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kernel import as_evaluator, target_mask

__all__ = [
    "PassageTimeOptions",
    "ConvergenceDiagnostics",
    "SPointPolicy",
    "passage_transform",
    "passage_transform_vector",
    "passage_transform_batch",
    "passage_transform_vector_batch",
]


@dataclass(frozen=True)
class PassageTimeOptions:
    """Truncation controls for the iterative sum.

    Attributes
    ----------
    epsilon:
        Convergence threshold applied separately to the real and imaginary
        part of the change between successive iterates (Eq. 11).
    max_iterations:
        Hard cap on the number of transitions ``r``; exceeding it marks the
        result as unconverged rather than raising, so long-running sweeps can
        report partial diagnostics.
    consecutive:
        Number of consecutive below-threshold steps required before the sum
        is declared converged (guards against coincidentally tiny terms).
    """

    epsilon: float = 1e-8
    max_iterations: int = 100_000
    consecutive: int = 2

    def __post_init__(self):
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")


@dataclass
class ConvergenceDiagnostics:
    """Outcome of one truncated iterative sum."""

    iterations: int
    converged: bool
    final_delta: float
    matvec_count: int = field(default=0)
    #: which solver produced the value: "iterative", "direct" (policy-routed)
    #: or "direct-fallback" (iterative hit the cap and was re-solved exactly)
    solver: str = field(default="iterative")
    #: number of sparse-LU solves spent on this value (fallback points keep
    #: their matvec_count too — they paid for both)
    direct_solves: int = field(default=0)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.converged


@dataclass(frozen=True)
class SPointPolicy:
    """Per-s-point routing between the iterative sum and the sparse LU solve.

    The iterative algorithm's per-step contraction is bounded by the maximum
    row sum ``rho(s)`` of ``|U'(s)|``, which tends to one as ``s -> 0`` — the
    rare-event regime of Fig. 6, where a single s-point can need thousands of
    matvecs.  Since the first term of the sum has 1-norm at most one, reaching
    the truncation threshold ``epsilon`` needs roughly
    ``log(epsilon) / log(rho)`` transitions; points whose prediction exceeds
    ``predicted_iteration_limit`` are handed to the direct solver instead,
    where they cost one LU factorisation regardless of ``|s|`` (and come back
    exact rather than truncated).

    Attributes
    ----------
    predicted_iteration_limit:
        Predicted-iteration count above which an s-point is routed to the
        direct solver.  Set to a huge value to force the pure iterative path.
    fallback_to_direct:
        Re-solve directly any point that the iterative sum fails to converge
        within ``max_iterations`` (rather than returning a truncated value).
    """

    predicted_iteration_limit: int = 2000
    fallback_to_direct: bool = True

    def __post_init__(self):
        if self.predicted_iteration_limit < 1:
            raise ValueError("predicted_iteration_limit must be >= 1")

    def predicted_iterations(self, epsilon: float, contraction: np.ndarray) -> np.ndarray:
        """Estimated iterations to reach ``epsilon`` given per-s contractions."""
        contraction = np.minimum(np.asarray(contraction, dtype=float), 1.0 - 1e-15)
        with np.errstate(divide="ignore"):
            log_rho = np.log(contraction)
        return np.where(log_rho < 0.0, np.log(epsilon) / log_rho, np.inf)

    def route_direct(self, epsilon: float, contraction: np.ndarray) -> np.ndarray:
        """Boolean mask of s-points that should use the direct solver."""
        return self.predicted_iterations(epsilon, contraction) > self.predicted_iteration_limit


def passage_transform(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
) -> tuple[complex, ConvergenceDiagnostics]:
    """Evaluate ``L_{i->j}(s)`` for an ``alpha``-weighted source distribution.

    Parameters
    ----------
    kernel_or_evaluator:
        The SMP kernel (or a pre-built :class:`UEvaluator` when evaluating
        many s-points against the same kernel).
    alpha:
        Source weighting vector of Eq. (5); must sum to one.
    targets:
        Target state indices (the set ``j`` of the paper).
    s:
        Complex transform argument with ``Re(s) >= 0``.
    """
    options = options or PassageTimeOptions()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    alpha = _check_alpha(alpha, n)
    mask = target_mask(n, targets)
    e = mask.astype(complex)

    U = evaluator.u(s)
    U_prime = evaluator.u_prime(s, mask)

    # Row accumulation: v_0 = alpha U,  v_{k+1} = v_k U',  L = sum_k v_k . e
    #
    # Convergence is judged on ||v_k||_1 rather than on the added term
    # |v_k . e| of Eq. (11): the row sums of |U'| never exceed one, so
    # ||v||_1 is monotonically non-increasing and bounds *every* future term.
    # This strengthens the paper's test — a structurally periodic model can
    # produce exactly-zero terms at some transition counts (no path of that
    # length reaches the target), which would otherwise trigger a premature
    # stop even though later terms are still significant.
    v = alpha @ U
    total = complex(v @ e)
    matvecs = 1
    below = 0
    delta = float(np.sum(np.abs(v)))
    for iteration in range(1, options.max_iterations + 1):
        v = v @ U_prime
        matvecs += 1
        total += complex(v @ e)
        delta = float(np.sum(np.abs(v)))
        if delta < options.epsilon:
            below += 1
            if below >= options.consecutive:
                return total, ConvergenceDiagnostics(
                    iterations=iteration,
                    converged=True,
                    final_delta=delta,
                    matvec_count=matvecs,
                )
        else:
            below = 0
    return total, ConvergenceDiagnostics(
        iterations=options.max_iterations,
        converged=False,
        final_delta=delta,
        matvec_count=matvecs,
    )


def passage_transform_vector(
    kernel_or_evaluator,
    targets,
    s: complex,
    options: PassageTimeOptions | None = None,
) -> tuple[np.ndarray, ConvergenceDiagnostics]:
    """Evaluate the vector ``(L_{1->j}(s), ..., L_{N->j}(s))`` for every source.

    This is the column-vector form of Eq. (9): the accumulator
    ``acc_r = sum_{k=0}^{r-1} U'^k e`` is built by repeated sparse
    matrix–vector products and the result is ``U acc_r``.  Because the row
    sums of ``|U|`` never exceed one for ``Re(s) >= 0``, the change in the
    result is bounded by the infinity norm of the current term, which is what
    the convergence test monitors.
    """
    options = options or PassageTimeOptions()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = target_mask(n, targets)
    e = mask.astype(complex)

    U = evaluator.u(s)
    U_prime = evaluator.u_prime(s, mask)

    term = e.copy()
    acc = e.copy()
    matvecs = 0
    below = 0
    converged = False
    iterations = 0
    for iteration in range(1, options.max_iterations + 1):
        iterations = iteration
        term = U_prime @ term
        matvecs += 1
        acc += term
        delta = float(np.max(np.abs(term))) if term.size else 0.0
        if delta < options.epsilon:
            below += 1
            if below >= options.consecutive:
                converged = True
                break
        else:
            below = 0
    result = U @ acc
    matvecs += 1
    return np.asarray(result).ravel(), ConvergenceDiagnostics(
        iterations=iterations,
        converged=converged,
        final_delta=float(np.max(np.abs(term))),
        matvec_count=matvecs,
    )


# ---------------------------------------------------------------------------
# Batched evaluation: all s-points of an inversion grid iterate together.
#
# The r-transition recurrence is identical for every s-point — only the CSR
# data vector of U'(s) differs — so the whole grid advances through one
# vectorised gather/segment-sum per iteration and converged s-points drop out
# of the active set.  This amortises the per-iteration Python overhead of the
# scalar loop across the grid and is what the transform-evaluation jobs and
# execution backends dispatch to.
# ---------------------------------------------------------------------------


def _check_alpha(alpha, n: int) -> np.ndarray:
    alpha = np.asarray(alpha, dtype=complex)
    if alpha.shape != (n,):
        raise ValueError("alpha must have one weight per state")
    if abs(alpha.sum() - 1.0) > 1e-6:
        raise ValueError("alpha must sum to 1")
    return alpha


def passage_transform_batch(
    kernel_or_evaluator,
    alpha: np.ndarray,
    targets,
    s_values,
    options: PassageTimeOptions | None = None,
    *,
    policy: SPointPolicy | None = None,
) -> tuple[np.ndarray, list[ConvergenceDiagnostics]]:
    """Evaluate ``L_{i->j}(s)`` at every point of an s-grid in one sweep.

    Semantically equivalent to calling :func:`passage_transform` per point
    (same truncation rule, so iteratively-solved points match the scalar path
    bit-for-bit up to float associativity), but the whole grid shares each
    transform evaluation of the underlying distributions and each iteration's
    sparse product.  Points that the :class:`SPointPolicy` predicts to need
    too many iterations — the small-``|s|`` rare-event regime — are solved
    with the sparse-LU direct method instead and come back exact.

    Returns the values as an ``(n_s,)`` array plus one
    :class:`ConvergenceDiagnostics` per s-point (in input order).
    """
    from .linear import passage_transform_direct_batch

    options = options or PassageTimeOptions()
    policy = policy or SPointPolicy()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    alpha = _check_alpha(alpha, n)
    mask = target_mask(n, targets)

    s_values = np.asarray(s_values, dtype=complex).ravel()
    n_s = s_values.size
    values = np.empty(n_s, dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s
    if n_s == 0:
        return values, []

    u_data = evaluator.u_data_batch(s_values)
    up_data = evaluator.u_prime_data_batch(s_values, mask)

    contraction = evaluator.row_abs_sums(up_data).max(axis=1)
    direct_mask = policy.route_direct(options.epsilon, contraction)
    direct_idx = np.flatnonzero(direct_mask)
    iter_idx = np.flatnonzero(~direct_mask)

    def _solve_direct(
        indices: np.ndarray, solver_label: str, iterations: int, matvecs: int
    ) -> None:
        vecs = passage_transform_direct_batch(
            evaluator, targets, s_values[indices], u_data=u_data[indices]
        )
        values[indices] = vecs @ alpha
        for idx in indices:
            diags[idx] = ConvergenceDiagnostics(
                iterations=iterations,
                converged=True,
                final_delta=0.0,
                matvec_count=matvecs,
                solver=solver_label,
                direct_solves=1,
            )

    if direct_idx.size:
        _solve_direct(direct_idx, "direct", 0, 0)

    if iter_idx.size:
        # All active s-points advance together through one block-diagonal
        # sparse matvec per iteration.  Converged points are snapshotted and
        # their state zeroed (numerically inert thereafter); the operator is
        # rebuilt on the surviving blocks whenever the live set halves, so
        # total work stays within 2x of the per-point optimum.
        active = iter_idx.copy()
        up_active = up_data[active]
        e = mask.astype(complex)
        v0 = evaluator.alpha_vec_matrix_batch(alpha, u_data[active])
        operator = evaluator.block_diag_matrix(up_active, transpose=True)
        V = v0.ravel()
        totals = v0 @ e
        below = np.zeros(active.size, dtype=np.int64)
        delta = np.abs(v0).sum(axis=1)
        live = np.ones(active.size, dtype=bool)
        for iteration in range(1, options.max_iterations + 1):
            V = operator @ V
            v2 = V.reshape(active.size, n)
            totals += v2 @ e
            delta = np.abs(v2).sum(axis=1)
            below = np.where(delta < options.epsilon, below + 1, 0)
            done = live & (below >= options.consecutive)
            if done.any():
                for pos in np.flatnonzero(done):
                    idx = int(active[pos])
                    values[idx] = totals[pos]
                    diags[idx] = ConvergenceDiagnostics(
                        iterations=iteration,
                        converged=True,
                        final_delta=float(delta[pos]),
                        matvec_count=iteration + 1,
                    )
                live &= ~done
                n_live = int(live.sum())
                if n_live == 0:
                    break
                v2[done] = 0.0
                if n_live <= active.size // 2:
                    active = active[live]
                    up_active = up_active[live]
                    operator = evaluator.block_diag_matrix(up_active, transpose=True)
                    V = v2[live].ravel()
                    totals = totals[live]
                    below = below[live]
                    delta = delta[live]
                    live = np.ones(active.size, dtype=bool)
        if live.any():
            leftovers = active[live]
            if policy.fallback_to_direct:
                _solve_direct(
                    leftovers,
                    "direct-fallback",
                    options.max_iterations,
                    options.max_iterations + 1,
                )
            else:
                for pos in np.flatnonzero(live):
                    idx = int(active[pos])
                    values[idx] = totals[pos]
                    diags[idx] = ConvergenceDiagnostics(
                        iterations=options.max_iterations,
                        converged=False,
                        final_delta=float(delta[pos]),
                        matvec_count=options.max_iterations + 1,
                    )
    return values, diags  # type: ignore[return-value]


def passage_transform_vector_batch(
    kernel_or_evaluator,
    targets,
    s_values,
    options: PassageTimeOptions | None = None,
    *,
    policy: SPointPolicy | None = None,
) -> tuple[np.ndarray, list[ConvergenceDiagnostics]]:
    """Batched :func:`passage_transform_vector`: ``(n_s, n_states)`` at once.

    Column-accumulation form used by the transient computation; the same
    active-set convergence masking and iterative/direct policy as
    :func:`passage_transform_batch` apply.
    """
    from .linear import passage_transform_direct_batch

    options = options or PassageTimeOptions()
    policy = policy or SPointPolicy()
    evaluator = as_evaluator(kernel_or_evaluator)
    n = evaluator.kernel.n_states
    mask = target_mask(n, targets)
    e = mask.astype(complex)

    s_values = np.asarray(s_values, dtype=complex).ravel()
    n_s = s_values.size
    result = np.empty((n_s, n), dtype=complex)
    diags: list[ConvergenceDiagnostics | None] = [None] * n_s
    if n_s == 0:
        return result, []

    u_data = evaluator.u_data_batch(s_values)
    up_data = evaluator.u_prime_data_batch(s_values, mask)

    contraction = evaluator.row_abs_sums(up_data).max(axis=1)
    direct_mask = policy.route_direct(options.epsilon, contraction)
    direct_idx = np.flatnonzero(direct_mask)
    iter_idx = np.flatnonzero(~direct_mask)

    if direct_idx.size:
        result[direct_idx] = passage_transform_direct_batch(
            evaluator, targets, s_values[direct_idx], u_data=u_data[direct_idx]
        )
        for idx in direct_idx:
            diags[idx] = ConvergenceDiagnostics(
                iterations=0, converged=True, final_delta=0.0, matvec_count=0,
                solver="direct", direct_solves=1,
            )

    if iter_idx.size:
        # Same block-diagonal active-set scheme as passage_transform_batch,
        # in the column-accumulation shape of Eq. (9).
        active = iter_idx.copy()
        up_active = up_data[active]
        operator = evaluator.block_diag_matrix(up_active, transpose=False)
        X = np.tile(e, active.size)
        acc = np.tile(e, (active.size, 1))
        below = np.zeros(active.size, dtype=np.int64)
        delta = np.full(active.size, np.inf)
        live = np.ones(active.size, dtype=bool)
        # Converged accumulators are parked here and hit with the final
        # ``U(s) @ acc`` multiplication in one batched product at the end.
        final_idx: list[int] = []
        final_acc: list[np.ndarray] = []
        for iteration in range(1, options.max_iterations + 1):
            X = operator @ X
            term = X.reshape(active.size, n)
            acc += term
            delta = np.abs(term).max(axis=1)
            below = np.where(delta < options.epsilon, below + 1, 0)
            done = live & (below >= options.consecutive)
            if done.any():
                for pos in np.flatnonzero(done):
                    idx = int(active[pos])
                    final_idx.append(idx)
                    final_acc.append(acc[pos].copy())
                    diags[idx] = ConvergenceDiagnostics(
                        iterations=iteration,
                        converged=True,
                        final_delta=float(delta[pos]),
                        matvec_count=iteration + 1,
                    )
                live &= ~done
                n_live = int(live.sum())
                if n_live == 0:
                    break
                term[done] = 0.0
                if n_live <= active.size // 2:
                    active = active[live]
                    up_active = up_active[live]
                    operator = evaluator.block_diag_matrix(up_active, transpose=False)
                    X = term[live].ravel()
                    acc = acc[live]
                    below = below[live]
                    delta = delta[live]
                    live = np.ones(active.size, dtype=bool)
        if live.any():
            leftovers = active[live]
            if policy.fallback_to_direct:
                result[leftovers] = passage_transform_direct_batch(
                    evaluator, targets, s_values[leftovers], u_data=u_data[leftovers]
                )
                for idx in leftovers:
                    diags[idx] = ConvergenceDiagnostics(
                        iterations=options.max_iterations,
                        converged=True,
                        final_delta=0.0,
                        matvec_count=options.max_iterations + 1,
                        solver="direct-fallback",
                        direct_solves=1,
                    )
            else:
                for pos in np.flatnonzero(live):
                    idx = int(active[pos])
                    final_idx.append(idx)
                    final_acc.append(acc[pos].copy())
                    diags[idx] = ConvergenceDiagnostics(
                        iterations=options.max_iterations,
                        converged=False,
                        final_delta=float(delta[pos]),
                        matvec_count=options.max_iterations + 1,
                    )
        if final_idx:
            idx_arr = np.asarray(final_idx, dtype=np.int64)
            result[idx_arr] = evaluator.matrix_vec_batch(
                u_data[idx_arr], np.asarray(final_acc)
            )
    return result, diags  # type: ignore[return-value]
