"""Long-run state probabilities of a semi-Markov process.

The SMP spends, in the long run, a fraction of time in state ``i``
proportional to ``pi_hat_i * m_i`` where ``pi_hat`` is the stationary vector
of the embedded DTMC and ``m_i`` the mean sojourn time in ``i``.  These are
the values the transient distribution of Fig. 7 converges to as t -> inf.
"""
from __future__ import annotations

import numpy as np

from .embedded import dtmc_steady_state
from .kernel import SMPKernel

__all__ = ["smp_steady_state", "steady_state_probability"]


def smp_steady_state(
    kernel: SMPKernel,
    *,
    embedded_pi: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """Limiting probability of finding the SMP in each state."""
    if embedded_pi is None:
        embedded_pi = dtmc_steady_state(kernel.embedded_matrix(), method=method)
    embedded_pi = np.asarray(embedded_pi, dtype=float)
    if embedded_pi.shape != (kernel.n_states,):
        raise ValueError("embedded_pi must have one probability per state")
    mean_sojourns = kernel.mean_sojourn_times()
    if np.any(~np.isfinite(mean_sojourns)):
        raise ValueError("all mean sojourn times must be finite for a steady state to exist")
    weighted = embedded_pi * mean_sojourns
    total = weighted.sum()
    if total <= 0:
        raise ValueError("total mean cycle time is not positive")
    return weighted / total


def steady_state_probability(
    kernel: SMPKernel,
    states,
    *,
    embedded_pi: np.ndarray | None = None,
    method: str = "auto",
) -> float:
    """Limiting probability of the SMP occupying any state in ``states``."""
    states = np.atleast_1d(np.asarray(states, dtype=np.int64))
    if states.size == 0:
        return 0.0
    if states.min() < 0 or states.max() >= kernel.n_states:
        raise ValueError("state index out of range")
    pi = smp_steady_state(kernel, embedded_pi=embedded_pi, method=method)
    return float(pi[np.unique(states)].sum())
