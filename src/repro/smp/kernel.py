"""Sparse representation of a semi-Markov kernel.

The time-homogeneous SMP kernel is ``R(i, j, t) = p_ij H_ij(t)`` (Section 2.1
of the paper): a one-step transition probability matrix ``P = [p_ij]`` plus a
sojourn-time distribution ``H_ij`` attached to every transition.  The
Laplace–Stieltjes transform of the kernel, ``r*_ij(s) = p_ij H*_ij(s)``, is
exactly the matrix ``U`` of the iterative algorithm (Eq. 9).

The kernel stores transitions in coordinate form with an index into a list of
*unique* distribution objects, so evaluating ``U(s)`` costs one transform
evaluation per distinct distribution (not per transition) plus a single data
fill of a pre-assembled CSR structure.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from ..distributions import Distribution
from ..utils.validation import check_probability_vector, require

__all__ = [
    "SMPKernel",
    "UEvaluator",
    "as_evaluator",
    "kernel_content_digest",
    "target_mask",
]


def kernel_content_digest(kernel: "SMPKernel") -> str:
    """A stable content hash of the kernel's structure and distributions.

    Memoised on the kernel object: a long-lived analysis service re-digests
    the same kernel on every query, and the arrays are immutable after build.
    Kernels reconstructed from a shared-memory plane carry the original
    digest forward (their edge columns are in CSR order, so re-hashing would
    produce a different — but equivalent — value).
    """
    cached = getattr(kernel, "_content_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(np.int64(kernel.n_states).tobytes())
    h.update(kernel.src.tobytes())
    h.update(kernel.dst.tobytes())
    h.update(kernel.probs.tobytes())
    h.update(kernel.dist_index.tobytes())
    for dist in kernel.distributions:
        h.update(repr(dist._key()).encode())
    digest = h.hexdigest()
    kernel._content_digest = digest
    return digest


def as_evaluator(kernel_or_evaluator) -> "UEvaluator":
    """Coerce an :class:`SMPKernel` or :class:`UEvaluator` to an evaluator."""
    if isinstance(kernel_or_evaluator, UEvaluator):
        return kernel_or_evaluator
    if isinstance(kernel_or_evaluator, SMPKernel):
        return kernel_or_evaluator.evaluator()
    raise TypeError("expected an SMPKernel or UEvaluator")


def target_mask(n_states: int, targets) -> np.ndarray:
    """Validated boolean mask over states for a target index set."""
    targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
    if targets.size == 0:
        raise ValueError("at least one target state is required")
    if targets.min() < 0 or targets.max() >= n_states:
        raise ValueError("target state index out of range")
    mask = np.zeros(n_states, dtype=bool)
    mask[targets] = True
    return mask


class SMPKernel:
    """An immutable semi-Markov process kernel over states ``0 .. n_states-1``.

    Construct instances with :class:`repro.smp.SMPBuilder` (or the
    lower-level :meth:`from_arrays`).
    """

    def __init__(
        self,
        n_states: int,
        src: np.ndarray,
        dst: np.ndarray,
        probs: np.ndarray,
        dist_index: np.ndarray,
        distributions: Sequence[Distribution],
        state_names: Sequence[str] | None = None,
        *,
        row_sum_tolerance: float = 1e-8,
    ):
        require(n_states > 0, "an SMP kernel needs at least one state")
        self.n_states = int(n_states)
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.probs = np.asarray(probs, dtype=float)
        self.dist_index = np.asarray(dist_index, dtype=np.int64)
        self.distributions = list(distributions)
        if not (
            self.src.shape == self.dst.shape == self.probs.shape == self.dist_index.shape
        ):
            raise ValueError("src, dst, probs and dist_index must have identical shapes")
        if self.src.size == 0:
            raise ValueError("an SMP kernel needs at least one transition")
        if self.src.min() < 0 or self.src.max() >= self.n_states:
            raise ValueError("transition source index out of range")
        if self.dst.min() < 0 or self.dst.max() >= self.n_states:
            raise ValueError("transition destination index out of range")
        if np.any(self.probs < 0) or np.any(~np.isfinite(self.probs)):
            raise ValueError("transition probabilities must be finite and non-negative")
        if self.dist_index.min() < 0 or self.dist_index.max() >= len(self.distributions):
            raise ValueError("distribution index out of range")
        for d in self.distributions:
            if not isinstance(d, Distribution):
                raise TypeError(f"expected Distribution, got {type(d).__name__}")

        # Names materialise lazily via the state_names property: a
        # million-state kernel should not pay for a million name strings it
        # may never print.  ``state_names`` may be a sequence or a zero-arg
        # callable producing one (the factory form the array-backed state
        # space uses to defer marking-string generation).
        self._state_names: list[str] | None = None
        self._state_names_factory = None
        if callable(state_names):
            self._state_names_factory = state_names
        elif state_names is not None:
            state_names = list(state_names)
            require(
                len(state_names) == self.n_states,
                "state_names must have one entry per state",
            )
            self._state_names = [str(s) for s in state_names]

        # Pre-assemble the sparse structure shared by P, U(s) and U'(s).
        self._structure = sparse.csr_matrix(
            (np.arange(1, self.src.size + 1, dtype=float), (self.src, self.dst)),
            shape=(self.n_states, self.n_states),
        )
        if self._structure.nnz != self.src.size:
            raise ValueError(
                "duplicate transitions detected: combine parallel transitions into a "
                "single (probability, Mixture) pair before building the kernel"
            )
        # Permutation mapping COO transition order -> CSR data order.
        self._coo_to_csr = np.asarray(self._structure.data, dtype=np.int64) - 1

        row_sums = np.bincount(self.src, weights=self.probs, minlength=self.n_states)
        dangling = np.where(row_sums < row_sum_tolerance)[0]
        if dangling.size:
            raise ValueError(
                f"states without outgoing probability mass: {dangling[:10].tolist()} — "
                "every state of a finite irreducible SMP needs at least one transition"
            )
        if np.any(np.abs(row_sums - 1.0) > row_sum_tolerance):
            worst = int(np.argmax(np.abs(row_sums - 1.0)))
            raise ValueError(
                "transition probabilities of each state must sum to 1 "
                f"(state {worst} sums to {row_sums[worst]:.12g})"
            )

    # ------------------------------------------------------------- factory
    @classmethod
    def from_arrays(
        cls,
        n_states: int,
        transitions: Iterable[tuple[int, int, float, Distribution]],
        state_names: Sequence[str] | None = None,
    ) -> "SMPKernel":
        """Build a kernel from ``(src, dst, probability, distribution)`` tuples."""
        src, dst, probs, dist_idx = [], [], [], []
        dists: list[Distribution] = []
        index_of: dict[Distribution, int] = {}
        for i, j, p, d in transitions:
            src.append(i)
            dst.append(j)
            probs.append(p)
            if d not in index_of:
                index_of[d] = len(dists)
                dists.append(d)
            dist_idx.append(index_of[d])
        return cls(n_states, np.asarray(src), np.asarray(dst), np.asarray(probs),
                   np.asarray(dist_idx), dists, state_names)

    @classmethod
    def from_columns(
        cls,
        n_states: int,
        src: np.ndarray,
        dst: np.ndarray,
        probs: np.ndarray,
        dist_index: np.ndarray,
        distributions: Sequence[Distribution],
        state_names: Sequence[str] | None = None,
        *,
        normalise: bool = False,
    ) -> "SMPKernel":
        """Build a kernel straight from edge columns (structure-of-arrays).

        The zero-copy handoff from the array-backed state space: when no two
        edges share a ``(src, dst)`` pair the columns are adopted as-is — no
        per-edge Python objects, no :class:`SMPBuilder` dict merging.  Parallel
        edges keep the builder's merge semantics via grouped reduction:
        probabilities sum, sojourns combine into a probability-weighted
        :class:`~repro.distributions.Mixture` in edge order.

        ``normalise`` rescales each state's outgoing probabilities to sum to
        one (the truncated-graph convention of ``SMPBuilder.build``).
        """
        from ..distributions import Mixture

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        probs = np.asarray(probs, dtype=float)
        dist_index = np.asarray(dist_index, dtype=np.int64)
        if np.any(probs < 0) or np.any(~np.isfinite(probs)):
            raise ValueError("transition probabilities must be finite and non-negative")
        positive = probs > 0.0
        if not positive.all():
            src, dst, probs, dist_index = (
                src[positive], dst[positive], probs[positive], dist_index[positive],
            )
        if src.size == 0:
            raise ValueError("no transitions have been added")

        # One packed int64 key sorts (src, dst) pairs in a single-array pass;
        # the common no-parallel-edge case detects as "no adjacent equal keys"
        # without ever permuting the columns.
        if n_states <= 3_000_000_000:
            pair_keys = src * np.int64(n_states) + dst
        else:  # pragma: no cover - keys would overflow int64
            pair_keys = None
        if pair_keys is not None:
            sorted_keys = np.sort(pair_keys)
            has_duplicates = bool((sorted_keys[1:] == sorted_keys[:-1]).any())
            order = np.argsort(pair_keys, kind="stable") if has_duplicates else None
        else:
            order = np.lexsort((dst, src))
            s_ordered, d_ordered = src[order], dst[order]
            has_duplicates = bool(
                ((s_ordered[1:] == s_ordered[:-1]) & (d_ordered[1:] == d_ordered[:-1])).any()
            )
        if has_duplicates:
            s_sorted, d_sorted = src[order], dst[order]
            duplicate = np.empty(src.size, dtype=bool)
            duplicate[0] = False
            duplicate[1:] = (s_sorted[1:] == s_sorted[:-1]) & (d_sorted[1:] == d_sorted[:-1])
            p_sorted, di_sorted = probs[order], dist_index[order]
            starts = np.flatnonzero(~duplicate)
            sizes = np.diff(np.append(starts, src.size))
            src = s_sorted[starts]
            dst = d_sorted[starts]
            probs = np.add.reduceat(p_sorted, starts)
            distributions = list(distributions)
            dist_of: dict[Distribution, int] = {}
            # Singleton groups (the vast majority) copy their index wholesale;
            # only genuinely parallel groups pay the Mixture construction.
            dist_index = di_sorted[starts].copy()
            for g in np.flatnonzero(sizes > 1):
                branch = slice(starts[g], starts[g] + sizes[g])
                weights = check_probability_vector(
                    p_sorted[branch], "parallel transition weights", normalise=True
                )
                mixture = Mixture(
                    [distributions[int(i)] for i in di_sorted[branch]], weights
                )
                found = dist_of.get(mixture)
                if found is None:
                    found = len(distributions)
                    dist_of[mixture] = found
                    distributions.append(mixture)
                dist_index[g] = found

        if normalise:
            row_sums = np.bincount(src, weights=probs, minlength=n_states)
            zero_rows = np.where(row_sums == 0.0)[0]
            if zero_rows.size:
                raise ValueError(
                    f"cannot normalise: states {zero_rows[:10].tolist()} have no outgoing weight"
                )
            probs = probs / row_sums[src]

        return cls(n_states, src, dst, probs, dist_index, list(distributions),
                   state_names)

    @classmethod
    def _from_csr(
        cls,
        n_states: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        csr_probs: np.ndarray,
        csr_dist_index: np.ndarray,
        csr_rows: np.ndarray,
        distributions: Sequence[Distribution],
        content_digest: str | None = None,
    ) -> "SMPKernel":
        """Reassemble a kernel zero-copy from already-validated CSR columns.

        The shared-memory plane attach path: the arrays come straight out of
        a buffer exported by a kernel that already passed ``__init__``'s
        validation, so this skips re-validation *and* the COO→CSR sort — the
        edge columns are adopted in CSR order (``_coo_to_csr`` is the
        identity).  ``content_digest`` stamps the original kernel's digest so
        checkpoint keys agree across processes.
        """
        self = cls.__new__(cls)
        self.n_states = int(n_states)
        self.src = csr_rows
        self.dst = indices
        self.probs = csr_probs
        self.dist_index = csr_dist_index
        self.distributions = list(distributions)
        self._state_names = None
        self._state_names_factory = None
        self._structure = sparse.csr_matrix(
            (csr_probs, indices, indptr), shape=(self.n_states, self.n_states),
            copy=False,
        )
        self._coo_to_csr = np.arange(csr_probs.size, dtype=np.int64)
        if content_digest is not None:
            self._content_digest = content_digest
        return self

    # ------------------------------------------------------------ topology
    @property
    def n_transitions(self) -> int:
        return int(self.src.size)

    @property
    def n_distributions(self) -> int:
        return len(self.distributions)

    @property
    def state_names(self) -> list[str]:
        """Per-state display names (default ``str(index)``, built on demand)."""
        if self._state_names is None:
            if self._state_names_factory is not None:
                names = [str(s) for s in self._state_names_factory()]
                require(
                    len(names) == self.n_states,
                    "state_names must have one entry per state",
                )
                self._state_names = names
            else:
                self._state_names = [str(i) for i in range(self.n_states)]
        return self._state_names

    def embedded_matrix(self) -> sparse.csr_matrix:
        """One-step transition probability matrix ``P`` of the embedded DTMC."""
        mat = self._structure.copy()
        mat.data = self.probs[self._coo_to_csr]
        return mat

    def adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(indptr, indices)`` of the transition structure.

        The arrays are shared with the kernel's pre-assembled structure —
        treat them as read-only.  Graph algorithms (partitioners, BFS
        orderings) should traverse these instead of rebuilding Python
        adjacency lists.
        """
        return self._structure.indptr, self._structure.indices

    def state_index(self, name: str) -> int:
        """Index of the state called ``name`` (O(n) lookup, for small models/tests)."""
        try:
            return self.state_names.index(name)
        except ValueError:
            raise KeyError(f"unknown state name {name!r}") from None

    def states_matching(self, predicate) -> list[int]:
        """All state indices whose *name* satisfies ``predicate``."""
        return [i for i, name in enumerate(self.state_names) if predicate(name)]

    # ----------------------------------------------------------- transforms
    def evaluator(self) -> "UEvaluator":
        """A reusable evaluator of ``U(s)`` / ``U'(s)`` sharing the CSR structure."""
        return UEvaluator(self)

    def u_matrix(self, s: complex) -> sparse.csr_matrix:
        """The matrix ``U(s)`` with entries ``u_pq = r*_pq(s)`` (Eq. 9)."""
        return self.evaluator().u(s)

    def mean_sojourn_times(self) -> np.ndarray:
        """Expected sojourn time in each state: ``m_i = sum_j p_ij E[H_ij]``."""
        means = np.asarray([d.mean() for d in self.distributions], dtype=float)
        contrib = self.probs * means[self.dist_index]
        return np.bincount(self.src, weights=contrib, minlength=self.n_states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SMPKernel(n_states={self.n_states}, n_transitions={self.n_transitions}, "
            f"n_distributions={self.n_distributions})"
        )


@dataclass
class _EvaluatorCache:
    s: complex | None = None
    data: np.ndarray | None = None


class _BatchLRU:
    """A handful of recent ``U(s)`` data grids, keyed by the grid bytes.

    One slot covers the transient computation (which re-requests the same
    grid once per target state); a long-lived analysis service additionally
    interleaves *measures* on one shared evaluator — density, CDF and
    quantile-refinement requests that alternate between a few distinct
    grids — so a short LRU keeps those from evicting each other.  Grids
    larger than ``max_entry_bytes`` are never retained: pinning several
    multi-GiB ``(n_s, nnz)`` arrays is exactly the failure mode the blocked
    evaluation path exists to avoid.
    """

    def __init__(self, capacity: int = 4, max_entry_bytes: int = 256 << 20):
        self.capacity = capacity
        self.max_entry_bytes = max_entry_bytes
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()

    def get(self, key: bytes) -> np.ndarray | None:
        data = self._entries.get(key)
        if data is not None:
            self._entries.move_to_end(key)
        return data

    def put(self, key: bytes, data: np.ndarray) -> None:
        if data.nbytes > self.max_entry_bytes:
            return
        self._entries[key] = data
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class UEvaluator:
    """Evaluates ``U(s)`` and target-absorbing ``U'(s)`` re-using one CSR structure.

    The iterative algorithm calls this once per s-point and then performs
    ``O(r)`` sparse vector–matrix products, so the evaluator keeps the
    structural arrays (``indptr``/``indices``) fixed and only refreshes the
    complex data vector when ``s`` changes.
    """

    def __init__(self, kernel: SMPKernel):
        self.kernel = kernel
        template = kernel._structure
        self._indptr = template.indptr.copy()
        self._indices = template.indices.copy()
        self._shape = template.shape
        # probs/dist_index in CSR data order.
        order = kernel._coo_to_csr
        self._csr_probs = kernel.probs[order]
        self._csr_dist_index = kernel.dist_index[order]
        # row index of every stored entry (needed to zero absorbing rows).
        self._csr_rows = np.repeat(
            np.arange(kernel.n_states), np.diff(self._indptr)
        )
        self._cache = _EvaluatorCache()
        self._batch_cache = _BatchLRU()

    @classmethod
    def _from_parts(
        cls,
        kernel: SMPKernel,
        indptr: np.ndarray,
        indices: np.ndarray,
        csr_probs: np.ndarray,
        csr_dist_index: np.ndarray,
        csr_rows: np.ndarray,
    ) -> "UEvaluator":
        """Assemble an evaluator directly over externally-owned CSR arrays.

        The plane attach path: `__init__` would copy ``indptr``/``indices``
        and re-derive the data-order columns, defeating the point of a
        shared-memory export.  The caller guarantees the arrays are the CSR
        projection of ``kernel`` (they come from a buffer that an ordinary
        evaluator exported).  Caches start empty and are process-local.
        """
        self = cls.__new__(cls)
        self.kernel = kernel
        self._indptr = indptr
        self._indices = indices
        self._shape = (kernel.n_states, kernel.n_states)
        self._csr_probs = csr_probs
        self._csr_dist_index = csr_dist_index
        self._csr_rows = csr_rows
        self._cache = _EvaluatorCache()
        self._batch_cache = _BatchLRU()
        return self

    # ------------------------------------------------------------ internals
    def _u_data(self, s: complex) -> np.ndarray:
        s = complex(s)
        if self._cache.s == s and self._cache.data is not None:
            return self._cache.data
        lst_values = np.asarray(
            [d.lst(s) for d in self.kernel.distributions], dtype=complex
        )
        data = self._csr_probs * lst_values[self._csr_dist_index]
        self._cache = _EvaluatorCache(s=s, data=data)
        return data

    def _matrix_from_data(self, data: np.ndarray) -> sparse.csr_matrix:
        return sparse.csr_matrix(
            (data, self._indices, self._indptr), shape=self._shape, copy=False
        )

    # ------------------------------------------------------------------ API
    def u(self, s: complex) -> sparse.csr_matrix:
        """``U(s)``: entry ``(p, q)`` equals ``p_pq H*_pq(s)``."""
        return self._matrix_from_data(self._u_data(s).copy())

    def u_prime(self, s: complex, target_mask: np.ndarray) -> sparse.csr_matrix:
        """``U'(s)``: as ``U(s)`` but with the target states made absorbing.

        Rows belonging to target states are zeroed so that probability mass
        reaching the target set never leaves it again — this is what turns
        the r-transition sum of Eq. (9) into a *first* passage quantity.
        """
        target_mask = np.asarray(target_mask, dtype=bool)
        if target_mask.shape != (self.kernel.n_states,):
            raise ValueError("target_mask must have one boolean per state")
        data = self._u_data(s).copy()
        data[target_mask[self._csr_rows]] = 0.0
        return self._matrix_from_data(data)

    def sojourn_lst(self, s: complex) -> np.ndarray:
        """Per-state sojourn transform ``h*_i(s) = sum_j r*_ij(s)`` (row sums of U)."""
        data = self._u_data(s)
        rows = self._csr_rows
        n = self.kernel.n_states
        out = np.zeros(n, dtype=complex)
        out.real = np.bincount(rows, weights=data.real, minlength=n)
        out.imag = np.bincount(rows, weights=data.imag, minlength=n)
        return out

    #: cap on the temporary working set of one internal ``u_data_batch``
    #: fill chunk; the gather below is performed in s-slices of at most this
    #: many bytes so building a large grid never doubles its own footprint
    batch_fill_bytes: int = 256 << 20

    def fill_chunk_points(self) -> int:
        """How many s-points of per-edge data fit one :attr:`batch_fill_bytes`
        working chunk (shared by the batch fill and the direct solver)."""
        return max(1, int(self.batch_fill_bytes // max(self._indices.size * 16, 1)))

    def factored(self) -> "FactoredUEvaluator":
        """The distribution-factored multi-s engine sharing this kernel.

        Built lazily and cached: the pair decompositions cost one pass over
        the edges and are reused by every factored solve on this evaluator.
        """
        if getattr(self, "_factored", None) is None:
            from .factored import FactoredUEvaluator

            self._factored = FactoredUEvaluator(self)
        return self._factored

    # ------------------------------------------------------------- batch API
    def u_data_batch(self, s_values, out: np.ndarray | None = None) -> np.ndarray:
        """CSR data of ``U(s)`` for a whole grid of s-points at once.

        Returns an ``(n_s, nnz)`` array whose row ``t`` is the data vector of
        ``U(s_values[t])`` in the shared CSR entry order.  Each distinct
        distribution's transform is evaluated exactly once over the full grid,
        so the per-s-point Python overhead of the scalar path is amortised
        across the batch.  The result is assembled in s-chunks bounded by
        :attr:`batch_fill_bytes` (optionally straight into ``out``), so the
        build never allocates beyond the result itself; results small enough
        to be worth retaining are cached (see :class:`_BatchLRU`) — the
        transient computation re-requests the same grid once per target
        state, and measures sharing one evaluator alternate between a few
        grids.

        The *result* still scales as ``O(n_s · nnz)``: callers handling
        large kernels should block their s-grid (see
        :class:`~repro.smp.passage.SPointPolicy.block_points`) or use the
        factored engine, which never materialises per-edge data.
        """
        s_values = np.asarray(s_values, dtype=complex).ravel()
        nnz = self._indices.size
        if out is not None and out.shape != (s_values.size, nnz):
            raise ValueError("out must have shape (n_s, nnz)")
        key = s_values.tobytes()
        cached = self._batch_cache.get(key)
        if cached is not None:
            if out is not None:
                out[:] = cached
                return out
            return cached
        # A caller-owned buffer must never enter the LRU: the caller will
        # overwrite it, silently corrupting every alias in the cache.
        cacheable = out is None
        if out is None:
            out = np.empty((s_values.size, nnz), dtype=complex)
        lst_matrix = np.empty(
            (s_values.size, len(self.kernel.distributions)), dtype=complex
        )
        for k, dist in enumerate(self.kernel.distributions):
            lst_matrix[:, k] = dist.lst_batch(s_values)
        chunk = self.fill_chunk_points()
        for lo in range(0, s_values.size, chunk):
            hi = min(lo + chunk, s_values.size)
            block = out[lo:hi]
            np.take(lst_matrix[lo:hi], self._csr_dist_index, axis=1, out=block)
            block *= self._csr_probs
        if cacheable:
            self._batch_cache.put(key, out)
        return out

    def u_prime_data_batch(self, s_values, target_mask: np.ndarray) -> np.ndarray:
        """As :meth:`u_data_batch` but with the target states' rows zeroed."""
        target_mask = np.asarray(target_mask, dtype=bool)
        if target_mask.shape != (self.kernel.n_states,):
            raise ValueError("target_mask must have one boolean per state")
        data = self.u_data_batch(s_values).copy()
        data[:, target_mask[self._csr_rows]] = 0.0
        return data

    def sojourn_lst_batch(self, s_values) -> np.ndarray:
        """``(n_s, n_states)`` sojourn transforms ``h*_i(s)`` for a grid of s."""
        return np.add.reduceat(self.u_data_batch(s_values), self._indptr[:-1], axis=1)

    def row_abs_sums(self, data_batch: np.ndarray) -> np.ndarray:
        """Per-state row sums of ``|data|`` for every s-point: ``(n_s, n_states)``.

        The maximum over states bounds the per-iteration contraction of the
        iterative sum, which is what the adaptive iterative/direct policy uses
        to predict iteration counts.
        """
        return np.add.reduceat(np.abs(data_batch), self._indptr[:-1], axis=1)

    def direct_solve_structure(self) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached CSC symbolic structure of ``A = I - U K`` (Eq. 3).

        The pattern is independent of both ``s`` and the target set (targets
        only zero data), so it is assembled once per evaluator: the identity's
        coordinates are merged with ``U``'s, sorted into CSC order, and
        duplicates collapsed (a self-loop of ``U`` shares its position with
        the diagonal).  Returns ``(nnz_A, indices, indptr, diag_pos, u_pos)``
        where ``diag_pos``/``u_pos`` map the identity/U entries into the CSC
        data vector.
        """
        if getattr(self, "_a_structure", None) is None:
            n = self.kernel.n_states
            diag = np.arange(n, dtype=np.int64)
            all_rows = np.concatenate((diag, self._csr_rows))
            all_cols = np.concatenate((diag, self._indices))
            keys = all_cols * np.int64(n) + all_rows
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            a_indices = (unique_keys % n).astype(np.int32)
            col_counts = np.bincount((unique_keys // n).astype(np.int64), minlength=n)
            a_indptr = np.concatenate(([0], np.cumsum(col_counts))).astype(np.int32)
            self._a_structure = (
                int(unique_keys.size), a_indices, a_indptr, inverse[:n], inverse[n:]
            )
        return self._a_structure

    def _csc_structure(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSC view of the shared structure: (entry order, indptr, row indices)."""
        if getattr(self, "_csc_order", None) is None:
            order = np.argsort(self._indices, kind="stable")
            counts = np.bincount(self._indices, minlength=self.kernel.n_states)
            self._csc_order = order
            self._csc_indptr = np.concatenate(([0], np.cumsum(counts)))
            self._csc_rows = self._csr_rows[order]
        return self._csc_order, self._csc_indptr, self._csc_rows

    def block_diag_matrix(self, data_batch: np.ndarray, *, transpose: bool = False):
        """``block_diag(M(s_1), ..., M(s_k))`` as one CSR matrix.

        The batched iterative loops run one C-level sparse matvec per
        iteration on this operator instead of ``k`` separate products (or a
        Python-level gather/segment-sum), which is what makes grid-sized
        batches cheaper than the scalar loop even when each point converges
        quickly.  With ``transpose=True`` the blocks are ``M(s_t)^T``, so a
        single matvec computes every row-form product ``v_t @ M(s_t)``.
        """
        from scipy import sparse as _sparse

        k, nnz = data_batch.shape
        n = self.kernel.n_states
        offsets_e = (np.arange(k, dtype=np.int64) * nnz)[:, None]
        offsets_s = (np.arange(k, dtype=np.int64) * n)[:, None]
        if transpose:
            order, indptr, rows = self._csc_structure()
            data = data_batch[:, order].ravel()
            indices = (rows[None, :] + offsets_s).ravel()
            block_indptr = indptr
        else:
            data = np.ascontiguousarray(data_batch).ravel()
            indices = (self._indices[None, :] + offsets_s).ravel()
            block_indptr = self._indptr
        big_indptr = np.append(
            (block_indptr[None, :-1] + offsets_e).ravel(), k * nnz
        )
        return _sparse.csr_matrix(
            (data, indices, big_indptr), shape=(k * n, k * n), copy=False
        )

    def alpha_vec_matrix_batch(self, alpha: np.ndarray, data_batch: np.ndarray) -> np.ndarray:
        """``out[t] = alpha @ M(s_t)`` for one shared row vector ``alpha``.

        The batched engines start every s-point from the same source
        weighting, so the product only needs the entries whose *source row*
        carries alpha weight — for the typical single-source passage measure
        that is a handful of transitions rather than the whole kernel.
        """
        alpha = np.asarray(alpha, dtype=complex)
        weights = alpha[self._csr_rows]
        sel = np.flatnonzero(weights != 0)
        out = np.zeros((data_batch.shape[0], self.kernel.n_states), dtype=complex)
        if sel.size == 0:
            return out
        cols = self._indices[sel]
        contrib = data_batch[:, sel] * weights[sel]
        order = np.argsort(cols, kind="stable")
        sorted_cols = cols[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_cols)) + 1))
        out[:, sorted_cols[starts]] = np.add.reduceat(contrib[:, order], starts, axis=1)
        return out

    def matrix_vec_batch(self, data_batch: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Column-form batched product: ``out[t] = M(s_t) @ x[t]``.

        Every state has at least one outgoing transition (enforced at kernel
        construction), so the CSR row segments are all non-empty and a single
        ``reduceat`` over ``indptr`` performs all row reductions at once.
        """
        contrib = data_batch * x[:, self._indices]
        return np.add.reduceat(contrib, self._indptr[:-1], axis=1)
