"""Incremental construction of :class:`~repro.smp.kernel.SMPKernel` instances."""
from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..distributions import Distribution, Mixture
from ..utils.validation import check_probability_vector, require
from .kernel import SMPKernel

__all__ = ["SMPBuilder"]


class SMPBuilder:
    """Builds an SMP kernel transition by transition.

    States may be referred to by integer index (``add_transition(0, 3, ...)``)
    or created by name (``add_state("idle")``).  Parallel transitions between
    the same pair of states are merged automatically into a single transition
    whose probability is the sum and whose sojourn distribution is the
    probability-weighted :class:`~repro.distributions.Mixture` — exactly the
    semantics of competing SM-SPN transitions mapped onto one kernel entry.
    """

    def __init__(self, n_states: int | None = None):
        self._explicit_n_states = n_states
        self._names: list[str] = []
        self._name_to_index: dict[str, int] = {}
        # (src, dst) -> list of (prob, Distribution)
        self._entries: dict[tuple[int, int], list[tuple[float, Distribution]]] = defaultdict(list)
        self._max_index = -1

    # -------------------------------------------------------------- states
    def add_state(self, name: str | None = None) -> int:
        """Register a new state, optionally named, and return its index."""
        index = len(self._names)
        if self._explicit_n_states is not None and index >= self._explicit_n_states:
            raise ValueError("more states added than declared in n_states")
        if name is None:
            name = str(index)
        if name in self._name_to_index:
            raise ValueError(f"duplicate state name {name!r}")
        self._names.append(name)
        self._name_to_index[name] = index
        self._max_index = max(self._max_index, index)
        return index

    def state(self, ref: int | str) -> int:
        """Resolve a state reference (index or name) to an index.

        Referring to an unseen *name* registers it on the fly (so small models
        can be written as a flat list of ``add_transition`` calls); integer
        references never create states.
        """
        if isinstance(ref, str):
            if ref not in self._name_to_index:
                return self.add_state(ref)
            return self._name_to_index[ref]
        index = int(ref)
        require(index >= 0, "state indices must be non-negative")
        self._max_index = max(self._max_index, index)
        return index

    # --------------------------------------------------------- transitions
    def add_transition(
        self,
        src: int | str,
        dst: int | str,
        probability: float,
        sojourn: Distribution,
    ) -> "SMPBuilder":
        """Add a transition ``src -> dst`` taken with ``probability`` after ``sojourn``."""
        if not isinstance(sojourn, Distribution):
            raise TypeError("sojourn must be a Distribution")
        probability = float(probability)
        require(probability >= 0.0, "transition probability must be non-negative")
        if probability == 0.0:
            return self
        i, j = self.state(src), self.state(dst)
        self._entries[(i, j)].append((probability, sojourn))
        return self

    # -------------------------------------------------------------- build
    @property
    def n_states(self) -> int:
        if self._explicit_n_states is not None:
            return self._explicit_n_states
        return self._max_index + 1

    def build(self, *, normalise: bool = False) -> SMPKernel:
        """Assemble the kernel.

        Parameters
        ----------
        normalise:
            When true, each state's outgoing probabilities are rescaled to sum
            to one (useful when transitions carry raw weights rather than
            probabilities, as in SM-SPN reachability graphs).
        """
        if not self._entries:
            raise ValueError("no transitions have been added")
        n = self.n_states

        src, dst, probs, dists = [], [], [], []
        for (i, j), branches in sorted(self._entries.items()):
            total = float(sum(p for p, _ in branches))
            if total == 0.0:
                continue
            if len(branches) == 1:
                dist = branches[0][1]
            else:
                weights = check_probability_vector(
                    [p for p, _ in branches], "parallel transition weights", normalise=True
                )
                dist = Mixture([d for _, d in branches], weights)
            src.append(i)
            dst.append(j)
            probs.append(total)
            dists.append(dist)

        probs_arr = np.asarray(probs, dtype=float)
        src_arr = np.asarray(src, dtype=np.int64)
        if normalise:
            row_sums = np.bincount(src_arr, weights=probs_arr, minlength=n)
            zero_rows = np.where(row_sums == 0.0)[0]
            if zero_rows.size:
                raise ValueError(
                    f"cannot normalise: states {zero_rows[:10].tolist()} have no outgoing weight"
                )
            probs_arr = probs_arr / row_sums[src_arr]

        # Deduplicate distribution objects (structural equality).
        unique: list[Distribution] = []
        index_of: dict[Distribution, int] = {}
        dist_index = np.empty(len(dists), dtype=np.int64)
        for k, d in enumerate(dists):
            if d not in index_of:
                index_of[d] = len(unique)
                unique.append(d)
            dist_index[k] = index_of[d]

        names = None
        if self._names:
            names = list(self._names) + [str(i) for i in range(len(self._names), n)]
        return SMPKernel(
            n,
            src_arr,
            np.asarray(dst, dtype=np.int64),
            probs_arr,
            dist_index,
            unique,
            state_names=names,
        )
