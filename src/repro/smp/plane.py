"""Shared-memory kernel plane: one kernel image, many worker processes.

The distributed pipeline's unit of dispatch is an s-block, but every block
needs the *same* read-only inputs: the kernel's CSR projection (the arrays a
:class:`~repro.smp.kernel.UEvaluator` works from) and, for the factored
engine, the per-distribution pair slices.  Pickling those into each worker
would copy a 5.9M-edge kernel once per process — the scalar-era behaviour
this module removes.

A :class:`KernelPlane` serialises the arrays once into a single contiguous
buffer — a POSIX shared-memory segment for same-host pools, or an mmap'd
file under the checkpoint directory for `semimarkov serve` worker fleets —
and hands out a tiny picklable :class:`PlaneHandle`.  ``handle.attach()``
reconstructs a fully functional :class:`~repro.smp.kernel.SMPKernel` /
:class:`~repro.smp.kernel.UEvaluator` (factored slices prefilled) whose
arrays are zero-copy views straight into the buffer: attaching costs one
header unpickle regardless of kernel size, and N workers share one physical
copy of the kernel.

Layout::

    magic  "SMPPLANE1"
    u64    header length (little endian)
    bytes  pickled header {n_states, digest, distributions, factored, arrays}
    ...    64-byte-aligned array payload (offsets recorded in the header)

Only the distribution objects travel through pickle — a handful of small
parameter holders — never the edge arrays.
"""
from __future__ import annotations

import contextlib
import mmap
import os
import pickle
import struct
import tempfile
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
from scipy import sparse

from .. import faults
from ..obs.metrics import note_corrupt_artifact
from .factored import FactoredUEvaluator, _ColStructure
from .kernel import SMPKernel, UEvaluator, kernel_content_digest

__all__ = [
    "KernelPlane",
    "PlaneHandle",
    "PlaneIntegrityError",
    "AttachedPlane",
    "PlaneStore",
]


class PlaneIntegrityError(ValueError):
    """A plane's payload does not match the checksum recorded in its header."""

_MAGIC = b"SMPPLANE1"
_ALIGN = 64

#: arrays always exported: the CSR projection a UEvaluator runs on
_CSR_ARRAYS = ("indptr", "indices", "csr_probs", "csr_dist_index", "csr_rows")


def _align_up(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _collect_arrays(evaluator: UEvaluator, include_factored: bool) -> dict:
    arrays = {
        "indptr": evaluator._indptr,
        "indices": evaluator._indices,
        "csr_probs": evaluator._csr_probs,
        "csr_dist_index": evaluator._csr_dist_index,
        "csr_rows": evaluator._csr_rows,
    }
    if include_factored:
        factored = evaluator.factored()
        pair_src, pair_dist, pair_of_edge = factored._row_pairs()
        col = factored.col_structure()
        arrays.update(
            pair_src=pair_src,
            pair_dist=pair_dist,
            pair_of_edge=pair_of_edge,
            col_pair_dst=col.pair_dst,
            col_pair_dist=col.pair_dist,
            col_indptr=col.matrix.indptr,
            col_indices=col.matrix.indices,
            col_data=col.matrix.data,
            dist_row_sums=factored.dist_row_sums(),
        )
    return {name: np.ascontiguousarray(a) for name, a in arrays.items()}


def _plan(evaluator: UEvaluator, include_factored: bool):
    """Lay the arrays out and pickle the header; returns everything build needs."""
    arrays = _collect_arrays(evaluator, include_factored)
    entries = []
    offset = 0
    crc = 0
    for name, a in arrays.items():
        offset = _align_up(offset)
        entries.append((name, a.dtype.str, a.shape, offset))
        offset += a.nbytes
        crc = zlib.crc32(a.data, crc)
    header = {
        "n_states": evaluator.kernel.n_states,
        "digest": kernel_content_digest(evaluator.kernel),
        "distributions": evaluator.kernel.distributions,
        "factored": bool(include_factored),
        "arrays": entries,
        "payload_bytes": offset,
        # CRC32 over the array bytes in layout order (alignment gaps are not
        # covered — they are never read); verified on every attach.
        "crc32": crc,
    }
    header_bytes = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    payload_start = _align_up(len(_MAGIC) + 8 + len(header_bytes))
    total = payload_start + offset
    return arrays, entries, header_bytes, payload_start, total


def _write_into(buf, arrays, entries, header_bytes, payload_start) -> None:
    """Fill ``buf`` with the plane image.

    All numpy views over ``buf`` are local to this function so the caller
    can close the backing afterwards without dangling exports.
    """
    buf[: len(_MAGIC)] = _MAGIC
    struct.pack_into("<Q", buf, len(_MAGIC), len(header_bytes))
    start = len(_MAGIC) + 8
    buf[start : start + len(header_bytes)] = header_bytes
    for (name, dtype, shape, offset), a in zip(entries, arrays.values()):
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf,
                          offset=payload_start + offset)
        view[...] = a
        del view


def _read_header(buf) -> tuple[dict, int]:
    if bytes(buf[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a kernel plane (bad magic)")
    (header_len,) = struct.unpack_from("<Q", buf, len(_MAGIC))
    start = len(_MAGIC) + 8
    header = pickle.loads(bytes(buf[start : start + header_len]))
    return header, _align_up(start + header_len)


def _verify_payload(buf, header: dict, payload_start: int) -> None:
    """Check the payload CRC recorded at build time (pre-checksum planes pass)."""
    expected = header.get("crc32")
    if expected is None:
        return
    crc = 0
    for _, dtype, shape, offset in header["arrays"]:
        nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        start = payload_start + offset
        crc = zlib.crc32(buf[start : start + nbytes], crc)
    if crc != expected:
        raise PlaneIntegrityError(
            f"kernel plane payload checksum mismatch for digest "
            f"{header.get('digest', '?')[:12]} (stored {expected:#010x}, "
            f"computed {crc:#010x})"
        )


class AttachedPlane:
    """A kernel plane mapped into this process: views + reconstructed objects.

    ``kernel`` / ``evaluator`` are ordinary :class:`SMPKernel` /
    :class:`UEvaluator` objects whose arrays alias the plane buffer
    (``OWNDATA`` is false on every one of them); the factored engine, when
    exported, is prefilled the same way.  Keep the object alive for as long
    as the evaluator is in use — it owns the mapping.
    """

    def __init__(self, buf, owner, header: dict, payload_start: int):
        self._owner = owner  # the SharedMemory or mmap keeping the buffer alive
        self._buf = buf
        self.digest: str = header["digest"]
        self.factored: bool = header["factored"]
        n = header["n_states"]
        self.arrays: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in header["arrays"]:
            self.arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf,
                offset=payload_start + offset,
            )
        v = self.arrays
        self.kernel = SMPKernel._from_csr(
            n, v["indptr"], v["indices"], v["csr_probs"], v["csr_dist_index"],
            v["csr_rows"], header["distributions"], content_digest=self.digest,
        )
        self.evaluator = UEvaluator._from_parts(
            self.kernel, v["indptr"], v["indices"], v["csr_probs"],
            v["csr_dist_index"], v["csr_rows"],
        )
        if self.factored:
            factored = FactoredUEvaluator(self.evaluator)
            factored._row_pair_cache = (
                v["pair_src"], v["pair_dist"], v["pair_of_edge"],
            )
            factored._row_pair_count = int(v["pair_src"].size)
            factored._dist_row_sums = v["dist_row_sums"]
            col = _ColStructure.__new__(_ColStructure)
            col.pair_dst = v["col_pair_dst"]
            col.pair_dist = v["col_pair_dist"]
            col.n_pairs = int(v["col_pair_dst"].size)
            col.matrix = sparse.csr_matrix(
                (v["col_data"], v["col_indices"], v["col_indptr"]),
                shape=(n, col.n_pairs), copy=False,
            )
            factored._col_structure = col
            self.evaluator._factored = factored

    def close(self) -> None:
        """Drop the views and release the mapping (best effort).

        A worker that holds live evaluator references cannot fully release a
        shared-memory buffer (numpy exports pin it); process exit reclaims it
        regardless, so ``BufferError`` here is ignored.
        """
        self.arrays.clear()
        self.kernel = self.evaluator = None
        self._buf = None
        owner, self._owner = self._owner, None
        if owner is not None:
            try:
                owner.close()
            except BufferError:
                pass


@dataclass(frozen=True)
class PlaneHandle:
    """A picklable reference to a built plane — bytes, not arrays.

    ``kind`` is ``"shm"`` (ref is a POSIX shared-memory name) or ``"file"``
    (ref is a path).  This is all that ever crosses a process boundary.
    """

    kind: str
    ref: str

    def attach(self) -> AttachedPlane:
        faults.fire("plane.attach", kind=self.kind, ref=self.ref)
        if self.kind == "shm":
            # Python's resource tracker registers the segment on *attach*
            # (not just create) and would unlink it when the first attaching
            # process exits, yanking the plane out from under every sibling
            # worker and the owner (bpo-38119).  Ownership stays with the
            # builder: suppress registration for the duration of the attach.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _register_except_shm(name, rtype):
                if rtype != "shared_memory":
                    original_register(name, rtype)

            resource_tracker.register = _register_except_shm
            try:
                shm = shared_memory.SharedMemory(name=self.ref)
            finally:
                resource_tracker.register = original_register
            buf = shm.buf
            try:
                header, payload_start = _read_header(buf)
                _verify_payload(buf, header, payload_start)
            except BaseException:
                shm.close()
                raise
            return AttachedPlane(buf, shm, header, payload_start)
        if self.kind == "file":
            with open(self.ref, "rb") as f:
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            buf = memoryview(mapped)
            try:
                header, payload_start = _read_header(buf)
                _verify_payload(buf, header, payload_start)
            except BaseException:
                buf.release()
                mapped.close()
                raise
            return AttachedPlane(buf, mapped, header, payload_start)
        raise ValueError(f"unknown plane backing {self.kind!r}")


class KernelPlane:
    """Owner side of a plane: builds the buffer and controls its lifetime."""

    def __init__(self, handle: PlaneHandle, digest: str, nbytes: int, shm=None):
        self._handle = handle
        self.digest = digest
        self.nbytes = nbytes
        self._shm = shm
        self._unlinked = False
        if shm is not None:
            # Belt and braces: if the owner forgets to unlink, reclaim the
            # segment at GC / interpreter exit instead of leaking /dev/shm.
            self._finalizer = weakref.finalize(self, KernelPlane._reclaim, shm)
        else:
            self._finalizer = None

    @staticmethod
    def _reclaim(shm) -> None:  # pragma: no cover - exit-path safety net
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass

    @classmethod
    def build(
        cls,
        evaluator: UEvaluator,
        *,
        backing: str = "shm",
        path: str | os.PathLike | None = None,
        include_factored: bool | None = None,
    ) -> "KernelPlane":
        """Serialise ``evaluator``'s kernel into a shared buffer.

        ``include_factored=None`` exports the factored slices only when the
        evaluator has already built its factored engine (callers that know
        the resolved engine pass an explicit bool).  ``backing="file"``
        writes atomically to ``path`` (temp file + rename), so concurrent
        exporters of the same digest are safe.
        """
        if include_factored is None:
            include_factored = getattr(evaluator, "_factored", None) is not None
        arrays, entries, header_bytes, payload_start, total = _plan(
            evaluator, include_factored
        )
        digest = kernel_content_digest(evaluator.kernel)
        faults.fire("plane.export", digest=digest, backing=backing)
        if backing == "shm":
            shm = shared_memory.SharedMemory(create=True, size=total)
            _write_into(shm.buf, arrays, entries, header_bytes, payload_start)
            faults.corrupt_buffer(
                "plane.export", shm.buf, start=payload_start, digest=digest
            )
            return cls(PlaneHandle("shm", shm.name), digest, total, shm=shm)
        if backing == "file":
            if path is None:
                raise ValueError("file backing requires a path")
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".plane.tmp")
            try:
                with os.fdopen(fd, "r+b") as f:
                    f.truncate(total)
                    mapped = mmap.mmap(f.fileno(), total, access=mmap.ACCESS_WRITE)
                    try:
                        _write_into(mapped, arrays, entries, header_bytes,
                                    payload_start)
                        faults.corrupt_buffer(
                            "plane.export", mapped, start=payload_start,
                            digest=digest,
                        )
                        mapped.flush()
                    finally:
                        mapped.close()
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return cls(PlaneHandle("file", str(path)), digest, total)
        raise ValueError(f"unknown plane backing {backing!r}")

    def handle(self) -> PlaneHandle:
        return self._handle

    def close(self) -> None:
        """Release the owner's mapping (shm only; file planes live on disk)."""
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - no owner-side views exist
                pass

    def unlink(self) -> None:
        """Destroy the backing.  Safe to call more than once."""
        if self._unlinked:
            return
        self._unlinked = True
        if self._finalizer is not None:
            self._finalizer.detach()
        if self._shm is not None:
            self.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        elif self._handle.kind == "file":
            try:
                os.unlink(self._handle.ref)
            except FileNotFoundError:
                pass


class PlaneStore:
    """Content-addressed plane files under a directory (``<digest>.<eng>.plane``).

    The file-backed sibling of the shm path: `semimarkov serve` exports each
    registered kernel once, and worker processes — including ones started
    later, or on a checkpoint-sharing host — attach by digest.  Export is
    idempotent and atomic; the factored and csr-only variants of one kernel
    coexist because their filenames differ.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str, *, factored: bool = False) -> Path:
        return self.directory / f"{digest}.{'fac' if factored else 'csr'}.plane"

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a failed-integrity plane aside so the digest rebuilds fresh."""
        with contextlib.suppress(OSError):
            os.replace(path, path.with_name(path.name + ".corrupt"))
        note_corrupt_artifact("plane")

    @classmethod
    def _valid(cls, path: Path) -> bool:
        """Integrity-check an existing plane file; quarantines on failure.

        Export idempotence reuses a file that is already on disk, so a
        corrupted plane would otherwise be re-served forever — to the
        exporter *and* to every worker attaching by digest.
        """
        try:
            with open(path, "rb") as f:
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                buf = memoryview(mapped)
                try:
                    header, payload_start = _read_header(buf)
                    _verify_payload(buf, header, payload_start)
                finally:
                    buf.release()
            finally:
                mapped.close()
        except Exception:  # truncated/garbled files fail header or CRC reads
            cls._quarantine(path)
            return False
        return True

    def export(
        self, evaluator: UEvaluator, *, include_factored: bool | None = None
    ) -> PlaneHandle:
        if include_factored is None:
            include_factored = getattr(evaluator, "_factored", None) is not None
        digest = kernel_content_digest(evaluator.kernel)
        path = self.path_for(digest, factored=include_factored)
        if not path.exists() or not self._valid(path):
            KernelPlane.build(
                evaluator, backing="file", path=path,
                include_factored=include_factored,
            )
        return PlaneHandle("file", str(path))

    def attach(self, digest: str, *, factored: bool = False) -> AttachedPlane:
        path = self.path_for(digest, factored=factored)
        if not path.exists() and not factored:
            # A factored export is a superset: fall back to it.
            path = self.path_for(digest, factored=True)
        if not path.exists():
            raise FileNotFoundError(f"no plane exported for digest {digest}")
        try:
            return PlaneHandle("file", str(path)).attach()
        except PlaneIntegrityError:
            self._quarantine(path)
            raise FileNotFoundError(
                f"plane for digest {digest} failed its checksum and was "
                f"quarantined; re-export it"
            ) from None

    def digests(self) -> list[str]:
        return sorted({p.name.split(".")[0] for p in self.directory.glob("*.plane")})

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.directory.glob("*.plane"))
