"""SM-SPN net structure: places, markings and marking-dependent transitions.

Formally (paper Section 5.1) an SM-SPN is a 4-tuple ``(PN, P, W, D)`` where
``PN`` is a place–transition net and ``P``, ``W``, ``D`` attach a
marking-dependent priority, weight and firing-time CDF to every transition.
Here all three are plain Python callables of the current marking (constants
are accepted and wrapped), the net-enabling function follows the usual token
rule, and an optional extra *guard* and *action* allow the DNAmaca-style
conditions (``p7 > MM-1``) and bulk token moves (``next->p3 = p3 + MM``) that
the paper's specification language expresses.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..distributions import Distribution
from ..utils.validation import require

__all__ = ["MarkingView", "Transition", "SMSPN"]


class MarkingView(Mapping):
    """Read-only, name-indexed view of a marking tuple.

    Guard / weight / priority / distribution callables receive one of these,
    so model code can be written as ``m["p7"] >= m.net_constant`` style
    expressions without caring about place ordering.
    """

    __slots__ = ("_tokens", "_index")

    def __init__(self, tokens: tuple[int, ...], index: Mapping[str, int]):
        self._tokens = tokens
        self._index = index

    def __getitem__(self, place: str) -> int:
        return self._tokens[self._index[place]]

    def __iter__(self):
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def tokens(self) -> tuple[int, ...]:
        return self._tokens

    def as_dict(self) -> dict[str, int]:
        return {name: self._tokens[i] for name, i in self._index.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"MarkingView({inner})"


def _as_callable(value, kind: str):
    """Wrap constants into callables; pass callables through."""
    if callable(value):
        return value
    if kind == "priority":
        fixed = int(value)
        return lambda m: fixed
    if kind == "weight":
        fixed = float(value)
        return lambda m: fixed
    if kind == "distribution":
        if not isinstance(value, Distribution):
            raise TypeError("distribution must be a Distribution or a callable returning one")
        return lambda m: value
    raise ValueError(f"unknown attribute kind {kind!r}")  # pragma: no cover


def _expression_callable(source: str, constants: Mapping[str, float], kind: str):
    """Compile an expression-string attribute into a per-marking callable.

    The same :class:`~repro.dnamaca.expressions.SafeExpression` drives both
    this scalar path and the vectorized explorer, so declaring an attribute
    as a string gives one semantics with two execution strategies.
    """
    from ..dnamaca.expressions import SafeExpression  # deferred: avoids an import cycle

    expr = SafeExpression(source)
    if kind == "guard":
        return lambda m: bool(expr.evaluate({**constants, **m.as_dict()}))
    if kind == "weight":
        return lambda m: float(expr.evaluate({**constants, **m.as_dict()}))
    if kind == "priority":
        return lambda m: int(round(expr.evaluate({**constants, **m.as_dict()})))
    raise ValueError(f"unknown attribute kind {kind!r}")  # pragma: no cover


@dataclass
class Transition:
    """One SM-SPN transition.

    Attributes
    ----------
    name:
        Identifier used in state-space statistics and error messages.
    inputs / outputs:
        Arc multiplicities by place name.  ``inputs`` both gate the enabling
        (every input place needs at least that many tokens) and are consumed
        on firing; ``outputs`` are produced on firing.
    guard:
        Optional extra marking predicate (DNAmaca ``\\condition``); a
        transition is *net-enabled* when its input arcs are satisfied and the
        guard holds.  May be a callable *or* a condition expression string
        (``"p7 > MM - 1"``) over places and :attr:`constants` — string
        attributes are the *declarative* form the vectorized explorer can
        compile to one batched NumPy evaluation per frontier.
    action:
        Optional marking transformer replacing the default arc semantics
        (DNAmaca ``\\action``); either a callable receiving a
        :class:`MarkingView` and returning the next marking as a mapping from
        place name to token count for the places it changes (unchanged places
        may be omitted), or the declarative form — a mapping from place name
        to an expression string (``{"p3": "p3 + MM"}``), all right-hand sides
        evaluated against the *pre-firing* marking.
    priority / weight / distribution:
        Marking-dependent attributes (constants allowed; priority and weight
        also accept expression strings).
    constants:
        Named values available inside expression-string attributes.
    distribution_depends:
        When ``distribution`` is a callable, the places its result actually
        depends on.  The vectorized explorer then evaluates it once per
        distinct combination of those token counts instead of once per state;
        ``None`` means "unknown" (assume it may depend on the whole marking).
    """

    name: str
    inputs: dict[str, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)
    guard: Callable[[MarkingView], bool] | str | None = None
    action: Callable[[MarkingView], Mapping[str, int]] | Mapping[str, str] | None = None
    priority: Callable[[MarkingView], int] | int | str = 0
    weight: Callable[[MarkingView], float] | float | str = 1.0
    distribution: Callable[[MarkingView], Distribution] | Distribution | None = None
    constants: Mapping[str, float] | None = None
    distribution_depends: Sequence[str] | None = None

    def __post_init__(self):
        require(bool(self.name), "transitions need a non-empty name")
        if self.distribution is None:
            raise ValueError(f"transition {self.name!r} needs a firing-time distribution")
        if not self.inputs and self.guard is None:
            raise ValueError(
                f"transition {self.name!r} needs input arcs and/or a guard to define enabling"
            )
        bound = dict(self.constants or {})
        self._bound_constants = bound
        if self.distribution_depends is not None:
            self.distribution_depends = tuple(str(p) for p in self.distribution_depends)

        # Declarative (expression-string) attributes keep their source text so
        # the vectorized explorer can compile them; the scalar callables below
        # are the reference semantics used by explore(), firing_choices() and
        # the simulator.
        self.guard_source: str | None = None
        self.action_source: dict[str, str] | None = None
        self.weight_source: str | None = None
        self.priority_source: str | None = None

        if isinstance(self.guard, str):
            self.guard_source = self.guard
            self._guard_fn = _expression_callable(self.guard, bound, "guard")
        else:
            self._guard_fn = self.guard

        if isinstance(self.action, Mapping):
            from ..dnamaca.expressions import SafeExpression  # deferred import

            sources = {str(place): str(expr) for place, expr in self.action.items()}
            compiled = [(place, SafeExpression(expr)) for place, expr in sources.items()]
            self.action_source = sources

            def _action(m, _compiled=compiled, _bound=bound):
                env = {**_bound, **m.as_dict()}
                return {place: int(round(expr.evaluate(env))) for place, expr in _compiled}

            self._action_fn = _action
        else:
            self._action_fn = self.action

        if isinstance(self.priority, str):
            self.priority_source = self.priority
            self._priority_fn = _expression_callable(self.priority, bound, "priority")
        else:
            self._priority_fn = _as_callable(self.priority, "priority")
        if isinstance(self.weight, str):
            self.weight_source = self.weight
            self._weight_fn = _expression_callable(self.weight, bound, "weight")
        else:
            self._weight_fn = _as_callable(self.weight, "weight")
        self._distribution_fn = _as_callable(self.distribution, "distribution")

    # ----------------------------------------------------------- semantics
    def net_enabled(self, view: MarkingView) -> bool:
        """Token rule plus optional guard (the paper's ``EN`` membership)."""
        for place, count in self.inputs.items():
            if view[place] < count:
                return False
        if self._guard_fn is not None and not self._guard_fn(view):
            return False
        return True

    def priority_in(self, view: MarkingView) -> int:
        return int(self._priority_fn(view))

    def weight_in(self, view: MarkingView) -> float:
        w = float(self._weight_fn(view))
        if w < 0:
            raise ValueError(f"transition {self.name!r} produced a negative weight")
        return w

    def distribution_in(self, view: MarkingView) -> Distribution:
        dist = self._distribution_fn(view)
        if not isinstance(dist, Distribution):
            raise TypeError(
                f"transition {self.name!r}'s distribution callable returned {type(dist).__name__}"
            )
        return dist

    def fire(self, view: MarkingView, place_index: Mapping[str, int]) -> tuple[int, ...]:
        """The marking reached by firing this transition."""
        tokens = list(view.tokens)
        if self._action_fn is not None:
            updates = self._action_fn(view)
            for place, value in updates.items():
                if place not in place_index:
                    raise KeyError(f"action of {self.name!r} writes unknown place {place!r}")
                tokens[place_index[place]] = int(value)
        else:
            for place, count in self.inputs.items():
                tokens[place_index[place]] -= count
            for place, count in self.outputs.items():
                tokens[place_index[place]] += count
        if any(t < 0 for t in tokens):
            raise ValueError(
                f"firing {self.name!r} produced a negative marking {tuple(tokens)}"
            )
        return tuple(tokens)


class SMSPN:
    """A semi-Markov stochastic Petri net."""

    def __init__(self, name: str = "sm-spn"):
        self.name = name
        self.places: list[str] = []
        self._place_index: dict[str, int] = {}
        self.transitions: list[Transition] = []
        self._initial: dict[str, int] = {}

    # ------------------------------------------------------------ building
    def add_place(self, name: str, initial_tokens: int = 0) -> "SMSPN":
        if name in self._place_index:
            raise ValueError(f"duplicate place {name!r}")
        require(initial_tokens >= 0, "initial tokens must be non-negative")
        self._place_index[name] = len(self.places)
        self.places.append(name)
        self._initial[name] = int(initial_tokens)
        return self

    def add_transition(self, transition: Transition) -> "SMSPN":
        if any(t.name == transition.name for t in self.transitions):
            raise ValueError(f"duplicate transition {transition.name!r}")
        for place in list(transition.inputs) + list(transition.outputs):
            if place not in self._place_index:
                raise KeyError(f"transition {transition.name!r} references unknown place {place!r}")
        self.transitions.append(transition)
        return self

    def set_initial(self, **tokens: int) -> "SMSPN":
        for place, count in tokens.items():
            if place not in self._place_index:
                raise KeyError(f"unknown place {place!r}")
            require(count >= 0, "initial tokens must be non-negative")
            self._initial[place] = int(count)
        return self

    # ------------------------------------------------------------- queries
    @property
    def place_index(self) -> Mapping[str, int]:
        return dict(self._place_index)

    @property
    def initial_marking(self) -> tuple[int, ...]:
        return tuple(self._initial[p] for p in self.places)

    def view(self, marking: Sequence[int]) -> MarkingView:
        marking = tuple(int(t) for t in marking)
        if len(marking) != len(self.places):
            raise ValueError("marking length does not match the number of places")
        return MarkingView(marking, self._place_index)

    # ----------------------------------------------------------- semantics
    def enabled_transitions(self, marking: Sequence[int]) -> list[Transition]:
        """``EP(m)``: net-enabled transitions of maximal priority."""
        view = self.view(marking)
        enabled = [t for t in self.transitions if t.net_enabled(view)]
        if not enabled:
            return []
        top = max(t.priority_in(view) for t in enabled)
        return [t for t in enabled if t.priority_in(view) == top]

    def firing_choices(
        self, marking: Sequence[int]
    ) -> list[tuple[Transition, float, tuple[int, ...], Distribution]]:
        """All ``(transition, probability, next marking, sojourn)`` choices from ``marking``.

        The probability of each priority-enabled transition is its weight
        normalised over the weights of all priority-enabled transitions —
        the probabilistic (non-race) selection of the SM-SPN semantics.
        """
        view = self.view(marking)
        candidates = self.enabled_transitions(marking)
        if not candidates:
            return []
        weights = [t.weight_in(view) for t in candidates]
        total = sum(weights)
        if total <= 0:
            raise ValueError(
                f"no positive firing weight in marking {tuple(marking)} "
                f"(enabled: {[t.name for t in candidates]})"
            )
        choices = []
        for t, w in zip(candidates, weights):
            if w == 0.0:
                continue
            next_marking = t.fire(view, self._place_index)
            choices.append((t, w / total, next_marking, t.distribution_in(view)))
        return choices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SMSPN({self.name!r}, places={len(self.places)}, "
            f"transitions={len(self.transitions)})"
        )

