"""Elimination of vanishing markings (zero-delay states).

The paper notes that SPNs and GSPNs translate into the SM-SPN paradigm in a
straightforward manner.  A GSPN's *immediate* transitions become SM-SPN
transitions with an :class:`~repro.distributions.Immediate` (zero) firing
time; the markings in which such a transition fires are *vanishing* — the
process spends no time in them — and keeping them in the semi-Markov kernel
both wastes states and breaks measures that count "time spent in ...".

:func:`eliminate_vanishing` removes those markings from a reachability graph
by folding their branching probabilities into their predecessors: an edge
``u --(p, H)--> v`` into a vanishing marking ``v`` with outgoing branches
``v --(q_j, 0)--> w_j`` is replaced by edges ``u --(p q_j, H)--> w_j``.  The
sojourn distribution of the replacement edge is the original (timed) one, so
passage times through chains of immediate firings are preserved exactly.
Cycles of vanishing markings (a zero-time loop) are rejected.
"""
from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..distributions import Distribution
from ..utils.arrays import ragged_take
from .reachability import ReachabilityGraph
from .statespace import StateSpace

__all__ = ["eliminate_vanishing", "is_vanishing_distribution"]


def is_vanishing_distribution(dist: Distribution) -> bool:
    """True when the sojourn carries no time at all (an immediate firing)."""
    try:
        return dist.mean() == 0.0 and dist.variance() == 0.0
    except NotImplementedError:
        return False


def _vanishing_states(graph: ReachabilityGraph) -> set[int]:
    """States all of whose outgoing edges are immediate firings."""
    outgoing: dict[int, list[bool]] = defaultdict(list)
    for src, _, _, dist, _ in graph.edges:
        outgoing[src].append(is_vanishing_distribution(dist))
    return {state for state, flags in outgoing.items() if flags and all(flags)}


def _eliminate_vanishing_arrays(space: StateSpace, *, max_chain: int = 500) -> StateSpace:
    """Vanishing elimination in the array domain (no per-edge Python tuples).

    The vanishing test costs one pass over the *unique* distribution table
    plus two ``bincount`` calls; edge redistribution is a vectorized
    gather/``repeat`` expansion followed by a grouped ``(src, dst,
    transition)`` reduction.  Only the per-vanishing-state resolution (the
    transitive closure of immediate branches) stays in Python — it touches
    vanishing states only, never the tangible bulk.
    """
    dist_vanishes = np.asarray(
        [is_vanishing_distribution(d) for d in space.distributions], dtype=bool
    )
    edge_vanishes = dist_vanishes[space.edge_dist]
    out_degree = np.bincount(space.edge_src, minlength=space.n_states)
    vanishing_out = np.bincount(
        space.edge_src[edge_vanishes], minlength=space.n_states
    )
    vanishing = (out_degree > 0) & (out_degree == vanishing_out)
    if not vanishing.any():
        return space
    if vanishing[space.initial_state]:
        raise ValueError(
            "the initial marking is vanishing (only immediate transitions are "
            "enabled there); give the model a timed initial activity first"
        )

    # Branch lists of vanishing states, in edge order (parity with the legacy
    # per-edge walk).
    from_vanishing = vanishing[space.edge_src]
    branch_src = space.edge_src[from_vanishing]
    branch_dst = space.edge_dst[from_vanishing]
    branch_prob = space.edge_prob[from_vanishing]
    by_src = np.argsort(branch_src, kind="stable")
    branch_src, branch_dst, branch_prob = (
        branch_src[by_src], branch_dst[by_src], branch_prob[by_src],
    )
    starts = np.searchsorted(branch_src, np.flatnonzero(vanishing))
    ends = np.searchsorted(branch_src, np.flatnonzero(vanishing), side="right")
    branches = {
        int(state): (branch_dst[lo:hi], branch_prob[lo:hi])
        for state, lo, hi in zip(np.flatnonzero(vanishing), starts, ends)
    }

    resolved: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def resolve(state: int, depth: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Tangible ``(destinations, probabilities)`` reachable from ``state``."""
        if depth > max_chain:
            raise ValueError(
                "cycle of vanishing markings detected (a loop of immediate "
                "transitions with no time advance)"
            )
        hit = resolved.get(state)
        if hit is not None:
            return hit
        dsts, probs = branches[state]
        out_d, out_p = [], []
        for destination, probability in zip(dsts, probs):
            destination = int(destination)
            if vanishing[destination]:
                sub_d, sub_p = resolve(destination, depth + 1)
                out_d.append(sub_d)
                out_p.append(sub_p * probability)
            else:
                out_d.append(np.asarray([destination], dtype=np.int64))
                out_p.append(np.asarray([probability]))
        result = (
            np.concatenate(out_d) if out_d else np.empty(0, dtype=np.int64),
            np.concatenate(out_p) if out_p else np.empty(0),
        )
        resolved[state] = result
        return result

    # Flattened resolution table indexed through per-state offsets.
    vanishing_states = np.flatnonzero(vanishing)
    position_of = np.full(space.n_states, -1, dtype=np.int64)
    position_of[vanishing_states] = np.arange(vanishing_states.size)
    tables = [resolve(int(v)) for v in vanishing_states]
    table_len = np.asarray([t[0].size for t in tables], dtype=np.int64)
    table_off = np.concatenate(([0], np.cumsum(table_len)))[:-1]
    table_dst = (
        np.concatenate([t[0] for t in tables]) if tables else np.empty(0, dtype=np.int64)
    )
    table_prob = np.concatenate([t[1] for t in tables]) if tables else np.empty(0)

    # Keep tangible-source edges; expand those pointing at vanishing markings.
    keep = ~from_vanishing
    k_src, k_dst = space.edge_src[keep], space.edge_dst[keep]
    k_prob = space.edge_prob[keep]
    k_dist = space.edge_dist[keep].astype(np.int64)
    k_trans = space.edge_trans[keep].astype(np.int64)
    into_vanishing = vanishing[k_dst]

    direct = ~into_vanishing
    parts_src = [k_src[direct]]
    parts_dst = [k_dst[direct]]
    parts_prob = [k_prob[direct]]
    parts_dist = [k_dist[direct]]
    parts_trans = [k_trans[direct]]
    if into_vanishing.any():
        e_src, e_dst = k_src[into_vanishing], k_dst[into_vanishing]
        e_prob = k_prob[into_vanishing]
        e_dist, e_trans = k_dist[into_vanishing], k_trans[into_vanishing]
        counts = table_len[position_of[e_dst]]
        starts = table_off[position_of[e_dst]]
        parts_src.append(np.repeat(e_src, counts))
        parts_dst.append(ragged_take(table_dst, starts, counts))
        parts_prob.append(np.repeat(e_prob, counts) * ragged_take(table_prob, starts, counts))
        parts_dist.append(np.repeat(e_dist, counts))
        parts_trans.append(np.repeat(e_trans, counts))
    new_src = np.concatenate(parts_src)
    new_dst = np.concatenate(parts_dst)
    new_prob = np.concatenate(parts_prob)
    new_dist = np.concatenate(parts_dist)
    new_trans = np.concatenate(parts_trans)

    # Renumber over tangible states only.
    new_id = np.cumsum(~vanishing) - 1
    new_src = new_id[new_src]
    new_dst = new_id[new_dst]

    # Merge edges that folded onto the same (src, dst, transition) key.
    order = np.lexsort((new_trans, new_dst, new_src))
    new_src, new_dst, new_prob, new_dist, new_trans = (
        new_src[order], new_dst[order], new_prob[order], new_dist[order],
        new_trans[order],
    )
    is_start = np.empty(new_src.size, dtype=bool)
    is_start[0] = True
    is_start[1:] = (
        (new_src[1:] != new_src[:-1])
        | (new_dst[1:] != new_dst[:-1])
        | (new_trans[1:] != new_trans[:-1])
    )
    group_starts = np.flatnonzero(is_start)
    conflict = (~is_start[1:]) & (new_dist[1:] != new_dist[:-1])
    if conflict.any():
        e = int(np.flatnonzero(conflict)[0]) + 1
        key = (
            int(new_src[e]),
            int(new_dst[e]),
            space.transition_names[int(new_trans[e])],
        )
        raise ValueError(
            f"conflicting sojourn distributions while merging edges into {key}"
        )
    merged_prob = np.add.reduceat(new_prob, group_starts)
    merged_src = new_src[group_starts]
    merged_dst = new_dst[group_starts]
    merged_dist = new_dist[group_starts]
    merged_trans = new_trans[group_starts]

    # Compact the distribution table to the entries that survived.
    used, compact_index = np.unique(merged_dist, return_inverse=True)
    distributions = [space.distributions[int(i)] for i in used]

    deadlocks = space.deadlock_states
    return StateSpace(
        net=space.net,
        marking_matrix=space.marking_matrix[~vanishing],
        edge_src=merged_src,
        edge_dst=merged_dst,
        edge_prob=merged_prob,
        edge_dist=compact_index.astype(np.int32),
        edge_trans=merged_trans.astype(np.int32),
        distributions=distributions,
        transition_names=list(space.transition_names),
        initial_state=int(new_id[space.initial_state]),
        deadlock_states=new_id[deadlocks] if deadlocks.size else deadlocks,
        truncated=space.truncated,
    )


def eliminate_vanishing(
    graph: ReachabilityGraph | StateSpace, *, max_chain: int = 500
) -> ReachabilityGraph | StateSpace:
    """Return an equivalent reachability graph without vanishing markings.

    Accepts both the array-backed :class:`StateSpace` (vectorized
    elimination) and the legacy :class:`ReachabilityGraph`.

    Parameters
    ----------
    graph:
        The graph to reduce.  It is not modified.
    max_chain:
        Safety bound on the length of immediate-firing chains followed while
        redistributing probabilities; exceeding it indicates a zero-time
        cycle, which is reported as an error (such a model has no valid
        semi-Markov interpretation).
    """
    if isinstance(graph, StateSpace):
        return _eliminate_vanishing_arrays(graph, max_chain=max_chain)
    vanishing = _vanishing_states(graph)
    if not vanishing:
        return graph
    if graph.initial_state in vanishing:
        raise ValueError(
            "the initial marking is vanishing (only immediate transitions are "
            "enabled there); give the model a timed initial activity first"
        )

    # Outgoing branch lists of vanishing states: (probability, destination).
    branches: dict[int, list[tuple[float, int]]] = defaultdict(list)
    for src, dst, prob, dist, _ in graph.edges:
        if src in vanishing:
            branches[src].append((prob, dst))

    def resolve(state: int, probability: float, depth: int = 0):
        """Yield (tangible_state, probability) reached from ``state``."""
        if state not in vanishing:
            yield state, probability
            return
        if depth > max_chain:
            raise ValueError(
                "cycle of vanishing markings detected (a loop of immediate "
                "transitions with no time advance)"
            )
        for branch_prob, destination in branches[state]:
            yield from resolve(destination, probability * branch_prob, depth + 1)

    # Build the reduced edge list over tangible states only.
    tangible = [s for s in range(graph.n_states) if s not in vanishing]
    new_index = {old: new for new, old in enumerate(tangible)}
    merged: dict[tuple[int, int, str], tuple[float, Distribution]] = {}
    for src, dst, prob, dist, name in graph.edges:
        if src in vanishing:
            continue
        for target, probability in resolve(dst, prob):
            key = (new_index[src], new_index[target], name)
            if key in merged:
                existing_prob, existing_dist = merged[key]
                if existing_dist is not dist and existing_dist != dist:
                    # Distinct sojourns folding onto the same edge via the same
                    # net transition cannot happen (the sojourn is determined
                    # by the source marking and transition), but guard anyway.
                    raise ValueError(
                        "conflicting sojourn distributions while merging "
                        f"edges into {key}"
                    )
                merged[key] = (existing_prob + probability, existing_dist)
            else:
                merged[key] = (probability, dist)

    new_edges = [
        (src, dst, prob, dist, name)
        for (src, dst, name), (prob, dist) in sorted(merged.items(), key=lambda kv: kv[0][:2])
    ]
    new_markings = [graph.markings[old] for old in tangible]
    new_deadlocks = [new_index[d] for d in graph.deadlocks if d in new_index]
    return ReachabilityGraph(
        net=graph.net,
        markings=new_markings,
        edges=new_edges,
        initial_state=new_index[graph.initial_state],
        deadlocks=new_deadlocks,
        truncated=graph.truncated,
    )
