"""Elimination of vanishing markings (zero-delay states).

The paper notes that SPNs and GSPNs translate into the SM-SPN paradigm in a
straightforward manner.  A GSPN's *immediate* transitions become SM-SPN
transitions with an :class:`~repro.distributions.Immediate` (zero) firing
time; the markings in which such a transition fires are *vanishing* — the
process spends no time in them — and keeping them in the semi-Markov kernel
both wastes states and breaks measures that count "time spent in ...".

:func:`eliminate_vanishing` removes those markings from a reachability graph
by folding their branching probabilities into their predecessors: an edge
``u --(p, H)--> v`` into a vanishing marking ``v`` with outgoing branches
``v --(q_j, 0)--> w_j`` is replaced by edges ``u --(p q_j, H)--> w_j``.  The
sojourn distribution of the replacement edge is the original (timed) one, so
passage times through chains of immediate firings are preserved exactly.
Cycles of vanishing markings (a zero-time loop) are rejected.
"""
from __future__ import annotations

from collections import defaultdict

from ..distributions import Distribution
from .reachability import ReachabilityGraph

__all__ = ["eliminate_vanishing", "is_vanishing_distribution"]


def is_vanishing_distribution(dist: Distribution) -> bool:
    """True when the sojourn carries no time at all (an immediate firing)."""
    try:
        return dist.mean() == 0.0 and dist.variance() == 0.0
    except NotImplementedError:
        return False


def _vanishing_states(graph: ReachabilityGraph) -> set[int]:
    """States all of whose outgoing edges are immediate firings."""
    outgoing: dict[int, list[bool]] = defaultdict(list)
    for src, _, _, dist, _ in graph.edges:
        outgoing[src].append(is_vanishing_distribution(dist))
    return {state for state, flags in outgoing.items() if flags and all(flags)}


def eliminate_vanishing(
    graph: ReachabilityGraph, *, max_chain: int = 500
) -> ReachabilityGraph:
    """Return an equivalent reachability graph without vanishing markings.

    Parameters
    ----------
    graph:
        The graph to reduce.  It is not modified.
    max_chain:
        Safety bound on the length of immediate-firing chains followed while
        redistributing probabilities; exceeding it indicates a zero-time
        cycle, which is reported as an error (such a model has no valid
        semi-Markov interpretation).
    """
    vanishing = _vanishing_states(graph)
    if not vanishing:
        return graph
    if graph.initial_state in vanishing:
        raise ValueError(
            "the initial marking is vanishing (only immediate transitions are "
            "enabled there); give the model a timed initial activity first"
        )

    # Outgoing branch lists of vanishing states: (probability, destination).
    branches: dict[int, list[tuple[float, int]]] = defaultdict(list)
    for src, dst, prob, dist, _ in graph.edges:
        if src in vanishing:
            branches[src].append((prob, dst))

    def resolve(state: int, probability: float, depth: int = 0):
        """Yield (tangible_state, probability) reached from ``state``."""
        if state not in vanishing:
            yield state, probability
            return
        if depth > max_chain:
            raise ValueError(
                "cycle of vanishing markings detected (a loop of immediate "
                "transitions with no time advance)"
            )
        for branch_prob, destination in branches[state]:
            yield from resolve(destination, probability * branch_prob, depth + 1)

    # Build the reduced edge list over tangible states only.
    tangible = [s for s in range(graph.n_states) if s not in vanishing]
    new_index = {old: new for new, old in enumerate(tangible)}
    merged: dict[tuple[int, int, str], tuple[float, Distribution]] = {}
    for src, dst, prob, dist, name in graph.edges:
        if src in vanishing:
            continue
        for target, probability in resolve(dst, prob):
            key = (new_index[src], new_index[target], name)
            if key in merged:
                existing_prob, existing_dist = merged[key]
                if existing_dist is not dist and existing_dist != dist:
                    # Distinct sojourns folding onto the same edge via the same
                    # net transition cannot happen (the sojourn is determined
                    # by the source marking and transition), but guard anyway.
                    raise ValueError(
                        "conflicting sojourn distributions while merging "
                        f"edges into {key}"
                    )
                merged[key] = (existing_prob + probability, existing_dist)
            else:
                merged[key] = (probability, dist)

    new_edges = [
        (src, dst, prob, dist, name)
        for (src, dst, name), (prob, dist) in sorted(merged.items(), key=lambda kv: kv[0][:2])
    ]
    new_markings = [graph.markings[old] for old in tangible]
    new_deadlocks = [new_index[d] for d in graph.deadlocks if d in new_index]
    return ReachabilityGraph(
        net=graph.net,
        markings=new_markings,
        edges=new_edges,
        initial_state=new_index[graph.initial_state],
        deadlocks=new_deadlocks,
        truncated=graph.truncated,
    )
