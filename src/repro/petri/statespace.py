"""Array-backed state-space core: vectorized exploration of an SM-SPN.

The per-marking explorer (:func:`repro.petri.reachability.explore`) evaluates
guards, weights and firings one Python call at a time — at the paper's
headline scale (10^5–10^7 tangible states) that is the wall in front of every
vectorized layer downstream.  This module replaces it with a breadth-first
exploration that expands the whole frontier as batched NumPy operations:

* markings live in one ``(n_states, n_places)`` int64 matrix (chunked,
  doubling growth — memory stays proportional to states, not Python objects),
* markings are interned through a ``bytes -> id`` dictionary (O(1) lookup),
* edges are structure-of-arrays — ``src``/``dst`` int64, ``prob`` float64,
  ``dist`` int32 into a table of *unique* distributions deduplicated at
  exploration time, ``trans`` int32 into the net's transition names,
* enabledness, priority selection, weight normalisation and firing are
  evaluated per *transition over the frontier batch* — declaratively
  specified attributes (expression strings, see
  :class:`repro.petri.net.Transition`) compile to one NumPy evaluation via
  :class:`repro.dnamaca.vectorize.VectorizedExpression`; opaque Python
  callables fall back to per-row evaluation of just that attribute, so any
  net explores correctly and nets with declarative attributes explore fast.

The discovery order (and therefore state numbering), deadlock list,
``max_states`` truncation semantics and edge multiset are *identical* to the
legacy explorer — asserted model-by-model in the equivalence suite — because
candidate edges are interned in ``(source state, transition index)`` stream
order, exactly the order the per-marking BFS visits them.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..distributions import Distribution, Exponential
from ..dnamaca.vectorize import VectorizedExpression
from ..smp.kernel import SMPKernel
from .net import SMSPN, MarkingView, Transition

__all__ = ["StateSpace", "explore_vectorized"]


# ---------------------------------------------------------------------------
# Compiled per-transition vector semantics
# ---------------------------------------------------------------------------


def _row_view(net: SMSPN, row: np.ndarray) -> MarkingView:
    return net.view(tuple(int(x) for x in row))


def _broadcast(value, k: int) -> np.ndarray:
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = np.broadcast_to(arr, (k,))
    return arr


class _VectorTransition:
    """One net transition compiled for frontier-batch evaluation."""

    def __init__(self, transition: Transition, net: SMSPN, index: int):
        self.transition = transition
        self.net = net
        self.name = transition.name
        self.index = index
        place_index = dict(net.place_index)
        self._place_items = list(place_index.items())
        self.constants = dict(getattr(transition, "_bound_constants", {}) or {})
        n_places = len(net.places)

        self.input_cols = np.asarray(
            [place_index[p] for p in transition.inputs], dtype=np.int64
        )
        self.input_counts = np.asarray(
            [transition.inputs[p] for p in transition.inputs], dtype=np.int64
        )

        # Dispatch per attribute: a vectorized expression or a constant when
        # declared, otherwise each method's final branch evaluates the
        # transition's scalar callable per row.
        self.has_guard = transition._guard_fn is not None
        if transition.guard_source is not None:
            self._guard_vec = VectorizedExpression(transition.guard_source)
        else:
            self._guard_vec = None

        self._priority_vec = self._priority_const = None
        if transition.priority_source is not None:
            self._priority_vec = VectorizedExpression(transition.priority_source)
        elif not callable(transition.priority):
            self._priority_const = float(int(transition.priority))

        self._weight_vec = self._weight_const = None
        if transition.weight_source is not None:
            self._weight_vec = VectorizedExpression(transition.weight_source)
        elif not callable(transition.weight):
            self._weight_const = float(transition.weight)

        self._fire_delta = self._fire_vec = None
        if transition._action_fn is None:
            delta = np.zeros(n_places, dtype=np.int64)
            for place, count in transition.inputs.items():
                delta[place_index[place]] -= int(count)
            for place, count in transition.outputs.items():
                delta[place_index[place]] += int(count)
            self._fire_delta = delta
        elif transition.action_source is not None:
            for place in transition.action_source:
                if place not in place_index:
                    raise KeyError(
                        f"action of {transition.name!r} writes unknown place {place!r}"
                    )
            self._fire_vec = [
                (place_index[place], VectorizedExpression(expr))
                for place, expr in transition.action_source.items()
            ]

        self._dist_const: Distribution | None = None
        self._dist_cols: np.ndarray | None = None
        if isinstance(transition.distribution, Distribution):
            self._dist_const = transition.distribution
        else:
            depends = transition.distribution_depends
            if depends is not None:
                for place in depends:
                    if place not in place_index:
                        raise KeyError(
                            f"distribution_depends of {transition.name!r} names "
                            f"unknown place {place!r}"
                        )
                cols = sorted(place_index[p] for p in depends)
            else:
                cols = list(range(n_places))
            self._dist_cols = np.asarray(cols, dtype=np.int64)

    # ------------------------------------------------------------ helpers
    def _column_env(self, M: np.ndarray) -> dict:
        env: dict[str, object] = dict(self.constants)
        for name, column in self._place_items:
            env[name] = M[:, column]
        return env

    # ---------------------------------------------------------- semantics
    def guard_mask(
        self, M: np.ndarray, mask: np.ndarray, view_of: Callable[[int], MarkingView]
    ) -> np.ndarray:
        """``mask`` restricted to rows whose guard holds.

        Python-callable guards are only invoked on rows already passing the
        arc check (the legacy short-circuit order).  A vectorized guard that
        hits an arithmetic fault (division by a zero token count, ...) falls
        back to per-row scalar evaluation, which lazily skips untaken
        branches and raises exactly where the legacy explorer raises.
        """
        if self._guard_vec is not None:
            rows = np.flatnonzero(mask)
            if rows.size == 0:
                return mask
            try:
                # Evaluate over the arc-enabled rows only — the same domain
                # the scalar path sees, so faults in irrelevant rows neither
                # raise nor demote the wave to the per-row fallback.
                sub = M if rows.size == len(M) else M[rows]
                guard = _broadcast(
                    self._guard_vec.evaluate_checked(self._column_env(sub)), rows.size
                )
                out = np.zeros(len(M), dtype=bool)
                out[rows] = guard.astype(bool)
                return out
            except FloatingPointError:
                pass
        guard_fn = self.transition._guard_fn
        out = mask.copy()
        for r in np.flatnonzero(mask):
            if not guard_fn(view_of(int(r))):
                out[r] = False
        return out

    def priorities(
        self, M: np.ndarray, mask: np.ndarray, view_of: Callable[[int], MarkingView]
    ) -> np.ndarray:
        k = len(M)
        if self._priority_const is not None:
            return np.full(k, self._priority_const)
        if self._priority_vec is not None:
            rows = np.flatnonzero(mask)
            if rows.size == 0:
                return np.zeros(k)
            try:
                sub = M if rows.size == k else M[rows]
                values = _broadcast(
                    self._priority_vec.evaluate_checked(self._column_env(sub)), rows.size
                )
                out = np.zeros(k)
                out[rows] = np.rint(np.asarray(values, dtype=float))
                return out
            except FloatingPointError:
                pass  # fall back to exact scalar semantics below
        out = np.zeros(k)
        for r in np.flatnonzero(mask):
            out[r] = self.transition.priority_in(view_of(int(r)))
        return out

    def weights(
        self, M: np.ndarray, mask: np.ndarray, view_of: Callable[[int], MarkingView]
    ) -> np.ndarray:
        k = len(M)
        if self._weight_const is not None:
            if self._weight_const < 0:
                raise ValueError(f"transition {self.name!r} produced a negative weight")
            return np.full(k, self._weight_const)
        if self._weight_vec is not None:
            rows = np.flatnonzero(mask)
            if rows.size == 0:
                return np.zeros(k)
            try:
                sub = M if rows.size == k else M[rows]
                values = np.asarray(
                    _broadcast(
                        self._weight_vec.evaluate_checked(self._column_env(sub)),
                        rows.size,
                    ),
                    dtype=float,
                )
                if np.any(values < 0):
                    raise ValueError(
                        f"transition {self.name!r} produced a negative weight"
                    )
                out = np.zeros(k)
                out[rows] = values
                return out
            except FloatingPointError:
                pass  # fall back to exact scalar semantics below
        out = np.zeros(k)
        for r in np.flatnonzero(mask):
            out[r] = self.transition.weight_in(view_of(int(r)))
        return out

    def fire(
        self, M_rows: np.ndarray, view_of_row: Callable[[np.ndarray], MarkingView]
    ) -> np.ndarray:
        if self._fire_delta is not None:
            out = M_rows + self._fire_delta
        elif self._fire_vec is not None:
            try:
                env = self._column_env(M_rows)
                out = M_rows.copy()
                for column, expr in self._fire_vec:
                    values = np.asarray(expr.evaluate_checked(env), dtype=float)
                    out[:, column] = np.rint(values).astype(np.int64)
            except FloatingPointError:
                return self._fire_rows_scalar(M_rows, view_of_row)
        else:
            return self._fire_rows_scalar(M_rows, view_of_row)
        if (out < 0).any():
            bad = int(np.flatnonzero((out < 0).any(axis=1))[0])
            raise ValueError(
                f"firing {self.name!r} produced a negative marking "
                f"{tuple(int(x) for x in out[bad])}"
            )
        return out

    def _fire_rows_scalar(
        self, M_rows: np.ndarray, view_of_row: Callable[[np.ndarray], MarkingView]
    ) -> np.ndarray:
        place_index = dict(self.net.place_index)
        out = np.empty_like(M_rows)
        for i, row in enumerate(M_rows):
            out[i] = self.transition.fire(view_of_row(row), place_index)
        return out  # transition.fire already checked negativity

    def dist_ids(
        self,
        M_rows: np.ndarray,
        intern: Callable[[Distribution], int],
        view_of_row: Callable[[np.ndarray], MarkingView],
    ) -> np.ndarray:
        if self._dist_const is not None:
            return np.full(len(M_rows), intern(self._dist_const), dtype=np.int64)
        sub = np.ascontiguousarray(M_rows[:, self._dist_cols])
        void = sub.view(np.dtype((np.void, sub.dtype.itemsize * sub.shape[1]))).ravel()
        _, first, inverse = np.unique(void, return_index=True, return_inverse=True)
        ids = np.empty(first.size, dtype=np.int64)
        for u, row in enumerate(first):
            dist = self.transition.distribution_in(view_of_row(M_rows[row]))
            ids[u] = intern(dist)
        return ids[inverse]


# ---------------------------------------------------------------------------
# The explored state space (structure-of-arrays)
# ---------------------------------------------------------------------------


class _MarkingNames:
    """Deferred marking-string state names.

    A module-level class (not a closure) so kernels stay picklable — the
    multiprocessing and distributed engines ship whole kernels to worker
    processes under spawn start methods.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray):
        self.matrix = matrix

    def __call__(self) -> list[str]:
        return [str(tuple(int(x) for x in row)) for row in self.matrix]


@dataclass(eq=False)
class StateSpace:
    """The explored state space of an SM-SPN in columnar form.

    The same information as :class:`~repro.petri.reachability.ReachabilityGraph`
    — state ``i``'s marking is row ``i`` of :attr:`marking_matrix`, edge ``e``
    is ``(edge_src[e], edge_dst[e])`` taken with probability ``edge_prob[e]``
    after the sojourn ``distributions[edge_dist[e]]`` via net transition
    ``transition_names[edge_trans[e]]`` — but held in flat arrays, so kernels,
    predicates and partitioners consume it without materialising per-edge
    Python objects.
    """

    net: SMSPN
    marking_matrix: np.ndarray            # (n_states, n_places) int64
    edge_src: np.ndarray                  # (n_edges,) int64
    edge_dst: np.ndarray                  # (n_edges,) int64
    edge_prob: np.ndarray                 # (n_edges,) float64
    edge_dist: np.ndarray                 # (n_edges,) int32 -> distributions
    edge_trans: np.ndarray                # (n_edges,) int32 -> transition_names
    distributions: list[Distribution]
    transition_names: list[str]
    initial_state: int = 0
    deadlock_states: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    truncated: bool = False
    _index: dict | None = field(default=None, repr=False, compare=False)

    # -------------------------------------------------------------- stats
    @property
    def n_states(self) -> int:
        return int(self.marking_matrix.shape[0])

    @property
    def n_edges(self) -> int:
        return int(self.edge_src.size)

    @property
    def markings(self) -> np.ndarray:
        """Row-indexable markings (the matrix itself; rows act like tuples)."""
        return self.marking_matrix

    @property
    def deadlocks(self) -> np.ndarray:
        return self.deadlock_states

    @property
    def edges(self) -> list[tuple[int, int, float, Distribution, str]]:
        """Per-edge tuples in the legacy layout (materialised on demand;
        debugging/equivalence aid — hot paths use the columns directly)."""
        return [
            (
                int(self.edge_src[e]),
                int(self.edge_dst[e]),
                float(self.edge_prob[e]),
                self.distributions[int(self.edge_dist[e])],
                self.transition_names[int(self.edge_trans[e])],
            )
            for e in range(self.n_edges)
        ]

    # ------------------------------------------------------------- lookups
    def index_of(self, marking: Sequence[int]) -> int:
        """O(1) interned lookup of a marking's state index."""
        key = np.asarray(tuple(int(t) for t in marking), dtype=np.int64).tobytes()
        if self._index is None:
            self._index = {
                row.tobytes(): i for i, row in enumerate(self.marking_matrix)
            }
        try:
            return self._index[key]
        except KeyError:
            marking = tuple(int(t) for t in marking)
            raise KeyError(f"marking {marking} is not reachable") from None

    def view(self, state: int) -> MarkingView:
        return self.net.view(self.marking_matrix[state])

    def states_where(self, predicate: Callable[[MarkingView], bool]) -> list[int]:
        """All state indices whose marking satisfies a per-marking callable.

        Compatibility path for opaque Python predicates; prefer
        :meth:`states_matching` (one vectorized pass) for expression strings.
        """
        view = self.net.view
        return [
            i for i, row in enumerate(self.marking_matrix)
            if predicate(view(tuple(int(x) for x in row)))
        ]

    def states_matching(
        self, expression: str, constants: Mapping[str, float] | None = None
    ) -> np.ndarray:
        """State indices satisfying a condition expression, in one NumPy pass."""
        from ..dnamaca.vectorize import vector_marking_predicate

        predicate = vector_marking_predicate(expression, constants)
        mask = predicate(self.marking_matrix, self.net.place_index)
        return np.flatnonzero(mask).astype(np.int64)

    def marking_array(self) -> np.ndarray:
        """All markings as an ``(n_states, n_places)`` int64 array.

        This *is* the backing store (no copy) — treat it as read-only.
        """
        return self.marking_matrix

    def transition_usage(self) -> dict[str, int]:
        """How many state-space edges each net transition contributes."""
        counts = np.bincount(self.edge_trans, minlength=len(self.transition_names))
        return {
            name: int(count)
            for name, count in zip(self.transition_names, counts)
            if count
        }

    # ------------------------------------------------------------ handoff
    def kernel(self, *, allow_truncated: bool = False) -> SMPKernel:
        """Zero-copy handoff of the edge columns to an :class:`SMPKernel`.

        Deadlocked markings get a unit-mean exponential self-loop (the same
        convention as the legacy :func:`~repro.petri.reachability.build_kernel`);
        parallel edges between the same pair of states are merged by grouped
        reduction inside :meth:`SMPKernel.from_columns`.
        """
        if self.truncated and not allow_truncated:
            raise ValueError(
                "the reachability graph was truncated at max_states; pass "
                "allow_truncated=True only if edges leaving the truncation frontier "
                "are acceptable to drop"
            )
        src, dst = self.edge_src, self.edge_dst
        probs, dist_index = self.edge_prob, self.edge_dist.astype(np.int64)
        distributions = self.distributions
        if self.deadlock_states.size:
            distributions = list(distributions)
            loop_dist = Exponential(1.0)
            try:
                loop_id = distributions.index(loop_dist)
            except ValueError:
                loop_id = len(distributions)
                distributions.append(loop_dist)
            dead = self.deadlock_states
            src = np.concatenate([src, dead])
            dst = np.concatenate([dst, dead])
            probs = np.concatenate([probs, np.ones(dead.size)])
            dist_index = np.concatenate(
                [dist_index, np.full(dead.size, loop_id, dtype=np.int64)]
            )
        return SMPKernel.from_columns(
            self.n_states, src, dst, probs, dist_index, distributions,
            # Marking-string names, as the legacy build_kernel sets — but
            # deferred: a million-state kernel only pays for them on access.
            state_names=_MarkingNames(self.marking_matrix),
            normalise=self.truncated,
        )

    def to_reachability_graph(self):
        """Materialise the legacy per-object representation (small models)."""
        from .reachability import ReachabilityGraph

        return ReachabilityGraph(
            net=self.net,
            markings=[tuple(int(x) for x in row) for row in self.marking_matrix],
            edges=self.edges,
            initial_state=self.initial_state,
            deadlocks=[int(d) for d in self.deadlock_states],
            truncated=self.truncated,
        )


# ---------------------------------------------------------------------------
# Vectorized breadth-first exploration
# ---------------------------------------------------------------------------


class _EdgeChunks:
    """Append-only columnar edge store, concatenated once at the end."""

    def __init__(self):
        self.src: list[np.ndarray] = []
        self.dst: list[np.ndarray] = []
        self.prob: list[np.ndarray] = []
        self.dist: list[np.ndarray] = []
        self.trans: list[np.ndarray] = []

    def append(self, src, dst, prob, dist, trans) -> None:
        self.src.append(src)
        self.dst.append(dst)
        self.prob.append(prob)
        self.dist.append(dist)
        self.trans.append(trans)

    def concatenate(self):
        if not self.src:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty.copy(),
                np.empty(0, dtype=float),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int32),
            )
        return (
            np.concatenate(self.src),
            np.concatenate(self.dst),
            np.concatenate(self.prob),
            np.concatenate(self.dist),
            np.concatenate(self.trans),
        )


class _MarkingInterner:
    """Marking -> state-id interning with a vectorized fast path.

    When every place's token count fits into a fixed bit budget summing to at
    most 63 bits, a marking packs losslessly into one int64 key and whole
    candidate batches intern through ``searchsorted`` against a sorted key
    array — no per-marking Python.  Nets whose markings outgrow the budget
    fall back to a ``bytes -> id`` dictionary (still O(1) per lookup).
    """

    def __init__(self, n_places: int):
        self.n_places = n_places
        self.shifts: np.ndarray | None = None
        self.limits: np.ndarray | None = None
        # Two-level sorted store: a large base plus a small recent delta,
        # merged when the delta outgrows a fraction of the base.  Lookups pay
        # two searchsorteds; merges amortise to O(n log n) total copying
        # instead of the O(n * waves) of inserting into one sorted array.
        self.base_keys = np.empty(0, dtype=np.int64)
        self.base_ids = np.empty(0, dtype=np.int64)
        self.delta_keys = np.empty(0, dtype=np.int64)
        self.delta_ids = np.empty(0, dtype=np.int64)
        self.byte_index: dict[bytes, int] | None = None

    def _choose_packing(self, per_place_max: np.ndarray) -> bool:
        """Pick per-place bit widths (with headroom); False if > 63 bits."""
        needed = np.asarray(
            [max(1, int(v).bit_length()) for v in per_place_max], dtype=np.int64
        )
        with_headroom = needed + 1
        if int(with_headroom.sum()) <= 63:
            bits = with_headroom
        elif int(needed.sum()) <= 63:
            bits = needed
        else:
            return False
        self.shifts = np.concatenate(([0], np.cumsum(bits[:-1]))).astype(np.int64)
        self.limits = (np.int64(1) << bits).astype(np.int64)
        return True

    def pack(self, rows: np.ndarray) -> np.ndarray:
        # Accumulate column by column instead of materialising the shifted
        # (rows, places) temporary — this runs on every candidate batch.
        keys = rows[:, 0] << self.shifts[0]
        for column in range(1, self.n_places):
            keys = keys | (rows[:, column] << self.shifts[column])
        return keys

    def fits(self, per_place_max: np.ndarray) -> bool:
        return self.limits is not None and bool((per_place_max < self.limits).all())

    def rebuild(self, markings: np.ndarray, per_place_max: np.ndarray) -> None:
        """(Re)pack all known markings after choosing a packing — or switch
        to the byte-dict fallback when the markings no longer fit in 63 bits."""
        if self.byte_index is not None:
            return
        if not self._choose_packing(per_place_max):
            self.shifts = self.limits = None
            self.byte_index = {
                row.tobytes(): i for i, row in enumerate(markings)
            }
            return
        keys = self.pack(markings)
        order = np.argsort(keys)
        self.base_keys = keys[order]
        self.base_ids = order.astype(np.int64)
        self.delta_keys = self.delta_keys[:0]
        self.delta_ids = self.delta_ids[:0]

    @staticmethod
    def _search(keys: np.ndarray, ids: np.ndarray, wanted: np.ndarray, out: np.ndarray):
        if keys.size == 0:
            return
        pos = np.minimum(np.searchsorted(keys, wanted), keys.size - 1)
        found = keys[pos] == wanted
        out[found] = ids[pos[found]]

    def lookup(self, rows: np.ndarray) -> np.ndarray:
        """Known state id per candidate row, -1 where unseen (vectorized)."""
        if self.byte_index is not None:
            get = self.byte_index.get
            return np.asarray(
                [get(row.tobytes(), -1) for row in rows], dtype=np.int64
            )
        keys = self.pack(rows)
        ids = np.full(rows.shape[0], -1, dtype=np.int64)
        self._search(self.base_keys, self.base_ids, keys, ids)
        self._search(self.delta_keys, self.delta_ids, keys, ids)
        return ids

    def add(self, rows: np.ndarray, ids: np.ndarray) -> None:
        """Register freshly assigned (marking row, id) pairs."""
        if self.byte_index is not None:
            for row, state in zip(rows, ids):
                self.byte_index[row.tobytes()] = int(state)
            return
        keys = self.pack(rows)
        order = np.argsort(keys)
        keys, ids = keys[order], np.asarray(ids, dtype=np.int64)[order]
        positions = np.searchsorted(self.delta_keys, keys)
        self.delta_keys = np.insert(self.delta_keys, positions, keys)
        self.delta_ids = np.insert(self.delta_ids, positions, ids)
        if self.delta_keys.size > max(4096, self.base_keys.size // 8):
            positions = np.searchsorted(self.base_keys, self.delta_keys)
            self.base_keys = np.insert(self.base_keys, positions, self.delta_keys)
            self.base_ids = np.insert(self.base_ids, positions, self.delta_ids)
            self.delta_keys = self.delta_keys[:0]
            self.delta_ids = self.delta_ids[:0]


def explore_vectorized(
    net: SMSPN,
    *,
    max_states: int | None = None,
    on_progress: Callable[[int], None] | None = None,
    progress_every: int = 50_000,
    batch_size: int = 32_768,
) -> StateSpace:
    """Breadth-first exploration with frontier-batched NumPy evaluation.

    Drop-in counterpart of :func:`repro.petri.reachability.explore` producing
    a :class:`StateSpace`; state numbering, deadlocks, edge multiset and
    ``max_states`` truncation semantics match the legacy explorer exactly.

    Parameters
    ----------
    max_states:
        Optional safety cap, with the legacy semantics: edges to markings
        that would exceed the cap are dropped and the result is marked
        ``truncated``.
    batch_size:
        Upper bound on frontier states expanded per batch; bounds the
        transient ``(batch, n_transitions)`` work matrices.
    """
    n_places = len(net.places)
    if max_states is not None and max_states < 1:
        raise ValueError("max_states must allow at least the initial marking")
    compiled = [_VectorTransition(t, net, i) for i, t in enumerate(net.transitions)]
    n_trans = len(compiled)

    # Wave-overhead fast paths: all input-arc constraints check as ONE
    # broadcast comparison, and all-constant priorities / weights fill their
    # work matrices with a single np.where instead of per-transition loops.
    required = np.zeros((n_trans, n_places), dtype=np.int64)
    for t in compiled:
        required[t.index, t.input_cols] = t.input_counts
    guarded = [t for t in compiled if t.has_guard]
    const_priority = None
    if all(t._priority_const is not None for t in compiled):
        const_priority = np.asarray([t._priority_const for t in compiled])
    const_weight = None
    if all(t._weight_const is not None for t in compiled):
        const_weight = np.asarray([t._weight_const for t in compiled])
        if np.any(const_weight < 0):
            bad = compiled[int(np.flatnonzero(const_weight < 0)[0])]
            raise ValueError(f"transition {bad.name!r} produced a negative weight")

    capacity = 1024
    markings = np.empty((capacity, n_places), dtype=np.int64)
    initial = np.asarray(net.initial_marking, dtype=np.int64)
    markings[0] = initial
    n_states = 1
    seen_max = np.maximum(initial, 0)
    interner = _MarkingInterner(n_places)
    interner.rebuild(markings[:1], seen_max)

    edges = _EdgeChunks()
    dist_table: list[Distribution] = []
    dist_ids: dict[Distribution, int] = {}

    def intern_dist(dist: Distribution) -> int:
        found = dist_ids.get(dist)
        if found is None:
            found = len(dist_table)
            dist_ids[dist] = found
            dist_table.append(dist)
        return found

    deadlocks: list[int] = []
    truncated = False
    void_dtype = np.dtype((np.void, np.dtype(np.int64).itemsize * n_places))
    cursor = 0

    while cursor < n_states:
        hi = min(n_states, cursor + batch_size)
        M = markings[cursor:hi].copy()  # stable even if the store reallocates
        k = hi - cursor

        view_cache: dict[int, MarkingView] = {}

        def view_of(row: int) -> MarkingView:
            view = view_cache.get(row)
            if view is None:
                view = _row_view(net, M[row])
                view_cache[row] = view
            return view

        # One broadcast comparison checks every arc of every transition, as
        # long as the (batch, transitions, places) temporary stays small;
        # wide nets fall back to per-transition checks over their own arc
        # columns so the per-wave footprint tracks actual arcs.
        if k * n_trans * n_places <= 16_000_000:
            enabled = (M[:, None, :] >= required[None, :, :]).all(axis=2)
        else:
            enabled = np.ones((k, n_trans), dtype=bool)
            for t in compiled:
                if t.input_cols.size:
                    enabled[:, t.index] = (
                        M[:, t.input_cols] >= t.input_counts
                    ).all(axis=1)
        for t in guarded:
            column = enabled[:, t.index]
            if column.any():
                enabled[:, t.index] = t.guard_mask(M, column, view_of)
        enabled_any = enabled.any(axis=1)
        if not enabled_any.all():
            deadlocks.extend((cursor + np.flatnonzero(~enabled_any)).tolist())
        if not enabled_any.any():
            cursor = hi
            continue

        # EP(m): among net-enabled transitions keep those of maximal priority.
        if const_priority is not None:
            priority = np.where(enabled, const_priority[None, :], -np.inf)
        else:
            priority = np.full((k, n_trans), -np.inf)
            for t in compiled:
                column = enabled[:, t.index]
                if column.any():
                    values = t.priorities(M, column, view_of)
                    priority[column, t.index] = values[column]
        top = priority.max(axis=1)
        active = enabled & (priority == top[:, None])

        if const_weight is not None:
            weights = np.where(active, const_weight[None, :], 0.0)
        else:
            weights = np.zeros((k, n_trans))
            for t in compiled:
                column = active[:, t.index]
                if column.any():
                    values = t.weights(M, column, view_of)
                    weights[column, t.index] = values[column]
        totals = weights.sum(axis=1)
        bad = enabled_any & (totals <= 0.0)
        if bad.any():
            row = int(np.flatnonzero(bad)[0])
            names = [compiled[j].name for j in np.flatnonzero(active[row])]
            raise ValueError(
                f"no positive firing weight in marking {tuple(int(x) for x in M[row])} "
                f"(enabled: {names})"
            )

        frag_src, frag_trans, frag_prob, frag_dist, frag_next = [], [], [], [], []
        for t in compiled:
            rows = np.flatnonzero(active[:, t.index] & (weights[:, t.index] > 0.0))
            if rows.size == 0:
                continue
            M_rows = M[rows]
            frag_next.append(t.fire(M_rows, lambda row: _row_view(net, row)))
            frag_src.append(rows)
            frag_trans.append(np.full(rows.size, t.index, dtype=np.int32))
            frag_prob.append(weights[rows, t.index] / totals[rows])
            frag_dist.append(
                t.dist_ids(M_rows, intern_dist, lambda row: _row_view(net, row))
            )
        if not frag_src:
            cursor = hi
            continue

        src_local = np.concatenate(frag_src)
        trans = np.concatenate(frag_trans)
        prob = np.concatenate(frag_prob)
        dist = np.concatenate(frag_dist)
        nxt = np.ascontiguousarray(np.vstack(frag_next))

        # Re-order candidate edges into (source, transition) stream order so
        # interning assigns ids exactly as the legacy per-marking BFS does.
        order = np.lexsort((trans, src_local))
        src_local, trans, prob, dist = (
            src_local[order], trans[order], prob[order], dist[order],
        )
        nxt = np.ascontiguousarray(nxt[order])

        # Intern destinations.  Candidate markings dedup within the batch
        # (packed int64 keys when they fit, void rows otherwise), known ones
        # resolve by vectorized lookup, and fresh ones receive ids in stream
        # order — the legacy discovery order.
        cand_max = nxt.max(axis=0)
        if interner.byte_index is None and not interner.fits(cand_max):
            interner.rebuild(markings[:n_states], np.maximum(seen_max, cand_max))
        seen_max = np.maximum(seen_max, cand_max)
        if interner.byte_index is None:
            _, first, inverse = np.unique(
                interner.pack(nxt), return_index=True, return_inverse=True
            )
        else:
            void = nxt.view(void_dtype).ravel()
            _, first, inverse = np.unique(void, return_index=True, return_inverse=True)
        candidates = nxt[first]

        uid_to_state = interner.lookup(candidates)
        fresh = np.flatnonzero(uid_to_state < 0)
        if fresh.size:
            stream = fresh[np.argsort(first[fresh], kind="stable")]
            budget = stream.size
            if max_states is not None:
                budget = max(0, max_states - n_states)
                if budget < stream.size:
                    truncated = True
            chosen = stream[:budget]
            if chosen.size:
                ids = n_states + np.arange(chosen.size, dtype=np.int64)
                uid_to_state[chosen] = ids
                needed = n_states + chosen.size
                if needed > capacity:
                    while capacity < needed:
                        capacity *= 2
                    grown = np.empty((capacity, n_places), dtype=np.int64)
                    grown[:n_states] = markings[:n_states]
                    markings = grown
                markings[n_states:needed] = candidates[chosen]
                interner.add(candidates[chosen], ids)
                if on_progress is not None:
                    start = ((n_states + progress_every - 1) // progress_every) * progress_every
                    for milestone in range(start, needed, progress_every):
                        on_progress(milestone)
                n_states = needed

        dst = uid_to_state[inverse]
        keep = dst >= 0
        edges.append(
            (cursor + src_local)[keep],
            dst[keep],
            prob[keep],
            dist[keep].astype(np.int32),
            trans[keep],
        )
        cursor = hi

    edge_src, edge_dst, edge_prob, edge_dist, edge_trans = edges.concatenate()
    marking_matrix = markings[:n_states]
    if capacity != n_states:
        # An explicit copy: a prefix slice would keep the whole power-of-two
        # growth buffer alive (up to ~2x the needed marking memory) for the
        # StateSpace's lifetime.
        marking_matrix = marking_matrix.copy()
    return StateSpace(
        net=net,
        marking_matrix=marking_matrix,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_prob=edge_prob,
        edge_dist=edge_dist,
        edge_trans=edge_trans,
        distributions=dist_table,
        transition_names=[t.name for t in net.transitions],
        deadlock_states=np.asarray(deadlocks, dtype=np.int64),
        truncated=truncated,
        _index=interner.byte_index,
    )
