"""Convenience layer: from an SM-SPN straight to passage-time / transient solvers."""
from __future__ import annotations

from typing import Callable

from ..core.solvers import PassageTimeSolver, TransientSolver
from .net import SMSPN, MarkingView
from .reachability import ReachabilityGraph, build_kernel
from .statespace import StateSpace, explore_vectorized

__all__ = ["marking_states", "passage_solver", "transient_solver"]


def marking_states(
    graph: ReachabilityGraph | StateSpace,
    predicate: Callable[[MarkingView], bool],
    *,
    label: str = "predicate",
) -> list[int]:
    """States whose markings satisfy ``predicate``; raises if the set is empty."""
    states = graph.states_where(predicate)
    if not states:
        raise ValueError(f"no reachable marking satisfies the {label} predicate")
    return states


def _as_graph(net_or_graph: SMSPN | ReachabilityGraph | StateSpace):
    if isinstance(net_or_graph, (ReachabilityGraph, StateSpace)):
        return net_or_graph
    return explore_vectorized(net_or_graph)


def passage_solver(
    net_or_graph: SMSPN | ReachabilityGraph | StateSpace,
    source_predicate: Callable[[MarkingView], bool],
    target_predicate: Callable[[MarkingView], bool],
    **solver_options,
) -> PassageTimeSolver:
    """Build a :class:`PassageTimeSolver` between two marking predicates.

    ``source_predicate`` and ``target_predicate`` receive a
    :class:`MarkingView` (name-indexed token counts) and select the source
    and target state sets; everything else is forwarded to the solver.  A
    bare net is explored with the array-backed vectorized explorer.
    """
    graph = _as_graph(net_or_graph)
    kernel = build_kernel(graph)
    sources = marking_states(graph, source_predicate, label="source")
    targets = marking_states(graph, target_predicate, label="target")
    return PassageTimeSolver(kernel, sources=sources, targets=targets, **solver_options)


def transient_solver(
    net_or_graph: SMSPN | ReachabilityGraph | StateSpace,
    source_predicate: Callable[[MarkingView], bool],
    target_predicate: Callable[[MarkingView], bool],
    **solver_options,
) -> TransientSolver:
    """Build a :class:`TransientSolver` between two marking predicates."""
    graph = _as_graph(net_or_graph)
    kernel = build_kernel(graph)
    sources = marking_states(graph, source_predicate, label="source")
    targets = marking_states(graph, target_predicate, label="target")
    return TransientSolver(kernel, sources=sources, targets=targets, **solver_options)
