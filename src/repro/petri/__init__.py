"""Semi-Markov stochastic Petri nets (SM-SPNs, Section 5.1 of the paper).

An SM-SPN is a place–transition net whose transitions carry marking-dependent
*priorities*, *weights* and *firing-time distributions*.  From a given marking
the net-enabled transitions are filtered to those of maximal priority and one
of them is chosen probabilistically by weight; the sojourn in the marking is
the chosen transition's firing distribution.  This race-free semantics maps
the reachability graph directly onto a semi-Markov chain, which is what
:func:`repro.petri.reachability.build_kernel` produces.

Two explorers produce that state space: :func:`explore_vectorized` (the
array-backed default — frontier-batched NumPy evaluation into a
:class:`StateSpace` of columnar markings and edges) and the legacy
per-marking :func:`explore` (kept as the reference semantics for the
equivalence suite).
"""
from .net import MarkingView, SMSPN, Transition
from .reachability import ReachabilityGraph, explore, build_kernel
from .statespace import StateSpace, explore_vectorized
from .analysis import passage_solver, transient_solver, marking_states
from .vanishing import eliminate_vanishing, is_vanishing_distribution

__all__ = [
    "SMSPN",
    "Transition",
    "MarkingView",
    "ReachabilityGraph",
    "StateSpace",
    "explore",
    "explore_vectorized",
    "build_kernel",
    "passage_solver",
    "transient_solver",
    "marking_states",
    "eliminate_vanishing",
    "is_vanishing_distribution",
]
