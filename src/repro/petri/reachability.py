"""Reachability-graph generation and mapping onto an SMP kernel.

The SM-SPN semantics make every reachable marking a tangible semi-Markov
state: the probability of moving to the next marking is the normalised weight
of the chosen transition and the sojourn is its firing distribution.  The
breadth-first exploration below therefore produces exactly the kernel
``R(m, m', t) = p(m, m') H_{m,m'}(t)`` that the passage-time machinery needs.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..distributions import Distribution
from ..smp.builder import SMPBuilder
from ..smp.kernel import SMPKernel
from .net import SMSPN, MarkingView

__all__ = ["ReachabilityGraph", "explore", "build_kernel"]


@dataclass
class ReachabilityGraph:
    """The explored state space of an SM-SPN.

    Attributes
    ----------
    net:
        The net that was explored.
    markings:
        List of reachable markings (tuples of token counts), index = state id.
    edges:
        Tuples ``(src_state, dst_state, probability, distribution, transition_name)``.
    initial_state:
        Index of the initial marking (always 0 by construction).
    deadlocks:
        Indices of markings with no enabled transitions.
    truncated:
        True when exploration stopped at ``max_states`` before exhausting the
        reachable set.
    """

    net: SMSPN
    markings: list[tuple[int, ...]]
    edges: list[tuple[int, int, float, Distribution, str]]
    initial_state: int = 0
    deadlocks: list[int] = field(default_factory=list)
    truncated: bool = False
    _intern: dict | None = field(default=None, init=False, repr=False, compare=False)
    _marking_array: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -------------------------------------------------------------- stats
    @property
    def n_states(self) -> int:
        return len(self.markings)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def index_of(self, marking: Sequence[int]) -> int:
        """State index of ``marking`` — O(1) via a lazily interned lookup table."""
        marking = tuple(int(t) for t in marking)
        if self._intern is None:
            self._intern = {m: i for i, m in enumerate(self.markings)}
        try:
            return self._intern[marking]
        except KeyError:
            raise KeyError(f"marking {marking} is not reachable") from None

    def view(self, state: int) -> MarkingView:
        return self.net.view(self.markings[state])

    def states_where(self, predicate: Callable[[MarkingView], bool]) -> list[int]:
        """All state indices whose marking satisfies ``predicate``."""
        return [i for i, m in enumerate(self.markings) if predicate(self.net.view(m))]

    def marking_array(self) -> np.ndarray:
        """All markings as an ``(n_states, n_places)`` int64 array.

        Cached after the first call (it backs every vectorized predicate
        evaluation) — treat the returned array as read-only.
        """
        if self._marking_array is None:
            self._marking_array = np.asarray(self.markings, dtype=np.int64)
        return self._marking_array

    def transition_usage(self) -> dict[str, int]:
        """How many state-space edges each net transition contributes."""
        usage: dict[str, int] = {}
        for _, _, _, _, name in self.edges:
            usage[name] = usage.get(name, 0) + 1
        return usage


def explore(
    net: SMSPN,
    *,
    max_states: int | None = None,
    on_progress: Callable[[int], None] | None = None,
    progress_every: int = 50_000,
) -> ReachabilityGraph:
    """Breadth-first exploration of the reachable markings of ``net``.

    Parameters
    ----------
    max_states:
        Optional safety cap; when hit, the returned graph is marked
        ``truncated`` (passage-time analysis on a truncated graph is refused
        by :func:`build_kernel` unless the frontier happens to be closed).
    on_progress:
        Optional callback invoked with the current state count every
        ``progress_every`` discovered states — useful for the large voting
        configurations.
    """
    initial = net.initial_marking
    index: dict[tuple[int, ...], int] = {initial: 0}
    markings: list[tuple[int, ...]] = [initial]
    edges: list[tuple[int, int, float, Distribution, str]] = []
    deadlocks: list[int] = []
    queue: deque[int] = deque([0])
    truncated = False

    while queue:
        state = queue.popleft()
        marking = markings[state]
        choices = net.firing_choices(marking)
        if not choices:
            deadlocks.append(state)
            continue
        for transition, probability, next_marking, dist in choices:
            nxt = index.get(next_marking)
            if nxt is None:
                if max_states is not None and len(markings) >= max_states:
                    truncated = True
                    continue
                nxt = len(markings)
                index[next_marking] = nxt
                markings.append(next_marking)
                queue.append(nxt)
                if on_progress is not None and nxt % progress_every == 0:
                    on_progress(nxt)
            edges.append((state, nxt, probability, dist, transition.name))

    return ReachabilityGraph(
        net=net,
        markings=markings,
        edges=edges,
        deadlocks=deadlocks,
        truncated=truncated,
    )


def build_kernel(graph, *, allow_truncated: bool = False) -> SMPKernel:
    """Convert an explored state space into an :class:`SMPKernel`.

    Accepts both the array-backed :class:`~repro.petri.statespace.StateSpace`
    (zero-copy column handoff) and the legacy :class:`ReachabilityGraph`
    (per-edge ``SMPBuilder`` path, kept for equivalence testing).

    Deadlocked markings are given a self-loop with a unit-mean exponential
    sojourn so that the kernel remains stochastic; genuine SM-SPN models of
    *concurrent systems* (like the voting model) have none.
    """
    from .statespace import StateSpace

    if isinstance(graph, StateSpace):
        return graph.kernel(allow_truncated=allow_truncated)
    if graph.truncated and not allow_truncated:
        raise ValueError(
            "the reachability graph was truncated at max_states; pass "
            "allow_truncated=True only if edges leaving the truncation frontier "
            "are acceptable to drop"
        )
    from ..distributions import Exponential

    builder = SMPBuilder(n_states=graph.n_states)
    for name in (str(m) for m in graph.markings):
        builder.add_state(name)
    for src, dst, probability, dist, _ in graph.edges:
        builder.add_transition(src, dst, probability, dist)
    for dead in graph.deadlocks:
        builder.add_transition(dead, dead, 1.0, Exponential(1.0))
    # Normalise defensively: probabilities of a truncated frontier state may
    # not sum to one because edges to undiscovered markings were dropped.
    return builder.build(normalise=graph.truncated)
