"""Moments of a distribution recovered numerically from its Laplace transform.

``E[T^k] = (-1)^k d^k/ds^k L(s) |_{s=0}``.  The derivatives are estimated with
one-sided finite differences on a geometric grid plus Richardson
extrapolation, which is adequate for the diagnostic / cross-checking purposes
these helpers serve (unit tests compare them against closed-form means).
"""
from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["lst_moments", "mean_from_lst", "variance_from_lst"]


def _derivatives_at_zero(lst: Callable[[np.ndarray], np.ndarray], order: int, h: float) -> np.ndarray:
    """Estimate derivatives 0..order of ``lst`` at ``s = 0`` from a short stencil.

    A polynomial several degrees higher than ``order`` is fitted through
    equally spaced samples on ``[0, (degree) * h]`` so the truncation error of
    the low-order derivatives is pushed well below the fitting noise.
    """
    degree = order + 4
    points = np.arange(degree + 1) * h
    values = np.asarray(lst(points.astype(complex)), dtype=complex).real
    coeffs = np.polyfit(points, values, degree)
    poly = np.poly1d(coeffs)
    return np.array([np.polyder(poly, k)(0.0) for k in range(order + 1)])


def lst_moments(
    lst: Callable[[np.ndarray], np.ndarray],
    order: int = 2,
    *,
    h: float | None = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Return moments ``E[T^0..T^order]`` estimated from the transform.

    Parameters
    ----------
    lst:
        Vectorised Laplace transform callable.
    order:
        Highest moment to estimate.
    h:
        Finite-difference step; defaults to ``1e-3 / scale``.
    scale:
        A rough time scale of the distribution (e.g. its mean); the step is
        made small relative to it so the polynomial fit stays in the regime
        where the transform is smooth.
    """
    if order < 0:
        raise ValueError("order must be >= 0")
    if h is None:
        h = 1e-3 / max(scale, 1e-12)
    derivs = _derivatives_at_zero(lst, order, h)
    signs = np.array([(-1.0) ** k for k in range(order + 1)])
    return signs * derivs


def mean_from_lst(lst: Callable[[np.ndarray], np.ndarray], *, scale: float = 1.0) -> float:
    """Mean ``E[T]`` estimated from the transform."""
    return float(lst_moments(lst, 1, scale=scale)[1])


def variance_from_lst(lst: Callable[[np.ndarray], np.ndarray], *, scale: float = 1.0) -> float:
    """Variance estimated from the transform."""
    moments = lst_moments(lst, 2, scale=scale)
    return float(moments[2] - moments[1] ** 2)
