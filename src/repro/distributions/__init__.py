"""Distribution library used for semi-Markov sojourn times.

Every distribution exposes

* its Laplace–Stieltjes transform ``lst(s)`` evaluated at scalar or vectors of
  complex ``s`` (this is what the passage-time engine consumes),
* a sampler ``sample(rng)`` (what the validating simulator consumes),
* moments and, where available, closed-form ``pdf``/``cdf``.

The module also provides the paper's *constant-space representation* of a
general distribution — :class:`SampledTransform` — which stores nothing but
the transform values at the s-points demanded by the chosen Laplace-inversion
algorithm (Section 4 of the paper).
"""
from .base import Distribution
from .standard import (
    Exponential,
    Erlang,
    Gamma,
    Uniform,
    Deterministic,
    Immediate,
    Weibull,
    LogNormal,
    Pareto,
    HyperExponential,
)
from .combinators import Mixture, Convolution, Scaled, Shifted, probabilistic_choice
from .sampled import SampledTransform, sample_transform
from .numeric import numeric_lst
from .moments import lst_moments, mean_from_lst, variance_from_lst

__all__ = [
    "Distribution",
    "Exponential",
    "Erlang",
    "Gamma",
    "Uniform",
    "Deterministic",
    "Immediate",
    "Weibull",
    "LogNormal",
    "Pareto",
    "HyperExponential",
    "Mixture",
    "Convolution",
    "Scaled",
    "Shifted",
    "probabilistic_choice",
    "SampledTransform",
    "sample_transform",
    "numeric_lst",
    "lst_moments",
    "mean_from_lst",
    "variance_from_lst",
]
