"""Abstract base class for sojourn-time distributions."""
from __future__ import annotations

import abc
from typing import Any

import numpy as np

__all__ = ["Distribution"]


class Distribution(abc.ABC):
    """A non-negative random variable used as a semi-Markov sojourn time.

    Subclasses must implement :meth:`lst`, :meth:`sample` and :meth:`mean`.
    The Laplace–Stieltjes transform is the quantity the analytical pipeline
    works with throughout; the sampler is only needed by the validating
    simulator.
    """

    # ----------------------------------------------------------------- API
    @abc.abstractmethod
    def lst(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Laplace–Stieltjes transform ``E[exp(-s T)]``.

        Accepts a scalar or an ndarray of complex ``s`` with ``Re(s) >= 0``
        and returns a value of matching shape.
        """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` independent samples (or a scalar when ``size=None``)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value of the distribution."""

    def variance(self) -> float:
        """Variance; subclasses override when a closed form exists."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form variance")

    def pdf(self, t):
        """Probability density at ``t`` (where one exists)."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form pdf")

    def cdf(self, t):
        """Cumulative distribution function at ``t`` (where one exists)."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form cdf")

    # ------------------------------------------------------------ identity
    def _key(self) -> tuple[Any, ...]:
        """Hashable identity used for structural equality and kernel dedup."""
        return (type(self).__name__,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Distribution) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name, *params = self._key()
        inner = ", ".join(repr(p) for p in params)
        return f"{name}({inner})"

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _as_complex(s) -> np.ndarray:
        """Normalise ``s`` to a complex ndarray (possibly 0-d)."""
        return np.asarray(s, dtype=complex)

    @staticmethod
    def _match_shape(values: np.ndarray, s) -> complex | np.ndarray:
        """Return a scalar when the input ``s`` was scalar, else the array."""
        if np.isscalar(s) or (isinstance(s, np.ndarray) and s.ndim == 0):
            return complex(values)
        return values
