"""Abstract base class for sojourn-time distributions."""
from __future__ import annotations

import abc
from typing import Any

import numpy as np

__all__ = ["Distribution"]


class Distribution(abc.ABC):
    """A non-negative random variable used as a semi-Markov sojourn time.

    Subclasses must implement :meth:`lst`, :meth:`sample` and :meth:`mean`.
    The Laplace–Stieltjes transform is the quantity the analytical pipeline
    works with throughout; the sampler is only needed by the validating
    simulator.
    """

    # ----------------------------------------------------------------- API
    @abc.abstractmethod
    def lst(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Laplace–Stieltjes transform ``E[exp(-s T)]``.

        Accepts a scalar or an ndarray of complex ``s`` with ``Re(s) >= 0``
        and returns a value of matching shape.
        """

    def lst_batch(self, s_values: np.ndarray) -> np.ndarray:
        """Vectorised transform evaluation over a 1-D array of s-points.

        All distributions shipped with this library implement :meth:`lst` so
        that it broadcasts over ndarrays, in which case this is a single
        call.  Third-party subclasses whose ``lst`` only handles scalars are
        still supported: if the vectorised call does not produce an array of
        the expected shape, the points are evaluated one at a time.
        """
        s_values = np.asarray(s_values, dtype=complex).ravel()
        if s_values.size == 0:
            return np.empty(0, dtype=complex)
        try:
            values = np.asarray(self.lst(s_values), dtype=complex)
        except TypeError:
            # Scalar-only third-party lst; genuine input errors (ValueError
            # et al.) propagate rather than triggering a slow re-sweep.
            values = None
        if values is None or values.shape != s_values.shape:
            values = np.asarray([complex(self.lst(s)) for s in s_values], dtype=complex)
        return values

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` independent samples (or a scalar when ``size=None``)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value of the distribution."""

    def variance(self) -> float:
        """Variance; subclasses override when a closed form exists."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form variance")

    def pdf(self, t):
        """Probability density at ``t`` (where one exists)."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form pdf")

    def cdf(self, t):
        """Cumulative distribution function at ``t`` (where one exists)."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form cdf")

    # ------------------------------------------------------------ identity
    def _key(self) -> tuple[Any, ...]:
        """Hashable identity used for structural equality and kernel dedup."""
        return (type(self).__name__,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Distribution) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name, *params = self._key()
        inner = ", ".join(repr(p) for p in params)
        return f"{name}({inner})"

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _as_complex(s) -> np.ndarray:
        """Normalise ``s`` to a complex ndarray (possibly 0-d)."""
        return np.asarray(s, dtype=complex)

    @staticmethod
    def _match_shape(values: np.ndarray, s) -> complex | np.ndarray:
        """Return a scalar when the input ``s`` was scalar, else the array."""
        if np.isscalar(s) or (isinstance(s, np.ndarray) and s.ndim == 0):
            return complex(values)
        return values
