"""Standard sojourn-time distributions with closed-form or numeric transforms."""
from __future__ import annotations

import math

import numpy as np
from scipy import special

from ..utils.validation import check_positive, check_non_negative, check_probability_vector
from .base import Distribution
from .numeric import numeric_lst

__all__ = [
    "Exponential",
    "Erlang",
    "Gamma",
    "Uniform",
    "Deterministic",
    "Immediate",
    "Weibull",
    "LogNormal",
    "Pareto",
    "HyperExponential",
]


def _phi(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``(1 - exp(-x)) / x`` for complex ``x``.

    Near ``x = 0`` the direct formula suffers catastrophic cancellation, so a
    Taylor expansion is used instead.
    """
    x = np.asarray(x, dtype=complex)
    out = np.empty_like(x)
    small = np.abs(x) < 1e-6
    xs = x[small]
    out[small] = 1.0 - xs / 2.0 + xs * xs / 6.0 - xs * xs * xs / 24.0
    xl = x[~small]
    out[~small] = -np.expm1(-xl) / xl
    return out


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1/rate``)."""

    def __init__(self, rate: float):
        self.rate = check_positive(rate, "rate")

    def lst(self, s):
        s = self._as_complex(s)
        return self._match_shape(self.rate / (self.rate + s), s)

    def sample(self, rng, size=None):
        return rng.exponential(1.0 / self.rate, size=size)

    def mean(self):
        return 1.0 / self.rate

    def variance(self):
        return 1.0 / self.rate**2

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, self.rate * np.exp(-self.rate * t), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, -np.expm1(-self.rate * t), 0.0)

    def _key(self):
        return ("Exponential", self.rate)


class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` iid exponentials of rate ``rate``.

    This matches the paper's ``erlangLT(lambda, n, s) = (lambda/(lambda+s))^n``.
    """

    def __init__(self, rate: float, shape: int):
        self.rate = check_positive(rate, "rate")
        if int(shape) != shape or shape < 1:
            raise ValueError(f"shape must be a positive integer, got {shape!r}")
        self.shape = int(shape)

    def lst(self, s):
        s = self._as_complex(s)
        return self._match_shape((self.rate / (self.rate + s)) ** self.shape, s)

    def sample(self, rng, size=None):
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    def mean(self):
        return self.shape / self.rate

    def variance(self):
        return self.shape / self.rate**2

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        k, lam = self.shape, self.rate
        with np.errstate(divide="ignore", invalid="ignore"):
            val = lam**k * t ** (k - 1) * np.exp(-lam * t) / math.factorial(k - 1)
        return np.where(t >= 0, np.nan_to_num(val), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, special.gammainc(self.shape, self.rate * np.maximum(t, 0.0)), 0.0)

    def _key(self):
        return ("Erlang", self.rate, self.shape)


class Gamma(Distribution):
    """Gamma distribution with (possibly non-integer) shape and rate."""

    def __init__(self, shape: float, rate: float):
        self.shape = check_positive(shape, "shape")
        self.rate = check_positive(rate, "rate")

    def lst(self, s):
        s = self._as_complex(s)
        # Principal branch of (rate / (rate + s)) ** shape; for Re(s) >= 0 the
        # base never crosses the negative real axis so this is single-valued.
        base = self.rate / (self.rate + s)
        return self._match_shape(np.exp(self.shape * np.log(base)), s)

    def sample(self, rng, size=None):
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    def mean(self):
        return self.shape / self.rate

    def variance(self):
        return self.shape / self.rate**2

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        k, lam = self.shape, self.rate
        with np.errstate(divide="ignore", invalid="ignore"):
            val = lam**k * t ** (k - 1) * np.exp(-lam * t) / special.gamma(k)
        return np.where(t > 0, np.nan_to_num(val), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, special.gammainc(self.shape, self.rate * np.maximum(t, 0.0)), 0.0)

    def _key(self):
        return ("Gamma", self.shape, self.rate)


class Uniform(Distribution):
    """Continuous uniform distribution on ``[a, b]``.

    The transform matches the paper's ``uniformLT(a, b, s)``.
    """

    def __init__(self, a: float, b: float):
        a = check_non_negative(a, "a")
        b = check_positive(b, "b")
        if b <= a:
            raise ValueError(f"require a < b, got a={a}, b={b}")
        self.a = a
        self.b = b

    def lst(self, s):
        s = self._as_complex(s)
        # (e^{-as} - e^{-bs}) / (s (b - a)) written as e^{-as} * phi(s (b - a))
        val = np.exp(-self.a * s) * _phi(s * (self.b - self.a))
        return self._match_shape(val, s)

    def sample(self, rng, size=None):
        return rng.uniform(self.a, self.b, size=size)

    def mean(self):
        return 0.5 * (self.a + self.b)

    def variance(self):
        return (self.b - self.a) ** 2 / 12.0

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where((t >= self.a) & (t <= self.b), 1.0 / (self.b - self.a), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.clip((t - self.a) / (self.b - self.a), 0.0, 1.0)

    def _key(self):
        return ("Uniform", self.a, self.b)


class Deterministic(Distribution):
    """A deterministic (fixed) delay of ``value`` time units."""

    def __init__(self, value: float):
        self.value = check_non_negative(value, "value")

    def lst(self, s):
        s = self._as_complex(s)
        return self._match_shape(np.exp(-self.value * s), s)

    def sample(self, rng, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    def mean(self):
        return self.value

    def variance(self):
        return 0.0

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= self.value, 1.0, 0.0)

    def _key(self):
        return ("Deterministic", self.value)


class Immediate(Deterministic):
    """A zero delay — used for SM-SPN transitions that fire instantaneously."""

    def __init__(self):
        super().__init__(0.0)

    def _key(self):
        return ("Immediate",)


class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam`` (no closed-form LST)."""

    def __init__(self, shape: float, scale: float):
        self.shape = check_positive(shape, "shape")
        self.scale = check_positive(scale, "scale")

    def lst(self, s):
        s = self._as_complex(s)
        flat = np.atleast_1d(s).ravel()
        vals = numeric_lst(self.pdf, flat, upper=self.ppf(1.0 - 1e-12), cdf=self.cdf)
        return self._match_shape(vals.reshape(np.shape(s)) if np.ndim(s) else vals[0], s)

    def ppf(self, p):
        return self.scale * (-np.log1p(-np.asarray(p, dtype=float))) ** (1.0 / self.shape)

    def sample(self, rng, size=None):
        return self.scale * rng.weibull(self.shape, size=size)

    def mean(self):
        return self.scale * special.gamma(1.0 + 1.0 / self.shape)

    def variance(self):
        g1 = special.gamma(1.0 + 1.0 / self.shape)
        g2 = special.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.maximum(t, 0.0) / lam
            val = (k / lam) * z ** (k - 1) * np.exp(-(z**k))
        return np.where(t > 0, np.nan_to_num(val), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        z = np.maximum(t, 0.0) / self.scale
        return np.where(t > 0, -np.expm1(-(z**self.shape)), 0.0)

    def _key(self):
        return ("Weibull", self.shape, self.scale)


class LogNormal(Distribution):
    """Log-normal distribution parameterised by the underlying normal's mu/sigma."""

    def __init__(self, mu: float, sigma: float):
        self.mu = float(mu)
        self.sigma = check_positive(sigma, "sigma")

    def lst(self, s):
        s = self._as_complex(s)
        flat = np.atleast_1d(s).ravel()
        vals = numeric_lst(self.pdf, flat, upper=self.ppf(1.0 - 1e-12), cdf=self.cdf)
        return self._match_shape(vals.reshape(np.shape(s)) if np.ndim(s) else vals[0], s)

    def ppf(self, p):
        return np.exp(self.mu + self.sigma * special.ndtri(np.asarray(p, dtype=float)))

    def sample(self, rng, size=None):
        return rng.lognormal(self.mu, self.sigma, size=size)

    def mean(self):
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def variance(self):
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2 * self.mu + self.sigma**2)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = np.exp(-((np.log(t) - self.mu) ** 2) / (2 * self.sigma**2)) / (
                t * self.sigma * math.sqrt(2 * math.pi)
            )
        return np.where(t > 0, np.nan_to_num(val), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = special.ndtr((np.log(t) - self.mu) / self.sigma)
        return np.where(t > 0, np.nan_to_num(val), 0.0)

    def _key(self):
        return ("LogNormal", self.mu, self.sigma)


class Pareto(Distribution):
    """Classical (Type I) Pareto distribution with tail index ``alpha`` and minimum ``xm``."""

    def __init__(self, alpha: float, xm: float):
        self.alpha = check_positive(alpha, "alpha")
        self.xm = check_positive(xm, "xm")

    def lst(self, s):
        s = self._as_complex(s)
        flat = np.atleast_1d(s).ravel()
        vals = numeric_lst(
            self.pdf,
            flat,
            lower=self.xm,
            upper=self.ppf(1.0 - 1e-10),
            cdf=self.cdf,
            min_panels=128,
        )
        return self._match_shape(vals.reshape(np.shape(s)) if np.ndim(s) else vals[0], s)

    def ppf(self, p):
        return self.xm * (1.0 - np.asarray(p, dtype=float)) ** (-1.0 / self.alpha)

    def sample(self, rng, size=None):
        return self.xm * (1.0 + rng.pareto(self.alpha, size=size))

    def mean(self):
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def variance(self):
        if self.alpha <= 2.0:
            return math.inf
        a, xm = self.alpha, self.xm
        return xm**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = self.alpha * self.xm**self.alpha / t ** (self.alpha + 1.0)
        return np.where(t >= self.xm, np.nan_to_num(val), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = 1.0 - (self.xm / t) ** self.alpha
        return np.where(t >= self.xm, np.nan_to_num(val), 0.0)

    def _key(self):
        return ("Pareto", self.alpha, self.xm)


class HyperExponential(Distribution):
    """Probabilistic mixture of exponential phases (closed-form transform)."""

    def __init__(self, probs, rates):
        self.probs = check_probability_vector(probs, "probs")
        rates = np.asarray(list(rates), dtype=float)
        if rates.shape != self.probs.shape:
            raise ValueError("probs and rates must have the same length")
        if np.any(rates <= 0) or np.any(~np.isfinite(rates)):
            raise ValueError("rates must be finite and > 0")
        self.rates = rates

    def lst(self, s):
        s = self._as_complex(s)
        sb = s[..., None] if np.ndim(s) else np.asarray([s])[..., None]
        vals = np.sum(self.probs * self.rates / (self.rates + sb), axis=-1)
        return self._match_shape(vals if np.ndim(s) else vals[0], s)

    def sample(self, rng, size=None):
        n = 1 if size is None else int(np.prod(size))
        branch = rng.choice(len(self.probs), size=n, p=self.probs)
        samples = rng.exponential(1.0 / self.rates[branch])
        if size is None:
            return float(samples[0])
        return samples.reshape(size)

    def mean(self):
        return float(np.sum(self.probs / self.rates))

    def variance(self):
        m1 = self.mean()
        m2 = float(np.sum(2.0 * self.probs / self.rates**2))
        return m2 - m1**2

    def pdf(self, t):
        t = np.asarray(t, dtype=float)[..., None]
        val = np.sum(self.probs * self.rates * np.exp(-self.rates * np.maximum(t, 0.0)), axis=-1)
        return np.where(t[..., 0] >= 0, val, 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)[..., None]
        val = np.sum(self.probs * -np.expm1(-self.rates * np.maximum(t, 0.0)), axis=-1)
        return np.where(t[..., 0] >= 0, val, 0.0)

    def _key(self):
        return ("HyperExponential", tuple(self.probs.tolist()), tuple(self.rates.tolist()))
